//! Hand-written [`serde::Serialize`] impls for checker outcomes, shared by
//! `duop check --format json` and `duop lint --format json` so both
//! subcommands go through one serialization path.

use crate::{PartialProgress, Verdict, Violation, Witness};
use serde::Content;

fn s(text: impl Into<String>) -> Content {
    Content::Str(text.into())
}

impl serde::Serialize for PartialProgress {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "components_decided".into(),
                Content::U64(self.components_decided),
            ),
            (
                "components_total".into(),
                Content::U64(self.components_total),
            ),
            (
                "tiers".into(),
                Content::Seq(self.tiers.iter().map(|&t| s(t)).collect()),
            ),
        ])
    }
}

impl serde::Serialize for Witness {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "order".into(),
                Content::Seq(self.order().iter().map(|t| s(t.to_string())).collect()),
            ),
            (
                "commit_choices".into(),
                Content::Map(
                    self.commit_choices()
                        .iter()
                        .map(|(t, &c)| (t.to_string(), Content::Bool(c)))
                        .collect(),
                ),
            ),
        ])
    }
}

impl serde::Serialize for Violation {
    fn to_content(&self) -> Content {
        let mut fields: Vec<(String, Content)> = Vec::new();
        let kind = match self {
            Violation::InternalReadInconsistency {
                txn,
                obj,
                got,
                expected,
            } => {
                fields.push(("txn".into(), s(txn.to_string())));
                fields.push(("obj".into(), s(obj.to_string())));
                fields.push(("got".into(), Content::U64(got.get())));
                fields.push(("expected".into(), Content::U64(expected.get())));
                "internal-read-inconsistency"
            }
            Violation::MissingWriter { txn, obj, value } => {
                fields.push(("txn".into(), s(txn.to_string())));
                fields.push(("obj".into(), s(obj.to_string())));
                fields.push(("value".into(), Content::U64(value.get())));
                "missing-writer"
            }
            Violation::ConstraintCycle { txns } => {
                fields.push((
                    "txns".into(),
                    Content::Seq(txns.iter().map(|t| s(t.to_string())).collect()),
                ));
                "constraint-cycle"
            }
            Violation::NoSerialization {
                criterion,
                explored,
            } => {
                fields.push(("criterion".into(), s(criterion.clone())));
                fields.push(("explored".into(), Content::U64(*explored)));
                "no-serialization"
            }
            Violation::PrefixNotFinalStateOpaque { prefix_len, cause } => {
                fields.push(("prefix_len".into(), Content::U64(*prefix_len as u64)));
                fields.push(("cause".into(), cause.to_content()));
                "prefix-not-final-state-opaque"
            }
            Violation::LintRefuted {
                criterion,
                diagnostic,
            } => {
                fields.push(("criterion".into(), s(criterion.clone())));
                fields.push(("diagnostic".into(), diagnostic.to_content()));
                "lint-refuted"
            }
        };
        let mut map = vec![
            ("kind".into(), s(kind)),
            ("message".into(), s(self.to_string())),
        ];
        map.extend(fields);
        Content::Map(map)
    }
}

impl serde::Serialize for Verdict {
    fn to_content(&self) -> Content {
        match self {
            Verdict::Satisfied(w) => Content::Map(vec![
                ("status".into(), s("satisfied")),
                ("witness".into(), w.to_content()),
            ]),
            Verdict::Violated(v) => Content::Map(vec![
                ("status".into(), s("violated")),
                ("violation".into(), v.to_content()),
            ]),
            Verdict::Unknown {
                explored,
                reason,
                partial,
            } => {
                let mut map = vec![
                    ("status".into(), s("unknown")),
                    ("explored".into(), Content::U64(*explored)),
                    ("reason".into(), s(reason.as_str())),
                ];
                if let Some(p) = partial {
                    map.push(("partial".into(), p.to_content()));
                }
                Content::Map(map)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Criterion, DuOpacity, SearchConfig, Verdict};
    use duop_history::{HistoryBuilder, ObjId, TxnId, Value};

    #[test]
    fn satisfied_verdict_serializes_witness() {
        let h = HistoryBuilder::new()
            .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
            .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
            .build();
        let verdict = DuOpacity::new().check(&h);
        let json = serde_json::to_string(&verdict).unwrap();
        assert!(json.contains("\"status\":\"satisfied\""), "json: {json}");
        assert!(json.contains("\"order\":[\"T1\",\"T2\"]"), "json: {json}");
    }

    #[test]
    fn lint_refuted_verdict_embeds_diagnostic() {
        let h = HistoryBuilder::new()
            .committed_reader(TxnId::new(1), ObjId::new(0), Value::new(7))
            .build();
        let verdict = DuOpacity::new().check(&h);
        let json = serde_json::to_string(&verdict).unwrap();
        assert!(json.contains("\"status\":\"violated\""), "json: {json}");
        assert!(json.contains("\"kind\":\"lint-refuted\""), "json: {json}");
        assert!(json.contains("\"rule\":\"RF003\""), "json: {json}");
    }

    #[test]
    fn search_violation_serializes_without_prelint() {
        let h = HistoryBuilder::new()
            .committed_reader(TxnId::new(1), ObjId::new(0), Value::new(7))
            .build();
        let cfg = SearchConfig {
            prelint: false,
            ..SearchConfig::default()
        };
        let verdict = DuOpacity::with_config(cfg).check(&h);
        let json = serde_json::to_string(&verdict).unwrap();
        assert!(json.contains("\"kind\":\"missing-writer\""), "json: {json}");
    }

    #[test]
    fn unknown_verdict_serializes_explored_and_reason() {
        for (reason, tag) in [
            (crate::UnknownReason::StateBudget, "state-budget"),
            (crate::UnknownReason::Deadline, "deadline"),
            (crate::UnknownReason::WorkerPanic, "worker-panic"),
            (crate::UnknownReason::Interrupted, "interrupted"),
            (crate::UnknownReason::WorkerDeath, "worker-death"),
        ] {
            let json = serde_json::to_string(&Verdict::Unknown {
                explored: 12,
                reason,
                partial: None,
            })
            .unwrap();
            assert_eq!(
                json,
                format!("{{\"status\":\"unknown\",\"explored\":12,\"reason\":\"{tag}\"}}")
            );
        }
    }

    /// Identity deserializer: parse back into the raw content tree.
    struct Raw(serde::Content);

    impl serde::Deserialize for Raw {
        fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
            Ok(Raw(content.clone()))
        }
    }

    /// Every `UnknownReason`, with and without a `partial` payload, must
    /// survive a parse → re-serialize round trip byte-identically: the
    /// JSON layer is what checkpoints and scripts consume, so a lossy
    /// rendering here would corrupt resumed state downstream.
    #[test]
    fn unknown_reason_and_partial_round_trip_through_json() {
        for reason in [
            crate::UnknownReason::StateBudget,
            crate::UnknownReason::Deadline,
            crate::UnknownReason::WorkerPanic,
            crate::UnknownReason::Interrupted,
            crate::UnknownReason::WorkerDeath,
        ] {
            for partial in [
                None,
                Some(crate::PartialProgress::components(2, 5)),
                Some({
                    let mut p = crate::PartialProgress::components(0, 3);
                    p.tiers = vec!["exact-search", "lint"];
                    p
                }),
            ] {
                let verdict = Verdict::Unknown {
                    explored: 44,
                    reason,
                    partial,
                };
                let json = serde_json::to_string(&verdict).unwrap();
                let Raw(parsed) = serde_json::from_str::<Raw>(&json)
                    .unwrap_or_else(|e| panic!("verdict JSON must parse back: {e}\n{json}"));
                assert_eq!(
                    serde_json::to_string(&parsed).unwrap(),
                    json,
                    "round trip must be byte-identical"
                );
            }
        }
    }

    #[test]
    fn unknown_verdict_serializes_partial_payload() {
        let mut partial = crate::PartialProgress::components(3, 7);
        partial.tiers = vec!["exact-search", "lint", "unique-writes"];
        let json = serde_json::to_string(&Verdict::Unknown {
            explored: 99,
            reason: crate::UnknownReason::Deadline,
            partial: Some(partial),
        })
        .unwrap();
        assert_eq!(
            json,
            concat!(
                "{\"status\":\"unknown\",\"explored\":99,\"reason\":\"deadline\",",
                "\"partial\":{\"components_decided\":3,\"components_total\":7,",
                "\"tiers\":[\"exact-search\",\"lint\",\"unique-writes\"]}}"
            )
        );
    }
}
