//! Checker outcomes: witnesses, violations and verdicts.

use duop_history::{CommitCapability, Event, History, ObjId, Op, Ret, TxnId, Value};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A *witness serialization*: evidence that a history satisfies a
/// criterion.
///
/// A witness consists of the total order `seq(S)` on the history's
/// transactions together with a commit/abort decision for every transaction
/// whose `tryC_k()` is incomplete (Definition 2 leaves that choice to the
/// completion). [`Witness::materialize`] turns it into the t-complete
/// t-sequential history `S` itself.
///
/// # Examples
///
/// ```
/// use duop_core::{Criterion, DuOpacity};
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
///     .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
///     .build();
/// let witness = DuOpacity::new().check(&h).into_result().unwrap();
/// assert_eq!(witness.order(), &[TxnId::new(1), TxnId::new(2)]);
/// let s = witness.materialize(&h);
/// assert!(s.is_t_sequential() && s.is_legal());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    order: Vec<TxnId>,
    commit_choices: BTreeMap<TxnId, bool>,
}

impl Witness {
    /// Creates a witness from a transaction order and commit decisions for
    /// commit-pending transactions (`true` means the completion inserts
    /// `C_k`).
    pub fn new(order: Vec<TxnId>, commit_choices: BTreeMap<TxnId, bool>) -> Self {
        Witness {
            order,
            commit_choices,
        }
    }

    /// The serialization order `seq(S)`.
    pub fn order(&self) -> &[TxnId] {
        &self.order
    }

    /// The commit decision recorded for a commit-pending transaction.
    pub fn commit_choice(&self, txn: TxnId) -> Option<bool> {
        self.commit_choices.get(&txn).copied()
    }

    /// All recorded commit decisions.
    pub fn commit_choices(&self) -> &BTreeMap<TxnId, bool> {
        &self.commit_choices
    }

    /// Position of `txn` in the serialization order.
    pub fn position(&self, txn: TxnId) -> Option<usize> {
        self.order.iter().position(|t| *t == txn)
    }

    /// Whether `txn` is committed in the serialization this witness denotes,
    /// given the history `h` it serializes.
    pub fn is_committed_in(&self, h: &History, txn: TxnId) -> bool {
        match h.txn(txn).map(|t| t.commit_capability()) {
            Some(CommitCapability::Committed) => true,
            Some(CommitCapability::CommitPending) => self.commit_choice(txn).unwrap_or(false),
            _ => false,
        }
    }

    /// Materializes the legal-candidate history `S`: the transactions of
    /// `h`, completed per this witness's commit choices, laid out
    /// t-sequentially in witness order.
    ///
    /// The result is t-complete, t-sequential, and equivalent to a
    /// completion of `h`; whether it is *legal* (and satisfies the
    /// per-criterion conditions) is what
    /// [`check_witness`](crate::check_witness) decides.
    ///
    /// # Panics
    ///
    /// Panics if the witness order does not cover exactly the transactions
    /// of `h`.
    pub fn materialize(&self, h: &History) -> History {
        assert_eq!(
            self.order.len(),
            h.txn_count(),
            "witness must cover every transaction of the history"
        );
        let mut events: Vec<Event> = Vec::with_capacity(h.len() + 2 * h.txn_count());
        for &id in &self.order {
            let txn = h
                .txn(id)
                .unwrap_or_else(|| panic!("witness transaction {id} not in history"));
            events.extend(txn.events().copied());
            if txn.is_t_complete() {
                continue;
            }
            match txn.ops().last() {
                Some(last) if !last.is_complete() => {
                    let commit = last.op.is_try_commit() && self.commit_choice(id).unwrap_or(false);
                    events.push(Event::resp(
                        id,
                        if commit { Ret::Committed } else { Ret::Aborted },
                    ));
                }
                _ => {
                    events.push(Event::inv(id, Op::TryCommit));
                    events.push(Event::resp(id, Ret::Aborted));
                }
            }
        }
        History::new(events).expect("materialized serialization is well-formed")
    }
}

/// Why a history fails (or cannot be shown to satisfy) a criterion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A read that follows the transaction's own write to the same t-object
    /// returned a different value; no equivalent sequential history can be
    /// legal.
    InternalReadInconsistency {
        /// The reading transaction.
        txn: TxnId,
        /// The t-object.
        obj: ObjId,
        /// The value the read returned.
        got: Value,
        /// The transaction's own latest preceding write.
        expected: Value,
    },
    /// A read returned a value that no transaction capable of committing
    /// (and, for du-opacity, none that had invoked `tryC` before the read's
    /// response) ever writes to that t-object.
    MissingWriter {
        /// The reading transaction.
        txn: TxnId,
        /// The t-object.
        obj: ObjId,
        /// The orphaned value.
        value: Value,
    },
    /// The criterion's precedence constraints (real-time order plus any
    /// criterion-specific edges) are cyclic.
    ConstraintCycle {
        /// Transactions on the detected cycle.
        txns: Vec<TxnId>,
    },
    /// The search space of serializations was exhausted: no serialization
    /// satisfies the criterion.
    NoSerialization {
        /// Human-readable criterion name.
        criterion: String,
        /// Number of distinct search states explored.
        explored: u64,
    },
    /// A proper prefix of the history is not final-state opaque
    /// (Definition 5 fails).
    PrefixNotFinalStateOpaque {
        /// Length (in events) of the offending prefix.
        prefix_len: usize,
        /// Why that prefix fails.
        cause: Box<Violation>,
    },
    /// The lint prefilter refuted the criterion without searching: an
    /// `Error`-severity rule — a proven necessary condition for this
    /// criterion — fired (see [`crate::lint`]).
    LintRefuted {
        /// Human-readable criterion name.
        criterion: String,
        /// The refuting diagnostic.
        diagnostic: Box<crate::lint::Diagnostic>,
    },
    /// The must-precede saturation pass ([`crate::saturate`]) derived a
    /// precedence cycle; the attached machine-checkable certificate is
    /// independently validated by
    /// [`check_certificate`](crate::check_certificate).
    Certified {
        /// Human-readable criterion name.
        criterion: String,
        /// The closed refutation derivation.
        certificate: Box<crate::certificate::Certificate>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::InternalReadInconsistency { txn, obj, got, expected } => write!(
                f,
                "{txn} read {got} from {obj} after writing {expected} to it; no equivalent sequential history is legal"
            ),
            Violation::MissingWriter { txn, obj, value } => write!(
                f,
                "{txn} read {value} from {obj}, but no admissible transaction writes that value"
            ),
            Violation::ConstraintCycle { txns } => {
                write!(f, "precedence constraints are cyclic among ")?;
                for (i, t) in txns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            Violation::NoSerialization { criterion, explored } => write!(
                f,
                "no serialization satisfies {criterion} (explored {explored} states)"
            ),
            Violation::PrefixNotFinalStateOpaque { prefix_len, cause } => write!(
                f,
                "prefix of length {prefix_len} is not final-state opaque: {cause}"
            ),
            Violation::LintRefuted { criterion, diagnostic } => write!(
                f,
                "{criterion} refuted by lint rule {}: {} (at {})",
                diagnostic.rule, diagnostic.message, diagnostic.primary
            ),
            Violation::Certified { criterion, certificate } => write!(
                f,
                "{criterion} refuted by saturation: {certificate}"
            ),
        }
    }
}

impl Error for Violation {}

/// Why a check ended [`Verdict::Unknown`] instead of deciding the
/// question.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnknownReason {
    /// The state budget ([`SearchConfig::max_states`]) was exhausted.
    ///
    /// [`SearchConfig::max_states`]: crate::SearchConfig::max_states
    StateBudget,
    /// The wall-clock deadline ([`SearchConfig::deadline`]) expired.
    ///
    /// [`SearchConfig::deadline`]: crate::SearchConfig::deadline
    Deadline,
    /// A parallel search worker panicked; its siblings were cancelled and
    /// the panic was contained, but the subtree it owned is unexplored.
    WorkerPanic,
    /// The process received SIGINT/SIGTERM (see
    /// [`crate::snapshot::request_interrupt`]); the search flushed its
    /// progress and stopped cooperatively instead of dying mid-line.
    Interrupted,
    /// A sharded-checking worker process died (crash, kill, or a broken
    /// protocol stream) and the retry budget for its task was exhausted,
    /// so the component it owned is undecided.
    WorkerDeath,
}

impl UnknownReason {
    /// Stable kebab-case tag, used verbatim in the JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            UnknownReason::StateBudget => "state-budget",
            UnknownReason::Deadline => "deadline",
            UnknownReason::WorkerPanic => "worker-panic",
            UnknownReason::Interrupted => "interrupted",
            UnknownReason::WorkerDeath => "worker-death",
        }
    }
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Partial progress surviving an undecided check: what the anytime
/// machinery salvaged before the budget ran out.
///
/// Attached to [`Verdict::Unknown`] so callers (and the JSON output) can
/// distinguish "0% done" from "9 of 10 components decided". Everything in
/// it is *sound*: component verdicts are exact results for their
/// sub-problems (Lemma 1 restriction), and each listed tier is a sound
/// procedure that actually ran.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartialProgress {
    /// Conflict-graph components fully decided before the budget ran out
    /// (their serialization fragments are reusable on resume).
    pub components_decided: u64,
    /// Total components the planner split the query into (`1` for a
    /// monolithic search).
    pub components_total: u64,
    /// Sound criterion tiers that ran before giving up, in order (e.g.
    /// `["exact-search", "lint", "unique-writes"]`).
    pub tiers: Vec<&'static str>,
}

impl PartialProgress {
    /// Progress with component counts and no tier record yet.
    pub fn components(decided: u64, total: u64) -> Self {
        PartialProgress {
            components_decided: decided,
            components_total: total,
            tiers: Vec::new(),
        }
    }
}

impl fmt::Display for PartialProgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} components",
            self.components_decided, self.components_total
        )?;
        if !self.tiers.is_empty() {
            write!(f, "; tiers: {}", self.tiers.join(","))?;
        }
        Ok(())
    }
}

/// The outcome of checking a history against a criterion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The history satisfies the criterion; a witness serialization is
    /// attached.
    Satisfied(Witness),
    /// The history violates the criterion.
    Violated(Violation),
    /// A resource limit (state budget, deadline) or a contained worker
    /// panic stopped the search before the question was decided.
    Unknown {
        /// Number of distinct search states explored before giving up.
        explored: u64,
        /// Which limit (or failure) ended the search.
        reason: UnknownReason,
        /// Sound partial progress, if any was salvaged (see
        /// [`PartialProgress`]).
        partial: Option<PartialProgress>,
    },
}

impl Verdict {
    /// Returns `true` if the criterion is satisfied.
    pub fn is_satisfied(&self) -> bool {
        matches!(self, Verdict::Satisfied(_))
    }

    /// Returns `true` if the criterion is violated.
    pub fn is_violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }

    /// The witness, if satisfied.
    pub fn witness(&self) -> Option<&Witness> {
        match self {
            Verdict::Satisfied(w) => Some(w),
            _ => None,
        }
    }

    /// The violation, if violated.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            Verdict::Violated(v) => Some(v),
            _ => None,
        }
    }

    /// Converts into a `Result`, treating [`Verdict::Unknown`] as an error.
    ///
    /// # Errors
    ///
    /// Returns the violation for `Violated`; returns
    /// [`Violation::NoSerialization`] with `explored` for `Unknown`.
    pub fn into_result(self) -> Result<Witness, Violation> {
        match self {
            Verdict::Satisfied(w) => Ok(w),
            Verdict::Violated(v) => Err(v),
            Verdict::Unknown {
                explored, reason, ..
            } => Err(Violation::NoSerialization {
                criterion: format!("undecided ({reason})"),
                explored,
            }),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Satisfied(w) => {
                write!(f, "satisfied; witness: ")?;
                for (i, t) in w.order().iter().enumerate() {
                    if i > 0 {
                        write!(f, " < ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            Verdict::Violated(v) => write!(f, "violated: {v}"),
            Verdict::Unknown {
                explored,
                reason,
                partial,
            } => {
                write!(f, "unknown ({reason} after {explored} states")?;
                if let Some(p) = partial {
                    write!(f, "; {p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::HistoryBuilder;

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn materialize_t_complete_history() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        let w = Witness::new(vec![t(1), t(2)], BTreeMap::new());
        let s = w.materialize(&h);
        assert!(s.is_t_sequential());
        assert!(s.is_t_complete());
        assert!(s.is_legal());
        assert!(s.equivalent(&h));
    }

    #[test]
    fn materialize_respects_commit_choices() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .build();
        let commit = Witness::new(vec![t(1)], BTreeMap::from([(t(1), true)]));
        assert!(commit.materialize(&h).txn(t(1)).unwrap().is_committed());
        assert!(commit.is_committed_in(&h, t(1)));

        let abort = Witness::new(vec![t(1)], BTreeMap::from([(t(1), false)]));
        assert!(abort.materialize(&h).txn(t(1)).unwrap().is_aborted());
        assert!(!abort.is_committed_in(&h, t(1)));
    }

    #[test]
    fn materialize_completes_non_t_complete_txns() {
        // Complete but no tryC: gains tryC·A.
        let h = HistoryBuilder::new().read(t(1), x(), v(0)).build();
        let w = Witness::new(vec![t(1)], BTreeMap::new());
        let s = w.materialize(&h);
        let view = s.txn(t(1)).unwrap();
        assert!(view.is_aborted());
        assert_eq!(view.ops().len(), 2);

        // Incomplete read: answered with A.
        let h = HistoryBuilder::new().inv_read(t(1), x()).build();
        let s = Witness::new(vec![t(1)], BTreeMap::new()).materialize(&h);
        assert!(s.txn(t(1)).unwrap().is_aborted());
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cover every transaction")]
    fn materialize_rejects_partial_witness() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(2))
            .build();
        Witness::new(vec![t(1)], BTreeMap::new()).materialize(&h);
    }

    #[test]
    fn verdict_accessors() {
        let w = Witness::new(vec![t(1)], BTreeMap::new());
        let sat = Verdict::Satisfied(w.clone());
        assert!(sat.is_satisfied());
        assert_eq!(sat.witness(), Some(&w));
        assert!(sat.clone().into_result().is_ok());

        let vio = Verdict::Violated(Violation::MissingWriter {
            txn: t(1),
            obj: x(),
            value: v(3),
        });
        assert!(vio.is_violated());
        assert!(vio.violation().is_some());
        assert!(vio.clone().into_result().is_err());

        let unk = Verdict::Unknown {
            explored: 10,
            reason: UnknownReason::StateBudget,
            partial: None,
        };
        assert!(!unk.is_satisfied());
        assert!(!unk.is_violated());
        assert!(unk.into_result().is_err());
    }

    #[test]
    fn unknown_reasons_have_stable_tags() {
        assert_eq!(UnknownReason::StateBudget.as_str(), "state-budget");
        assert_eq!(UnknownReason::Deadline.as_str(), "deadline");
        assert_eq!(UnknownReason::WorkerPanic.as_str(), "worker-panic");
        assert_eq!(UnknownReason::Interrupted.as_str(), "interrupted");
        assert_eq!(UnknownReason::WorkerDeath.as_str(), "worker-death");
        let d = Verdict::Unknown {
            explored: 3,
            reason: UnknownReason::Deadline,
            partial: None,
        };
        assert!(d.to_string().contains("deadline"));
    }

    #[test]
    fn unknown_display_includes_partial_progress() {
        let mut partial = PartialProgress::components(2, 5);
        partial.tiers = vec!["exact-search", "lint"];
        let v = Verdict::Unknown {
            explored: 7,
            reason: UnknownReason::StateBudget,
            partial: Some(partial),
        };
        let text = v.to_string();
        assert!(text.contains("2/5 components"), "{text}");
        assert!(text.contains("exact-search,lint"), "{text}");
    }

    #[test]
    fn violations_display() {
        let samples: Vec<Violation> = vec![
            Violation::InternalReadInconsistency {
                txn: t(1),
                obj: x(),
                got: v(1),
                expected: v(2),
            },
            Violation::MissingWriter {
                txn: t(2),
                obj: x(),
                value: v(9),
            },
            Violation::ConstraintCycle {
                txns: vec![t(1), t(2)],
            },
            Violation::NoSerialization {
                criterion: "du-opacity".into(),
                explored: 42,
            },
            Violation::PrefixNotFinalStateOpaque {
                prefix_len: 3,
                cause: Box::new(Violation::MissingWriter {
                    txn: t(1),
                    obj: x(),
                    value: v(1),
                }),
            },
            Violation::LintRefuted {
                criterion: "du-opacity".into(),
                diagnostic: Box::new(crate::lint::Diagnostic {
                    rule: "RF003",
                    severity: crate::lint::Severity::Error,
                    applicability: crate::lint::Applicability::AllCriteria,
                    message: "orphan value".into(),
                    primary: crate::lint::Span {
                        event: 1,
                        label: "T2:R(X0)".into(),
                    },
                    secondary: Vec::new(),
                }),
            },
        ];
        for violation in samples {
            assert!(!violation.to_string().is_empty());
        }
    }

    #[test]
    fn witness_position_lookup() {
        let w = Witness::new(vec![t(2), t(1)], BTreeMap::new());
        assert_eq!(w.position(t(2)), Some(0));
        assert_eq!(w.position(t(1)), Some(1));
        assert_eq!(w.position(t(3)), None);
    }
}
