//! The unique-writes fast path (Theorem 11).
//!
//! Under the assumption that no two transactions write the same value to
//! the same t-object, the reads-from relation of a history is *fixed*:
//! each external `read_k(X) → v` can only have read from the single
//! transaction that writes `v` to `X` (or from `T_0` when `v` is the
//! initial value). Theorem 11 shows that opacity and du-opacity coincide
//! on such histories; operationally, fixing reads-from lets a polynomial
//! constraint-propagation pass decide most histories outright, falling
//! back to the general search (seeded with every inferred precedence edge)
//! only when an anti-dependency disjunction remains unresolved.

use crate::search::SearchConfig;
use crate::{Criterion, DuOpacity, Verdict, Violation, Witness};
use duop_history::{CommitCapability, History, ObjId, TxnId, Value};
use std::collections::BTreeMap;

/// Returns `true` if no two distinct transactions write the same value to
/// the same t-object — the hypothesis of Theorem 11.
///
/// The imaginary initial transaction `T_0` counts: an explicit write of
/// [`Value::INITIAL`] duplicates `T_0`'s initializing write and therefore
/// violates the assumption.
///
/// # Examples
///
/// ```
/// use duop_core::unique::has_unique_writes;
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let x = ObjId::new(0);
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), x, Value::new(1))
///     .committed_writer(TxnId::new(2), x, Value::new(2))
///     .build();
/// assert!(has_unique_writes(&h));
/// ```
pub fn has_unique_writes(h: &History) -> bool {
    let mut seen: std::collections::HashMap<(ObjId, Value), TxnId> =
        std::collections::HashMap::new();
    for t in h.txns() {
        for op in t.ops() {
            if let duop_history::Op::Write(x, v) = op.op {
                if v == Value::INITIAL {
                    return false; // duplicates T0's initializing write
                }
                match seen.get(&(x, v)) {
                    Some(owner) if *owner != t.id() => return false,
                    _ => {
                        seen.insert((x, v), t.id());
                    }
                }
            }
        }
    }
    true
}

/// Statistics from a [`check_unique_writes_fast`] run, for the ablation
/// benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Propagation rounds executed.
    pub rounds: usize,
    /// Precedence edges inferred.
    pub edges: usize,
    /// `true` if the general search had to finish the job.
    pub fell_back: bool,
}

/// Decides du-opacity of a *unique-writes* history by constraint
/// propagation over the fixed reads-from relation.
///
/// Sound and complete: if a disjunctive anti-dependency constraint cannot
/// be resolved by propagation, the general [`DuOpacity`] search is run
/// with every inferred edge (all of which are implied by the definition)
/// pre-seeded, so the verdict always matches [`DuOpacity::check`]. By
/// Theorem 11 the verdict also matches [`Opacity`](crate::Opacity) for
/// complete unique-writes histories.
///
/// # Examples
///
/// ```
/// use duop_core::unique::check_unique_writes_fast;
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
///     .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
///     .build();
/// let (verdict, stats) = check_unique_writes_fast(&h);
/// assert!(verdict.is_satisfied());
/// assert!(!stats.fell_back);
/// ```
///
/// # Panics
///
/// Panics if `h` does not satisfy [`has_unique_writes`]; check first.
pub fn check_unique_writes_fast(h: &History) -> (Verdict, FastPathStats) {
    assert!(
        has_unique_writes(h),
        "fast path requires the unique-writes assumption"
    );
    let (decided, edges, mut stats) = propagate(h);
    if let Some(verdict) = decided {
        return (verdict, stats);
    }
    // Finish with the general search, seeded with the inferred edges
    // (each is implied, so this is sound and complete).
    stats.fell_back = true;
    let verdict = crate::search::search_serialization(
        h,
        &crate::search::Query {
            name: "du-opacity (unique-writes fallback)",
            deferred_update: true,
            extra_edges: edges,
            commit_edges: Vec::new(),
            lint_scope: crate::lint::LintScope::Du,
        },
        &SearchConfig::default(),
    );
    (verdict, stats)
}

/// The polynomial portion of the Theorem 11 fast path: decides du-opacity
/// by constraint propagation alone, *abstaining* (`None`) when an
/// anti-dependency disjunction remains unresolved instead of falling back
/// to the exponential search.
///
/// Also abstains when `h` does not satisfy [`has_unique_writes`] (the
/// hypothesis of Theorem 11). Any `Some` verdict matches what
/// [`DuOpacity`] would return; this is the degradation ladder's
/// budget-free tier.
///
/// # Examples
///
/// ```
/// use duop_core::unique::propagate_unique_writes;
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
///     .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
///     .build();
/// assert!(propagate_unique_writes(&h).is_some_and(|v| v.is_satisfied()));
/// ```
pub fn propagate_unique_writes(h: &History) -> Option<Verdict> {
    if !has_unique_writes(h) {
        return None;
    }
    propagate(h).0
}

/// Shared propagation pass: returns the decided verdict (if propagation
/// resolved everything) or `None` plus the inferred precedence edges for
/// the search fallback, along with the pass's statistics.
#[allow(clippy::type_complexity)]
fn propagate(h: &History) -> (Option<Verdict>, Vec<(TxnId, TxnId)>, FastPathStats) {
    let mut stats = FastPathStats::default();

    let ids: Vec<TxnId> = h.txn_ids().collect();
    let n = ids.len();

    // Writers per (object, value). Only a transaction's *last* write to an
    // object is ever observable (the "latest written value" of Section 2),
    // so intermediate overwritten writes are deliberately excluded — a
    // read returning one is unserializable.
    let mut writer_of: std::collections::HashMap<(ObjId, Value), usize> =
        std::collections::HashMap::new();
    for (i, t) in h.txns().enumerate() {
        for &x in &t.write_set() {
            if let Some(v) = t.last_write_to(x) {
                writer_of.insert((x, v), i);
            }
        }
    }

    // External reads: (reader, obj, value, resp index).
    struct FixedRead {
        reader: usize,
        obj: ObjId,
        value: Value,
        resp: usize,
        /// Index of the source transaction, `None` for T0.
        source: Option<usize>,
    }
    let mut reads: Vec<FixedRead> = Vec::new();
    for (i, t) in h.txns().enumerate() {
        let mut written: Vec<ObjId> = Vec::new();
        for op in t.ops() {
            match (op.op, op.resp) {
                (duop_history::Op::Write(x, _), Some(duop_history::Ret::Ok)) => written.push(x),
                (duop_history::Op::Read(x), Some(duop_history::Ret::Value(v))) => {
                    if written.contains(&x) {
                        continue; // own-write read, resolved by preprocessing
                    }
                    reads.push(FixedRead {
                        reader: i,
                        obj: x,
                        value: v,
                        resp: op.resp_index.expect("complete read"),
                        source: None,
                    });
                }
                _ => {}
            }
        }
    }

    // Resolve reads-from; decide forced commits.
    let caps: Vec<CommitCapability> = h.txns().map(|t| t.commit_capability()).collect();
    let mut forced_commit = vec![false; n];
    for r in &mut reads {
        if r.value == Value::INITIAL {
            continue; // reads from T0 (nothing else writes the initial value)
        }
        let Some(&w) = writer_of.get(&(r.obj, r.value)) else {
            return (
                Some(Verdict::Violated(Violation::MissingWriter {
                    txn: ids[r.reader],
                    obj: r.obj,
                    value: r.value,
                })),
                Vec::new(),
                stats,
            );
        };
        if w == r.reader {
            // Unique writes: only the reader itself writes this value, but
            // an external read precedes every own write to the object.
            return (
                Some(Verdict::Violated(Violation::MissingWriter {
                    txn: ids[r.reader],
                    obj: r.obj,
                    value: r.value,
                })),
                Vec::new(),
                stats,
            );
        }
        // Deferred-update eligibility (Definition 3(3)): the source must
        // have invoked tryC before the read's response.
        let eligible = h
            .try_commit_inv_index(ids[w])
            .is_some_and(|inv| inv < r.resp);
        let commit_capable = match caps[w] {
            CommitCapability::Committed => true,
            CommitCapability::CommitPending => true,
            CommitCapability::NeverCommitted => false,
        };
        if !eligible || !commit_capable {
            return (
                Some(Verdict::Violated(Violation::MissingWriter {
                    txn: ids[r.reader],
                    obj: r.obj,
                    value: r.value,
                })),
                Vec::new(),
                stats,
            );
        }
        if caps[w] == CommitCapability::CommitPending {
            forced_commit[w] = true;
        }
        r.source = Some(w);
    }

    // Transactions committed in the serialization we are constructing.
    let committed: Vec<bool> = (0..n)
        .map(|i| caps[i] == CommitCapability::Committed || forced_commit[i])
        .collect();

    // Committed writers per object.
    let mut committed_writers: std::collections::HashMap<ObjId, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, t) in h.txns().enumerate() {
        if committed[i] {
            for &x in &t.write_set() {
                committed_writers.entry(x).or_default().push(i);
            }
        }
    }

    // Edge matrix (adjacency), seeded with real time and reads-from.
    let mut adj = vec![vec![false; n]; n];
    let add_edge = |adj: &mut Vec<Vec<bool>>, a: usize, b: usize, stats: &mut FastPathStats| {
        if !adj[a][b] {
            adj[a][b] = true;
            stats.edges += 1;
        }
    };
    for (i, &a) in ids.iter().enumerate() {
        for (j, &b) in ids.iter().enumerate() {
            if i != j && h.precedes_rt(a, b) {
                add_edge(&mut adj, i, j, &mut stats);
            }
        }
    }
    for r in &reads {
        if let Some(w) = r.source {
            add_edge(&mut adj, w, r.reader, &mut stats);
        }
        // Reads from T0: every committed writer of the object must follow
        // the reader.
        if r.source.is_none() {
            if let Some(ws) = committed_writers.get(&r.obj) {
                for &j in ws {
                    if j != r.reader {
                        add_edge(&mut adj, r.reader, j, &mut stats);
                    }
                }
            }
        }
    }

    // Propagate anti-dependency disjunctions to fixpoint.
    let mut unresolved = true;
    let mut progress = true;
    while progress {
        progress = false;
        stats.rounds += 1;
        let reach = closure(&adj);
        // Cycle?
        if (0..n).any(|i| reach[i][i]) {
            let cyc: Vec<TxnId> = (0..n).filter(|&i| reach[i][i]).map(|i| ids[i]).collect();
            return (
                Some(Verdict::Violated(Violation::ConstraintCycle { txns: cyc })),
                Vec::new(),
                stats,
            );
        }
        unresolved = false;
        for r in &reads {
            let Some(w) = r.source else { continue };
            let Some(ws) = committed_writers.get(&r.obj) else {
                continue;
            };
            for &j in ws {
                if j == w || j == r.reader {
                    continue;
                }
                // T_j must not fall between the source and the reader:
                // either T_j < source or reader < T_j.
                let before = reach[j][w];
                let after = reach[r.reader][j];
                match (before, after) {
                    (true, true) => {
                        // j < w < reader < j: cycle; will be caught above
                        // next round after we add nothing — report now.
                        return (
                            Some(Verdict::Violated(Violation::ConstraintCycle {
                                txns: vec![ids[j], ids[w], ids[r.reader]],
                            })),
                            Vec::new(),
                            stats,
                        );
                    }
                    (true, false) | (false, true) => {}
                    (false, false) => {
                        // Try to resolve using forbidden directions.
                        if reach[w][j] {
                            // source < j forced: need reader < j.
                            add_edge(&mut adj, r.reader, j, &mut stats);
                            progress = true;
                        } else if reach[j][r.reader] {
                            // j < reader forced: need j < source.
                            add_edge(&mut adj, j, w, &mut stats);
                            progress = true;
                        } else {
                            unresolved = true;
                        }
                    }
                }
            }
        }
    }

    if unresolved {
        // Hand the inferred edges to the caller; only
        // `check_unique_writes_fast` escalates to the general search.
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if adj[i][j] {
                    edges.push((ids[i], ids[j]));
                }
            }
        }
        return (None, edges, stats);
    }

    // All constraints resolved: any topological order is a witness.
    let order_idx = topo_order(&adj).expect("acyclic after closure check");
    let order: Vec<TxnId> = order_idx.into_iter().map(|i| ids[i]).collect();
    let mut choices = BTreeMap::new();
    for (i, &id) in ids.iter().enumerate() {
        if caps[i] == CommitCapability::CommitPending {
            choices.insert(id, forced_commit[i]);
        }
    }
    (
        Some(Verdict::Satisfied(Witness::new(order, choices))),
        Vec::new(),
        stats,
    )
}

/// Convenience: decides du-opacity, taking the fast path when the history
/// has unique writes and the general search otherwise.
///
/// # Examples
///
/// ```
/// use duop_core::unique::check_du_opacity_auto;
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(5))
///     .build();
/// assert!(check_du_opacity_auto(&h).is_satisfied());
/// ```
pub fn check_du_opacity_auto(h: &History) -> Verdict {
    if has_unique_writes(h) {
        check_unique_writes_fast(h).0
    } else {
        DuOpacity::new().check(h)
    }
}

fn closure(adj: &[Vec<bool>]) -> Vec<Vec<bool>> {
    let n = adj.len();
    let mut reach: Vec<Vec<bool>> = adj.to_vec();
    for k in 0..n {
        for i in 0..n {
            if i == k || !reach[i][k] {
                continue; // OR-ing a row into itself is a no-op
            }
            let (head, tail) = if i < k {
                let (a, b) = reach.split_at_mut(k);
                (&mut a[i], &b[0])
            } else {
                let (a, b) = reach.split_at_mut(i);
                (&mut b[0], &a[k])
            };
            for (dst, &src) in head.iter_mut().zip(tail.iter()) {
                *dst |= src;
            }
        }
    }
    reach
}

fn topo_order(adj: &[Vec<bool>]) -> Option<Vec<usize>> {
    let n = adj.len();
    let mut indeg = vec![0usize; n];
    for row in adj {
        for (j, &e) in row.iter().enumerate() {
            if e {
                indeg[j] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        out.push(i);
        for j in 0..n {
            if adj[i][j] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
    }
    (out.len() == n).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_witness, CriterionKind};
    use duop_history::{HistoryBuilder, ObjId};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn unique_writes_detection() {
        let unique = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(2))
            .build();
        assert!(has_unique_writes(&unique));

        let duplicated = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(1))
            .build();
        assert!(!has_unique_writes(&duplicated));
    }

    #[test]
    fn same_txn_rewriting_a_value_is_still_unique() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .write(t(1), x(), v(1))
            .commit(t(1))
            .build();
        assert!(has_unique_writes(&h));
    }

    #[test]
    fn fast_path_accepts_and_produces_valid_witness() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .committed_writer(t(3), x(), v(2))
            .committed_reader(t(4), x(), v(2))
            .build();
        let (verdict, stats) = check_unique_writes_fast(&h);
        let w = verdict.witness().expect("du-opaque");
        assert_eq!(check_witness(&h, w, CriterionKind::DuOpacity), Ok(()));
        assert!(!stats.fell_back);
    }

    #[test]
    fn fast_path_rejects_stale_read() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(0))
            .build();
        let (verdict, _) = check_unique_writes_fast(&h);
        assert!(verdict.is_violated());
    }

    #[test]
    fn fast_path_rejects_du_ineligible_source() {
        // T2 reads T3's value before T3 invokes tryC.
        let h = HistoryBuilder::new()
            .read(t(2), x(), v(1))
            .committed_writer(t(3), x(), v(1))
            .commit(t(2))
            .build();
        let (verdict, _) = check_unique_writes_fast(&h);
        assert_eq!(
            verdict.violation(),
            Some(&Violation::MissingWriter {
                txn: t(2),
                obj: x(),
                value: v(1)
            })
        );
    }

    #[test]
    fn fast_path_matches_general_search() {
        // Concurrent mix, unique writes.
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_value(t(2), v(0))
            .resp_ok(t(1))
            .commit(t(1))
            .commit(t(2))
            .committed_reader(t(3), x(), v(1))
            .build();
        let (fast, _) = check_unique_writes_fast(&h);
        let general = DuOpacity::new().check(&h);
        assert_eq!(fast.is_satisfied(), general.is_satisfied());
        if let Some(w) = fast.witness() {
            assert_eq!(check_witness(&h, w, CriterionKind::DuOpacity), Ok(()));
        }
    }

    #[test]
    fn auto_dispatches_on_uniqueness() {
        let non_unique = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(1))
            .committed_reader(t(3), x(), v(1))
            .build();
        assert!(check_du_opacity_auto(&non_unique).is_satisfied());

        let unique = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        assert!(check_du_opacity_auto(&unique).is_satisfied());
    }

    #[test]
    #[should_panic(expected = "unique-writes assumption")]
    fn fast_path_panics_without_uniqueness() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(1))
            .build();
        check_unique_writes_fast(&h);
    }

    #[test]
    fn pending_source_is_force_committed() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .read(t(2), x(), v(1))
            .commit(t(2))
            .build();
        let (verdict, _) = check_unique_writes_fast(&h);
        let w = verdict.witness().expect("du-opaque");
        assert_eq!(w.commit_choice(t(1)), Some(true));
        assert_eq!(check_witness(&h, w, CriterionKind::DuOpacity), Ok(()));
    }
}
