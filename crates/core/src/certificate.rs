//! Machine-checkable refutation certificates and their independent
//! validator.
//!
//! A [`Certificate`] is a *closed derivation* of a precedence cycle: an
//! ordered list of [`Step`]s, each asserting a must-precede edge
//! `from → to` justified by a [`Rule`], followed by a [`Certificate::cycle`]
//! — indices into the step list whose edges chain head-to-tail and close.
//! Axiom steps are justified directly by events of the history; derived
//! steps name strictly earlier steps as premises, so the derivation is
//! well-founded by construction.
//!
//! Every rule is a proven *necessary condition*: in any t-complete
//! t-sequential history `S` equivalent to (a completion of) `H` that is
//! legal under the certificate's criterion, `from` must precede `to` in
//! `seq(S)`. A closed cycle of such edges is therefore a sound refutation
//! — no satisfying serialization exists (see `DESIGN.md` §12 for the
//! per-rule soundness arguments).
//!
//! [`check_certificate`] re-derives every step from the *literal* history,
//! mirroring what [`crate::check_witness`] does for positive verdicts: the
//! saturation engine ([`crate::saturate`]) that produced the certificate is
//! not trusted, only the derivation itself. Validation is polynomial and
//! allocation-light; a rejected certificate yields a structured
//! [`CertificateError`] naming the offending step, never a panic.

use crate::plan::PlanCriterion;
use duop_history::{CommitCapability, History, ObjId, Op, Ret, TxnId, Value};
use std::error::Error;
use std::fmt;

/// One must-precede edge of a derivation, with its justification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// The transaction that must be serialized earlier.
    pub from: TxnId,
    /// The transaction that must be serialized later.
    pub to: TxnId,
    /// Why `from` must precede `to`.
    pub rule: Rule,
}

/// Justification of one [`Step`]: an axiom re-derivable from the events
/// of the history, or a derived rule naming earlier steps as premises.
///
/// Event positions (`read`, `tryc`, `resp`) are indices into
/// [`History::events`], pinning each axiom to the exact events that
/// ground it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rule {
    /// Real-time order (Definition 1): every event of `from` precedes
    /// every event of `to` in `H`, and any equivalent serialization must
    /// respect the real-time order.
    RealTime,
    /// Read-from with a *unique* admissible writer: `to`'s external read
    /// of `obj` (response at event `read`) returned `value ≠ 0`, and
    /// `from` is the only transaction that can supply it — committable,
    /// final write of `value` to `obj`, and (du-opacity only) `tryC`
    /// invoked before the read's response. The supplier must be committed
    /// before the read takes effect, so `from` precedes `to`.
    ReadFrom {
        /// The t-object read.
        obj: ObjId,
        /// The value returned.
        value: Value,
        /// Event index of the read's response.
        read: usize,
    },
    /// Anti-dependency on the initial value: `from`'s external read of
    /// `obj` (response at event `read`) returned the initial value, no
    /// committable transaction other than `from` finally writes the
    /// initial value back, and `to` is a committed writer of `obj` — once
    /// any committed writer of `obj` is serialized, the initial value is
    /// gone forever, so the reader must come first.
    AntiDependency {
        /// The t-object read.
        obj: ObjId,
        /// Event index of the initial-value read's response.
        read: usize,
    },
    /// Read-commit-order (Section 4.2, RCO scope only): `from`'s
    /// value-returning read of `obj` responded (event `read`) before the
    /// `tryC` invocation (event `tryc`) of the committed writer `to` with
    /// `obj ∈ Wset(to)`.
    ReadCommitOrder {
        /// The t-object read.
        obj: ObjId,
        /// Event index of the read's response.
        read: usize,
        /// Event index of `to`'s `tryC` invocation.
        tryc: usize,
    },
    /// TMS2 commit order (Section 4.2 rendering, TMS2 scope only): the
    /// committed writer `from`'s `tryC` response (event `resp`) precedes
    /// `to`'s `tryC` invocation (event `tryc`) and
    /// `obj ∈ Wset(from) ∩ Rset(to)`.
    Tms2CommitOrder {
        /// The shared t-object.
        obj: ObjId,
        /// Event index of `from`'s `tryC` response.
        resp: usize,
        /// Event index of `to`'s `tryC` invocation.
        tryc: usize,
    },
    /// Transitivity: premises `first: from → m` and `second: m → to`
    /// (indices of strictly earlier steps).
    Transitive {
        /// Step index proving `from → m`.
        first: usize,
        /// Step index proving `m → to`.
        second: usize,
    },
    /// Interference after the supplier: premise `read_from: w → r` (a
    /// [`Rule::ReadFrom`] step) and premise `before: w → to`, where `to`
    /// is a committed writer of the read's object whose final write
    /// differs from the read's value. `to` cannot be serialized between
    /// `w` and `r` (it would overwrite the value `r` observed), and it
    /// comes after `w`, so it must come after `r`: `from = r → to`.
    InterferenceAfter {
        /// Step index of the grounding [`Rule::ReadFrom`] edge `w → r`.
        read_from: usize,
        /// Step index proving `w → to`.
        before: usize,
    },
    /// Interference before the supplier: premise `read_from: w → r` (a
    /// [`Rule::ReadFrom`] step) and premise `after: from → r`, where
    /// `from` is a committed writer of the read's object whose final
    /// write differs from the read's value. `from` cannot sit between `w`
    /// and `r`, and it precedes `r`, so it must precede `w`:
    /// `from → to = w`.
    InterferenceBefore {
        /// Step index of the grounding [`Rule::ReadFrom`] edge `w → r`.
        read_from: usize,
        /// Step index proving `from → r`.
        after: usize,
    },
}

impl Rule {
    /// Stable kebab-case tag, used verbatim in the JSON form.
    pub fn tag(&self) -> &'static str {
        match self {
            Rule::RealTime => "real-time",
            Rule::ReadFrom { .. } => "read-from",
            Rule::AntiDependency { .. } => "anti-dependency",
            Rule::ReadCommitOrder { .. } => "read-commit-order",
            Rule::Tms2CommitOrder { .. } => "tms2-commit-order",
            Rule::Transitive { .. } => "transitive",
            Rule::InterferenceAfter { .. } => "interference-after",
            Rule::InterferenceBefore { .. } => "interference-before",
        }
    }
}

/// A machine-checkable refutation: a closed derivation of a must-precede
/// cycle under `criterion`'s rules.
///
/// For [`PlanCriterion::Strict`] the steps refer to the *committed
/// projection* of the input (the history the strict-serializability query
/// actually runs over, see [`PlanCriterion::prepare`]); validate against
/// that prepared history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The criterion whose must-precede rules the derivation uses.
    pub criterion: PlanCriterion,
    /// The derivation, premises strictly before conclusions.
    pub steps: Vec<Step>,
    /// Indices into [`Certificate::steps`] whose edges chain head-to-tail
    /// (`steps[cycle[i]].to == steps[cycle[i+1]].from`, wrapping).
    pub cycle: Vec<usize>,
}

impl Certificate {
    /// The transactions on the refuting cycle, in cycle order.
    pub fn cycle_txns(&self) -> Vec<TxnId> {
        self.cycle
            .iter()
            .filter_map(|&i| self.steps.get(i).map(|s| s.from))
            .collect()
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} refutation cycle ({} steps): ",
            self.criterion.display_name(),
            self.steps.len()
        )?;
        for (i, &s) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            match self.steps.get(s) {
                Some(step) => write!(f, "{} [{}]", step.from, step.rule.tag())?,
                None => write!(f, "#{s}?")?,
            }
        }
        if let Some(&first) = self.cycle.first() {
            if let Some(step) = self.steps.get(first) {
                write!(f, " -> {}", step.from)?;
            }
        }
        Ok(())
    }
}

/// Why [`check_certificate`] rejected a certificate. Every variant names
/// the offending position, so a tampered certificate is pinpointed rather
/// than waved away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertificateError {
    /// A step names a transaction the history does not contain.
    UnknownTxn {
        /// Offending step index.
        step: usize,
        /// The unknown transaction.
        txn: TxnId,
    },
    /// A step's endpoints coincide (`from == to`), which no rule derives.
    SelfEdge {
        /// Offending step index.
        step: usize,
    },
    /// A derived step names a premise at or after its own position, which
    /// would break the well-foundedness of the derivation.
    PremiseOutOfOrder {
        /// Offending step index.
        step: usize,
        /// The out-of-order premise index.
        premise: usize,
    },
    /// A derived step's premises do not connect the way the rule requires
    /// (wrong endpoints, or a non-`ReadFrom` step where one is required).
    PremiseMismatch {
        /// Offending step index.
        step: usize,
        /// What failed to line up.
        detail: String,
    },
    /// An axiom step is not supported by the literal history: the named
    /// events are absent, mis-shaped, or the side conditions (uniqueness,
    /// no-restorer, commit capability, eligibility) fail.
    AxiomUnsupported {
        /// Offending step index.
        step: usize,
        /// What re-derivation found instead.
        detail: String,
    },
    /// A step uses a rule outside the certificate's criterion scope (e.g.
    /// a [`Rule::ReadCommitOrder`] step in a du-opacity certificate).
    WrongScope {
        /// Offending step index.
        step: usize,
    },
    /// The cycle is empty.
    EmptyCycle,
    /// The cycle names a step index outside the step list.
    CycleStepOutOfRange {
        /// Position within the cycle list.
        position: usize,
        /// The out-of-range step index.
        step: usize,
    },
    /// Consecutive cycle edges do not chain (`steps[cycle[i]].to !=
    /// steps[cycle[i+1]].from`, wrapping at the end).
    CycleBroken {
        /// First position of the broken link.
        position: usize,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::UnknownTxn { step, txn } => {
                write!(f, "step {step}: transaction {txn} is not in the history")
            }
            CertificateError::SelfEdge { step } => {
                write!(f, "step {step}: from and to coincide")
            }
            CertificateError::PremiseOutOfOrder { step, premise } => {
                write!(f, "step {step}: premise {premise} is not strictly earlier")
            }
            CertificateError::PremiseMismatch { step, detail } => {
                write!(f, "step {step}: premise mismatch: {detail}")
            }
            CertificateError::AxiomUnsupported { step, detail } => {
                write!(
                    f,
                    "step {step}: axiom not supported by the history: {detail}"
                )
            }
            CertificateError::WrongScope { step } => {
                write!(
                    f,
                    "step {step}: rule outside the certificate's criterion scope"
                )
            }
            CertificateError::EmptyCycle => write!(f, "certificate cycle is empty"),
            CertificateError::CycleStepOutOfRange { position, step } => write!(
                f,
                "cycle position {position}: step index {step} out of range"
            ),
            CertificateError::CycleBroken { position } => write!(
                f,
                "cycle position {position}: edges do not chain head-to-tail"
            ),
        }
    }
}

impl Error for CertificateError {}

/// Whether `txn`'s read of `obj` returning `value` with response at event
/// index `read` exists, is complete, and is *external* (no earlier own
/// completed write to `obj`).
fn check_external_read(
    h: &History,
    txn: TxnId,
    obj: ObjId,
    value: Value,
    read: usize,
) -> Result<(), String> {
    let view = h.txn(txn).ok_or_else(|| format!("{txn} not in history"))?;
    let mut wrote_before = false;
    for op in view.ops() {
        if op.resp_index == Some(read) {
            return match (op.op, op.resp) {
                (Op::Read(x), Some(Ret::Value(got))) if x == obj && got == value => {
                    if wrote_before {
                        Err(format!(
                            "{txn}'s read of {obj} at event {read} is internal (own prior write)"
                        ))
                    } else {
                        Ok(())
                    }
                }
                _ => Err(format!(
                    "event {read} is not {txn} reading {value:?} from {obj}"
                )),
            };
        }
        if let (Op::Write(x, _), Some(Ret::Ok)) = (op.op, op.resp) {
            if x == obj {
                wrote_before = true;
            }
        }
    }
    Err(format!("{txn} has no response at event {read}"))
}

/// Whether `txn` is an admissible supplier of (`obj`, `value`) for a read
/// responding at event `read`: committable, final write of `value` to
/// `obj`, and (du mode) `tryC` invoked before the read's response.
fn is_supplier(h: &History, txn: TxnId, obj: ObjId, value: Value, read: usize, du: bool) -> bool {
    let Some(view) = h.txn(txn) else {
        return false;
    };
    if view.commit_capability() == CommitCapability::NeverCommitted {
        return false;
    }
    if view.last_write_to(obj) != Some(value) {
        return false;
    }
    if du {
        match h.try_commit_inv_index(txn) {
            Some(inv) => inv < read,
            None => false,
        }
    } else {
        true
    }
}

/// Validates `cert` against the literal history `h`, re-deriving every
/// step: axioms from the events themselves, derived steps from strictly
/// earlier premises, then the closed cycle.
///
/// Independent of the saturation engine and of [`crate::spec`]: only
/// `h`'s own accessors are consulted. Polynomial in `|H|` and the
/// certificate size.
///
/// # Errors
///
/// The first defect found, as a structured [`CertificateError`].
pub fn check_certificate(h: &History, cert: &Certificate) -> Result<(), CertificateError> {
    let du = cert.criterion == PlanCriterion::Du;
    for (i, step) in cert.steps.iter().enumerate() {
        if step.from == step.to {
            return Err(CertificateError::SelfEdge { step: i });
        }
        for txn in [step.from, step.to] {
            if !h.participates(txn) {
                return Err(CertificateError::UnknownTxn { step: i, txn });
            }
        }
        check_step(h, cert, i, du)?;
    }
    if cert.cycle.is_empty() {
        return Err(CertificateError::EmptyCycle);
    }
    for (pos, &s) in cert.cycle.iter().enumerate() {
        if s >= cert.steps.len() {
            return Err(CertificateError::CycleStepOutOfRange {
                position: pos,
                step: s,
            });
        }
        let next = cert.cycle[(pos + 1) % cert.cycle.len()];
        if next >= cert.steps.len() {
            continue; // reported at its own position
        }
        if cert.steps[s].to != cert.steps[next].from {
            return Err(CertificateError::CycleBroken { position: pos });
        }
    }
    Ok(())
}

/// Fetches premise `p` of step `i`, enforcing strict ordering.
fn premise(cert: &Certificate, i: usize, p: usize) -> Result<&Step, CertificateError> {
    if p >= i {
        return Err(CertificateError::PremiseOutOfOrder {
            step: i,
            premise: p,
        });
    }
    Ok(&cert.steps[p])
}

/// The (`w`, `r`, `obj`, `value`) quadruple of a [`Rule::ReadFrom`]
/// premise, or a mismatch error.
fn read_from_premise(
    cert: &Certificate,
    i: usize,
    p: usize,
) -> Result<(TxnId, TxnId, ObjId, Value), CertificateError> {
    let rf = premise(cert, i, p)?;
    match rf.rule {
        Rule::ReadFrom { obj, value, .. } => Ok((rf.from, rf.to, obj, value)),
        _ => Err(CertificateError::PremiseMismatch {
            step: i,
            detail: format!("premise {p} is not a read-from step"),
        }),
    }
}

fn check_step(h: &History, cert: &Certificate, i: usize, du: bool) -> Result<(), CertificateError> {
    let step = &cert.steps[i];
    let axiom_err = |detail: String| CertificateError::AxiomUnsupported { step: i, detail };
    match step.rule {
        Rule::RealTime => {
            if !h.precedes_rt(step.from, step.to) {
                return Err(axiom_err(format!(
                    "{} does not precede {} in real time",
                    step.from, step.to
                )));
            }
        }
        Rule::ReadFrom { obj, value, read } => {
            if value == Value::INITIAL {
                return Err(axiom_err(
                    "read-from cannot ground an initial-value read (T0 supplies it)".into(),
                ));
            }
            check_external_read(h, step.to, obj, value, read).map_err(&axiom_err)?;
            if !is_supplier(h, step.from, obj, value, read, du) {
                return Err(axiom_err(format!(
                    "{} is not an admissible supplier of {value:?} to {obj}",
                    step.from
                )));
            }
            let rival = h.txn_ids().find(|&j| {
                j != step.from && j != step.to && is_supplier(h, j, obj, value, read, du)
            });
            if let Some(j) = rival {
                return Err(axiom_err(format!(
                    "supplier is not unique: {j} also writes {value:?} to {obj}"
                )));
            }
        }
        Rule::AntiDependency { obj, read } => {
            check_external_read(h, step.from, obj, Value::INITIAL, read).map_err(&axiom_err)?;
            let restorer = h.txns().find(|t| {
                t.id() != step.from
                    && t.commit_capability() != CommitCapability::NeverCommitted
                    && t.last_write_to(obj) == Some(Value::INITIAL)
            });
            if let Some(t) = restorer {
                return Err(axiom_err(format!(
                    "{} restores the initial value of {obj}",
                    t.id()
                )));
            }
            let writer = h.txn(step.to).expect("participation checked");
            if writer.commit_capability() != CommitCapability::Committed {
                return Err(axiom_err(format!("{} is not committed", step.to)));
            }
            if writer.last_write_to(obj).is_none() {
                return Err(axiom_err(format!("{} does not write {obj}", step.to)));
            }
        }
        Rule::ReadCommitOrder { obj, read, tryc } => {
            if cert.criterion != PlanCriterion::Rco {
                return Err(CertificateError::WrongScope { step: i });
            }
            let reader = h.txn(step.from).expect("participation checked");
            if h.read_resp_index(step.from, obj) != Some(read) || reader.read_value(obj).is_none() {
                return Err(axiom_err(format!(
                    "{} has no value-returning read of {obj} responding at event {read}",
                    step.from
                )));
            }
            let writer = h.txn(step.to).expect("participation checked");
            if writer.commit_capability() != CommitCapability::Committed {
                return Err(axiom_err(format!("{} is not committed", step.to)));
            }
            if !writer.write_set().contains(&obj) {
                return Err(axiom_err(format!("{} does not write {obj}", step.to)));
            }
            if h.try_commit_inv_index(step.to) != Some(tryc) {
                return Err(axiom_err(format!(
                    "{}'s tryC invocation is not at event {tryc}",
                    step.to
                )));
            }
            if read >= tryc {
                return Err(axiom_err(format!(
                    "read response {read} does not precede tryC invocation {tryc}"
                )));
            }
        }
        Rule::Tms2CommitOrder { obj, resp, tryc } => {
            if cert.criterion != PlanCriterion::Tms2 {
                return Err(CertificateError::WrongScope { step: i });
            }
            let writer = h.txn(step.from).expect("participation checked");
            if !writer.is_committed() {
                return Err(axiom_err(format!("{} is not committed", step.from)));
            }
            let w_resp = writer
                .ops()
                .iter()
                .find(|o| o.op.is_try_commit())
                .and_then(|o| o.resp_index);
            if w_resp != Some(resp) {
                return Err(axiom_err(format!(
                    "{}'s tryC response is not at event {resp}",
                    step.from
                )));
            }
            if !writer.write_set().contains(&obj) {
                return Err(axiom_err(format!("{} does not write {obj}", step.from)));
            }
            if h.try_commit_inv_index(step.to) != Some(tryc) {
                return Err(axiom_err(format!(
                    "{}'s tryC invocation is not at event {tryc}",
                    step.to
                )));
            }
            let reader = h.txn(step.to).expect("participation checked");
            if !reader.read_set().contains(&obj) {
                return Err(axiom_err(format!("{} does not read {obj}", step.to)));
            }
            if resp >= tryc {
                return Err(axiom_err(format!(
                    "tryC response {resp} does not precede tryC invocation {tryc}"
                )));
            }
        }
        Rule::Transitive { first, second } => {
            let a = premise(cert, i, first)?;
            let b = premise(cert, i, second)?;
            if a.from != step.from || a.to != b.from || b.to != step.to {
                return Err(CertificateError::PremiseMismatch {
                    step: i,
                    detail: format!(
                        "{} -> {} and {} -> {} do not compose to {} -> {}",
                        a.from, a.to, b.from, b.to, step.from, step.to
                    ),
                });
            }
        }
        Rule::InterferenceAfter { read_from, before } => {
            let (w, r, obj, value) = read_from_premise(cert, i, read_from)?;
            let b = premise(cert, i, before)?;
            if step.from != r || b.from != w || b.to != step.to {
                return Err(CertificateError::PremiseMismatch {
                    step: i,
                    detail: "premises do not anchor r and w -> to".into(),
                });
            }
            check_interferer(h, i, step.to, obj, value)?;
        }
        Rule::InterferenceBefore { read_from, after } => {
            let (w, r, obj, value) = read_from_premise(cert, i, read_from)?;
            let a = premise(cert, i, after)?;
            if step.to != w || a.from != step.from || a.to != r {
                return Err(CertificateError::PremiseMismatch {
                    step: i,
                    detail: "premises do not anchor w and from -> r".into(),
                });
            }
            check_interferer(h, i, step.from, obj, value)?;
        }
    }
    Ok(())
}

/// An interference rule's third party must be a *committed* writer of
/// `obj` whose final write differs from the read's `value` — only then is
/// "cannot sit between supplier and reader" forced.
fn check_interferer(
    h: &History,
    i: usize,
    txn: TxnId,
    obj: ObjId,
    value: Value,
) -> Result<(), CertificateError> {
    let view = h.txn(txn).expect("participation checked");
    if view.commit_capability() != CommitCapability::Committed {
        return Err(CertificateError::AxiomUnsupported {
            step: i,
            detail: format!("{txn} is not committed"),
        });
    }
    match view.last_write_to(obj) {
        Some(v) if v != value => Ok(()),
        Some(_) => Err(CertificateError::AxiomUnsupported {
            step: i,
            detail: format!("{txn}'s final write to {obj} re-supplies the read value"),
        }),
        None => Err(CertificateError::AxiomUnsupported {
            step: i,
            detail: format!("{txn} does not write {obj}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::HistoryBuilder;

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    /// T1 writes then commits; T2 (entirely after T1) reads the initial
    /// value: real-time gives T1 -> T2, anti-dependency gives T2 -> T1.
    fn lost_initial_history() -> History {
        HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(0))
            .build()
    }

    fn lost_initial_certificate(h: &History) -> Certificate {
        let read = h.read_resp_index(t(2), x()).expect("T2 reads X0");
        Certificate {
            criterion: PlanCriterion::FinalState,
            steps: vec![
                Step {
                    from: t(1),
                    to: t(2),
                    rule: Rule::RealTime,
                },
                Step {
                    from: t(2),
                    to: t(1),
                    rule: Rule::AntiDependency { obj: x(), read },
                },
            ],
            cycle: vec![0, 1],
        }
    }

    #[test]
    fn valid_certificate_is_accepted() {
        let h = lost_initial_history();
        let cert = lost_initial_certificate(&h);
        assert_eq!(check_certificate(&h, &cert), Ok(()));
    }

    #[test]
    fn broken_cycle_is_rejected() {
        let h = lost_initial_history();
        let mut cert = lost_initial_certificate(&h);
        cert.cycle = vec![0, 0];
        assert!(matches!(
            check_certificate(&h, &cert),
            Err(CertificateError::CycleBroken { .. })
        ));
    }

    #[test]
    fn empty_cycle_is_rejected() {
        let h = lost_initial_history();
        let mut cert = lost_initial_certificate(&h);
        cert.cycle.clear();
        assert_eq!(
            check_certificate(&h, &cert),
            Err(CertificateError::EmptyCycle)
        );
    }

    #[test]
    fn unknown_txn_is_rejected() {
        let h = lost_initial_history();
        let mut cert = lost_initial_certificate(&h);
        cert.steps[0].from = t(9);
        assert!(matches!(
            check_certificate(&h, &cert),
            Err(CertificateError::UnknownTxn { step: 0, .. })
        ));
    }

    #[test]
    fn fabricated_real_time_edge_is_rejected() {
        // T1 and T2 overlap: no real-time edge either way.
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_value(t(2), v(0))
            .resp_ok(t(1))
            .commit(t(1))
            .commit(t(2))
            .build();
        let cert = Certificate {
            criterion: PlanCriterion::FinalState,
            steps: vec![Step {
                from: t(1),
                to: t(2),
                rule: Rule::RealTime,
            }],
            cycle: vec![0],
        };
        assert!(matches!(
            check_certificate(&h, &cert),
            Err(CertificateError::AxiomUnsupported { step: 0, .. })
                | Err(CertificateError::CycleBroken { .. })
        ));
    }

    #[test]
    fn rco_rule_is_scope_gated() {
        let h = lost_initial_history();
        let mut cert = lost_initial_certificate(&h);
        cert.steps[1].rule = Rule::ReadCommitOrder {
            obj: x(),
            read: 0,
            tryc: 1,
        };
        assert_eq!(
            check_certificate(&h, &cert),
            Err(CertificateError::WrongScope { step: 1 })
        );
    }

    #[test]
    fn read_from_requires_unique_supplier() {
        // Two committable writers of the same value: the edge is not
        // forced, so a read-from step must be rejected.
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(7))
            .committed_writer(t(2), x(), v(7))
            .committed_reader(t(3), x(), v(7))
            .build();
        let read = h.read_resp_index(t(3), x()).unwrap();
        let cert = Certificate {
            criterion: PlanCriterion::FinalState,
            steps: vec![Step {
                from: t(1),
                to: t(3),
                rule: Rule::ReadFrom {
                    obj: x(),
                    value: v(7),
                    read,
                },
            }],
            cycle: vec![0],
        };
        assert!(matches!(
            check_certificate(&h, &cert),
            Err(CertificateError::AxiomUnsupported { step: 0, .. })
        ));
    }

    #[test]
    fn premise_order_is_enforced() {
        let h = lost_initial_history();
        let mut cert = lost_initial_certificate(&h);
        cert.steps.push(Step {
            from: t(1),
            to: t(1),
            rule: Rule::Transitive {
                first: 0,
                second: 1,
            },
        });
        // Self edge reported before the premise check.
        assert!(matches!(
            check_certificate(&h, &cert),
            Err(CertificateError::SelfEdge { step: 2 })
        ));

        let mut fwd = lost_initial_certificate(&h);
        fwd.steps.insert(
            0,
            Step {
                from: t(1),
                to: t(2),
                rule: Rule::Transitive {
                    first: 1,
                    second: 2,
                },
            },
        );
        fwd.cycle = vec![1, 2];
        assert!(matches!(
            check_certificate(&h, &fwd),
            Err(CertificateError::PremiseOutOfOrder { step: 0, .. })
        ));
    }

    #[test]
    fn display_renders_cycle() {
        let h = lost_initial_history();
        let cert = lost_initial_certificate(&h);
        let text = cert.to_string();
        assert!(text.contains("T1"), "{text}");
        assert!(text.contains("anti-dependency"), "{text}");
    }
}
