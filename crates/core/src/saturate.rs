//! Must-precede saturation: a polynomial datalog-style fixpoint over the
//! precedence constraints a criterion imposes, producing *certified*
//! verdicts.
//!
//! The engine seeds a constraint graph over the history's transactions
//! with every edge the criterion forces outright — real-time order,
//! singleton candidate-writer (read-from) edges, initial-value
//! anti-dependencies, and the RCO/TMS2 commit-order edges for those
//! scopes — then saturates to closure with two derivation rule families:
//!
//! * **transitivity** (Warshall closure, provenance-tracking);
//! * **interference**: when a read's value has a *unique* admissible
//!   supplier `w`, any committed writer of the object whose final write
//!   differs from the value cannot sit between `w` and the reader, so a
//!   known edge on one side forces an edge on the other (the same
//!   disjunction resolution as the Theorem 11 pass in [`crate::unique`],
//!   generalized beyond unique-write histories).
//!
//! Every derived edge records *provenance*: which rule produced it and
//! from which premises. A cycle is a sound refutation and is exported as
//! a [`Certificate`] — a closed derivation the independent
//! [`check_certificate`] validator re-derives from the literal history. A
//! cycle-free saturation that pins down *every* pair of transactions is a
//! decision the other way: the unique linear extension is validated by
//! [`crate::check_witness`] and returned as a witness. Anything else is
//! [`SaturationOutcome::Inconclusive`] and falls through to the planner
//! and the backtracking search.

use crate::bitset::BitSet;
use crate::certificate::{check_certificate, Certificate, Rule, Step};
use crate::plan::{supplier_sets, PlanCriterion};
use crate::spec::Spec;
use crate::{check_witness, CriterionKind, Verdict, Violation, Witness};
use duop_history::{CommitCapability, History, ObjId, TxnId, Value};
use std::collections::BTreeMap;

/// Transaction-count gate: saturation is O(n³) in the transaction count,
/// so histories larger than this fall through to the planner untouched.
const MAX_TXNS: usize = 512;

/// Bound on interference/closure alternations; the fixpoint converges in
/// a handful of rounds on every realistic history, and the gate keeps the
/// worst case polynomial with a small constant.
const MAX_ROUNDS: usize = 64;

/// What saturation concluded about one criterion over one history.
#[derive(Clone, Debug)]
pub enum SaturationOutcome {
    /// The must-precede relation is cyclic: the history violates the
    /// criterion, and the attached certificate proves it.
    Refuted(Certificate),
    /// Saturation alone pinned down a unique serialization order and the
    /// independent witness validator accepted it.
    Decided(Witness),
    /// Saturation neither refuted nor fully determined the order; the
    /// planner and search must decide.
    Inconclusive,
}

/// Provenance of one edge in the saturation graph.
#[derive(Clone, Copy, Debug)]
enum Prov {
    /// Real-time order.
    Rt,
    /// Singleton-supplier read-from edge for read slot `slot`.
    ReadFrom { slot: usize },
    /// Initial-value anti-dependency forced by read slot `slot`.
    AntiDep { slot: usize },
    /// RCO commit-order edge (committed writer), with grounding events.
    Rco {
        read: usize,
        tryc: usize,
        obj: ObjId,
    },
    /// TMS2 commit-order edge, with grounding events.
    Tms2 {
        resp: usize,
        tryc: usize,
        obj: ObjId,
    },
    /// Transitive through `mid`.
    Trans { mid: usize },
    /// Interference: reader of slot `slot` pushed after a conflicting
    /// committed writer.
    InterfAfter { slot: usize },
    /// Interference: conflicting committed writer pushed before the
    /// supplier of slot `slot`.
    InterfBefore { slot: usize },
}

/// A read slot with a unique admissible supplier (the premise of the
/// read-from and interference rules).
#[derive(Clone, Copy, Debug)]
struct RfSlot {
    /// Spec index of the unique supplier.
    supplier: usize,
    /// Spec index of the reader.
    reader: usize,
    /// Interned object index.
    obj: usize,
    /// The value read.
    value: Value,
}

struct Saturator<'a> {
    spec: &'a Spec,
    criterion: PlanCriterion,
    n: usize,
    /// Successor sets: `reach[i]` holds every `j` with a derived edge
    /// `i → j`.
    reach: Vec<BitSet>,
    /// Flattened `n × n` provenance, `prov[i * n + j]` for edge `i → j`.
    prov: Vec<Option<Prov>>,
    /// Read slots with singleton suppliers, indexed by slot.
    rf: Vec<Option<RfSlot>>,
}

impl<'a> Saturator<'a> {
    fn new(spec: &'a Spec, criterion: PlanCriterion) -> Self {
        let n = spec.txns.len();
        Saturator {
            spec,
            criterion,
            n,
            reach: (0..n).map(|_| BitSet::new(n)).collect(),
            prov: vec![None; n * n],
            rf: vec![None; spec.reads.len()],
        }
    }

    fn add(&mut self, i: usize, j: usize, prov: Prov) -> bool {
        if self.reach[i].contains(j) {
            return false;
        }
        self.reach[i].insert(j);
        self.prov[i * self.n + j] = Some(prov);
        true
    }

    fn seed(&mut self, h: &History) {
        for j in 0..self.n {
            let preds: Vec<usize> = self.spec.rt_preds[j].iter_ones().collect();
            for i in preds {
                self.add(i, j, Prov::Rt);
            }
        }

        let du = self.criterion == PlanCriterion::Du;
        let (_, suppliers) = supplier_sets(self.spec, du);
        for (slot, r) in self.spec.reads.iter().enumerate() {
            if r.value == Value::INITIAL || suppliers[slot].count_ones() != 1 {
                continue;
            }
            let w = suppliers[slot].iter_ones().next().expect("singleton");
            self.rf[slot] = Some(RfSlot {
                supplier: w,
                reader: r.txn,
                obj: r.obj,
                value: r.value,
            });
            self.add(w, r.txn, Prov::ReadFrom { slot });
        }

        // Initial-value anti-dependencies, exactly as the lint pipeline
        // derives them (rule CY004's edge source).
        for (slot, r) in self.spec.reads.iter().enumerate() {
            if r.value != Value::INITIAL {
                continue;
            }
            let restorer = self.spec.txns.iter().enumerate().any(|(j, t)| {
                j != r.txn
                    && t.capability != CommitCapability::NeverCommitted
                    && t.writes
                        .iter()
                        .any(|&(o, v)| o == r.obj && v == Value::INITIAL)
            });
            if restorer {
                continue;
            }
            for (j, t) in self.spec.txns.iter().enumerate() {
                if j != r.txn
                    && t.capability == CommitCapability::Committed
                    && t.writes.iter().any(|&(o, _)| o == r.obj)
                {
                    self.add(r.txn, j, Prov::AntiDep { slot });
                }
            }
        }

        match self.criterion {
            PlanCriterion::Rco => self.seed_rco(h),
            PlanCriterion::Tms2 => self.seed_tms2(h),
            _ => {}
        }
    }

    /// RCO edges whose target is already committed in `H` (the
    /// unconditional ones; commit-pending targets stay with the search).
    fn seed_rco(&mut self, h: &History) {
        for reader in h.txns() {
            let Some(&ri) = self.spec.index.get(&reader.id()) else {
                continue;
            };
            for &x in &reader.read_set() {
                let Some(resp) = h.read_resp_index(reader.id(), x) else {
                    continue;
                };
                if reader.read_value(x).is_none() {
                    continue;
                }
                for writer in h.txns() {
                    if writer.id() == reader.id()
                        || writer.commit_capability() != CommitCapability::Committed
                        || !writer.write_set().contains(&x)
                    {
                        continue;
                    }
                    let Some(inv) = h.try_commit_inv_index(writer.id()) else {
                        continue;
                    };
                    if resp < inv {
                        if let Some(&wi) = self.spec.index.get(&writer.id()) {
                            self.add(
                                ri,
                                wi,
                                Prov::Rco {
                                    read: resp,
                                    tryc: inv,
                                    obj: x,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    fn seed_tms2(&mut self, h: &History) {
        for writer in h.txns() {
            if !writer.is_committed() {
                continue;
            }
            let Some(w_resp) = writer
                .ops()
                .iter()
                .find(|o| o.op.is_try_commit())
                .and_then(|o| o.resp_index)
            else {
                continue;
            };
            let Some(&wi) = self.spec.index.get(&writer.id()) else {
                continue;
            };
            let wset = writer.write_set();
            for reader in h.txns() {
                if reader.id() == writer.id() {
                    continue;
                }
                let Some(r_inv) = h.try_commit_inv_index(reader.id()) else {
                    continue;
                };
                if w_resp >= r_inv {
                    continue;
                }
                let Some(&obj) = reader.read_set().iter().find(|x| wset.contains(x)) else {
                    continue;
                };
                if let Some(&rj) = self.spec.index.get(&reader.id()) {
                    self.add(
                        wi,
                        rj,
                        Prov::Tms2 {
                            resp: w_resp,
                            tryc: r_inv,
                            obj,
                        },
                    );
                }
            }
        }
    }

    /// Warshall closure with per-edge provenance: each new cell records
    /// the pivot, whose constituent edges exist at derivation time — so
    /// the provenance graph stays well-founded.
    fn close(&mut self) {
        let n = self.n;
        let mut new_bits: Vec<usize> = Vec::new();
        for k in 0..n {
            let via = self.reach[k].clone();
            for i in 0..n {
                if i == k || !self.reach[i].contains(k) {
                    continue;
                }
                new_bits.clear();
                for j in via.iter_ones() {
                    if !self.reach[i].contains(j) {
                        new_bits.push(j);
                    }
                }
                if new_bits.is_empty() {
                    continue;
                }
                for &j in &new_bits {
                    self.prov[i * n + j] = Some(Prov::Trans { mid: k });
                }
                self.reach[i].union_with(&via);
            }
        }
    }

    /// One interference pass over the closed relation; `true` if any edge
    /// was added. For each singleton-supplier slot `(w, r, X, v)` and
    /// committed writer `j` of `X` with final value `≠ v`: `w → j` forces
    /// `r → j`, and `j → r` forces `j → w`.
    fn interfere(&mut self) -> bool {
        let mut changed = false;
        for slot in 0..self.rf.len() {
            let Some(rf) = self.rf[slot] else {
                continue;
            };
            for (j, t) in self.spec.txns.iter().enumerate() {
                if j == rf.reader || j == rf.supplier || t.capability != CommitCapability::Committed
                {
                    continue;
                }
                if !t.writes.iter().any(|&(o, v)| o == rf.obj && v != rf.value) {
                    continue;
                }
                if self.reach[rf.supplier].contains(j) && !self.reach[rf.reader].contains(j) {
                    changed |= self.add(rf.reader, j, Prov::InterfAfter { slot });
                }
                if self.reach[j].contains(rf.reader) && !self.reach[j].contains(rf.supplier) {
                    changed |= self.add(j, rf.supplier, Prov::InterfBefore { slot });
                }
            }
        }
        changed
    }

    /// Index of a transaction on a cycle, if the closed relation has one.
    fn cycle_head(&self) -> Option<usize> {
        (0..self.n).find(|&i| self.reach[i].contains(i))
    }

    /// Exports the closed derivation of the self-loop at `head` as a
    /// certificate.
    fn certificate(&self, head: usize) -> Certificate {
        let n = self.n;
        let mut index: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut steps: Vec<Step> = Vec::new();
        // The read-from axiom step grounding each interference slot. The
        // graph edge supplier → reader may carry *other* provenance (e.g.
        // real time, if that was seeded first), so the interference rules
        // emit their own axiom step per slot instead of reusing the cell.
        let mut rf_step: BTreeMap<usize, usize> = BTreeMap::new();
        let ensure_rf_step =
            |slot: usize, steps: &mut Vec<Step>, rf_step: &mut BTreeMap<usize, usize>| {
                *rf_step.entry(slot).or_insert_with(|| {
                    let r = &self.spec.reads[slot];
                    let rf = self.rf[slot].expect("grounded slot");
                    steps.push(Step {
                        from: self.spec.txns[rf.supplier].id,
                        to: self.spec.txns[rf.reader].id,
                        rule: Rule::ReadFrom {
                            obj: self.spec.objs[r.obj],
                            value: r.value,
                            read: r.resp_index,
                        },
                    });
                    steps.len() - 1
                })
            };

        // The self-loop is always transitive (no axiom is reflexive):
        // its two constituent edges are the top-level cycle.
        let Some(Prov::Trans { mid }) = self.prov[head * n + head] else {
            unreachable!("self-loop must be transitive");
        };
        let goals = [(head, mid), (mid, head)];

        let mut stack: Vec<(usize, usize)> = goals.to_vec();
        while let Some(&(i, j)) = stack.last() {
            if index.contains_key(&(i, j)) {
                stack.pop();
                continue;
            }
            let prov = self.prov[i * n + j].expect("edge has provenance");
            let premises: Vec<(usize, usize)> = match prov {
                Prov::Trans { mid } => vec![(i, mid), (mid, j)],
                Prov::InterfAfter { slot } => {
                    let rf = self.rf[slot].expect("grounded slot");
                    vec![(rf.supplier, j)]
                }
                Prov::InterfBefore { slot } => {
                    let rf = self.rf[slot].expect("grounded slot");
                    vec![(i, rf.reader)]
                }
                _ => Vec::new(),
            };
            let missing: Vec<(usize, usize)> = premises
                .iter()
                .copied()
                .filter(|cell| !index.contains_key(cell))
                .collect();
            if !missing.is_empty() {
                stack.extend(missing);
                continue;
            }
            let rule = match prov {
                Prov::Rt => Rule::RealTime,
                Prov::ReadFrom { slot } => {
                    let r = &self.spec.reads[slot];
                    Rule::ReadFrom {
                        obj: self.spec.objs[r.obj],
                        value: r.value,
                        read: r.resp_index,
                    }
                }
                Prov::AntiDep { slot } => {
                    let r = &self.spec.reads[slot];
                    Rule::AntiDependency {
                        obj: self.spec.objs[r.obj],
                        read: r.resp_index,
                    }
                }
                Prov::Rco { read, tryc, obj } => Rule::ReadCommitOrder { obj, read, tryc },
                Prov::Tms2 { resp, tryc, obj } => Rule::Tms2CommitOrder { obj, resp, tryc },
                Prov::Trans { mid } => Rule::Transitive {
                    first: index[&(i, mid)],
                    second: index[&(mid, j)],
                },
                Prov::InterfAfter { slot } => {
                    let rf = self.rf[slot].expect("grounded slot");
                    Rule::InterferenceAfter {
                        read_from: ensure_rf_step(slot, &mut steps, &mut rf_step),
                        before: index[&(rf.supplier, j)],
                    }
                }
                Prov::InterfBefore { slot } => {
                    let rf = self.rf[slot].expect("grounded slot");
                    Rule::InterferenceBefore {
                        read_from: ensure_rf_step(slot, &mut steps, &mut rf_step),
                        after: index[&(i, rf.reader)],
                    }
                }
            };
            index.insert((i, j), steps.len());
            steps.push(Step {
                from: self.spec.txns[i].id,
                to: self.spec.txns[j].id,
                rule,
            });
            stack.pop();
        }

        let cycle = goals.iter().map(|cell| index[cell]).collect();
        Certificate {
            criterion: self.criterion,
            steps,
            cycle,
        }
    }

    /// `Some(order)` when the closed acyclic relation orders *every* pair
    /// — the unique linear extension.
    fn total_order(&self) -> Option<Vec<usize>> {
        let n = self.n;
        for i in 0..n {
            for j in (i + 1)..n {
                if !self.reach[i].contains(j) && !self.reach[j].contains(i) {
                    return None;
                }
            }
        }
        // With a total strict order, predecessor counts are 0..n-1.
        let mut order = vec![usize::MAX; n];
        for i in 0..n {
            let pos = (0..n).filter(|&k| self.reach[k].contains(i)).count();
            if order[pos] != usize::MAX {
                return None; // defensive: duplicate predecessor count
            }
            order[pos] = i;
        }
        Some(order)
    }
}

/// The witness-validator rendering of each saturable criterion.
fn witness_kind(criterion: PlanCriterion) -> CriterionKind {
    match criterion {
        PlanCriterion::FinalState | PlanCriterion::Strict => CriterionKind::FinalStateOpacity,
        PlanCriterion::Du => CriterionKind::DuOpacity,
        PlanCriterion::Rco => CriterionKind::ReadCommitOrder,
        PlanCriterion::Tms2 => CriterionKind::Tms2,
    }
}

/// Saturates `criterion`'s must-precede relation over `h`.
///
/// For [`PlanCriterion::Strict`] the input is first restricted to its
/// committed projection (as [`PlanCriterion::prepare`] does); the
/// resulting certificate or witness refers to that projection, matching
/// the search path's convention.
///
/// Refutations are self-validated with [`check_certificate`] before being
/// returned; a certificate the independent validator rejects (which would
/// indicate an engine bug, checked in debug builds) degrades to
/// [`SaturationOutcome::Inconclusive`] rather than an unsound verdict.
pub fn saturate(h: &History, criterion: PlanCriterion) -> SaturationOutcome {
    let prepared = criterion.prepare(h);
    let hh = prepared.as_ref().unwrap_or(h);
    saturate_prepared(hh, criterion)
}

/// As [`saturate`], over an already-[`PlanCriterion::prepare`]d history.
pub(crate) fn saturate_prepared(hh: &History, criterion: PlanCriterion) -> SaturationOutcome {
    let n = hh.txn_count();
    if n == 0 || n > MAX_TXNS {
        return SaturationOutcome::Inconclusive;
    }
    let Ok(spec) = Spec::build(hh) else {
        // Internal-read inconsistency: the spec precheck on the main path
        // reports it with its own violation shape.
        return SaturationOutcome::Inconclusive;
    };

    let mut sat = Saturator::new(&spec, criterion);
    sat.seed(hh);
    let mut rounds = 0;
    loop {
        sat.close();
        if let Some(head) = sat.cycle_head() {
            let cert = sat.certificate(head);
            if let Err(e) = check_certificate(hh, &cert) {
                debug_assert!(false, "saturation produced an invalid certificate: {e}");
                return SaturationOutcome::Inconclusive;
            }
            return SaturationOutcome::Refuted(cert);
        }
        rounds += 1;
        if rounds >= MAX_ROUNDS || !sat.interfere() {
            break;
        }
    }

    let Some(order) = sat.total_order() else {
        return SaturationOutcome::Inconclusive;
    };

    // Commit choices: a commit-pending transaction commits iff some read
    // depends on it as the unique supplier; everything else aborts. The
    // independent witness validator has the final word.
    let mut choices: BTreeMap<TxnId, bool> = BTreeMap::new();
    for (i, t) in spec.txns.iter().enumerate() {
        if t.capability == CommitCapability::CommitPending {
            let needed = sat.rf.iter().flatten().any(|rf| rf.supplier == i);
            choices.insert(t.id, needed);
        }
    }
    let witness = Witness::new(order.iter().map(|&i| spec.txns[i].id).collect(), choices);
    match check_witness(hh, &witness, witness_kind(criterion)) {
        Ok(()) => SaturationOutcome::Decided(witness),
        Err(_) => SaturationOutcome::Inconclusive,
    }
}

/// Runs saturation for `criterion` over `h` (preparing as needed) and
/// wraps a decisive outcome as the verdict the check pipeline reports:
/// `Some(Violated(Certified))` or `Some(Satisfied)`; `None` when
/// inconclusive. This is what the sharding coordinator and the `certify`
/// subcommand call.
pub fn saturate_verdict(h: &History, criterion: PlanCriterion) -> Option<Verdict> {
    match saturate(h, criterion) {
        SaturationOutcome::Refuted(cert) => Some(Verdict::Violated(Violation::Certified {
            criterion: criterion.display_name().into(),
            certificate: Box::new(cert),
        })),
        SaturationOutcome::Decided(w) => Some(Verdict::Satisfied(w)),
        SaturationOutcome::Inconclusive => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::{HistoryBuilder, ObjId};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    /// Committed writer fully before an initial-value reader: real time
    /// vs anti-dependency is a 2-cycle.
    #[test]
    fn lost_initial_value_is_refuted_with_certificate() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(0))
            .build();
        for criterion in [
            PlanCriterion::FinalState,
            PlanCriterion::Du,
            PlanCriterion::Rco,
            PlanCriterion::Tms2,
            PlanCriterion::Strict,
        ] {
            match saturate(&h, criterion) {
                SaturationOutcome::Refuted(cert) => {
                    let hh = criterion.prepare(&h);
                    let target = hh.as_ref().unwrap_or(&h);
                    assert_eq!(check_certificate(target, &cert), Ok(()), "{criterion:?}");
                    assert_eq!(cert.criterion, criterion);
                }
                other => panic!("{criterion:?}: expected refutation, got {other:?}"),
            }
        }
    }

    /// Sequential write-then-read of the written value: the order is
    /// fully determined (rt + read-from), so saturation decides it
    /// positively.
    #[test]
    fn determined_history_yields_validated_witness() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        match saturate(&h, PlanCriterion::Du) {
            SaturationOutcome::Decided(w) => {
                assert_eq!(w.order(), &[t(1), t(2)]);
            }
            other => panic!("expected decision, got {other:?}"),
        }
    }

    /// Two overlapping independent writers: no edge orders them, so
    /// saturation abstains.
    #[test]
    fn undetermined_history_is_inconclusive() {
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_write(t(2), ObjId::new(1), v(2))
            .resp_ok(t(1))
            .resp_ok(t(2))
            .commit(t(1))
            .commit(t(2))
            .build();
        assert!(matches!(
            saturate(&h, PlanCriterion::FinalState),
            SaturationOutcome::Inconclusive
        ));
    }

    /// The interference rules fire: reader r reads v1 from unique
    /// supplier w; a later committed overwriter must be pushed after r.
    #[test]
    fn interference_refutes_overwrite_between_supplier_and_reader() {
        // T1 writes 1 and commits; T2 writes 2 and commits strictly after
        // T1; T3 (after T2) reads 1. T1 is the unique supplier of T3's
        // read; T2 (committed, final write 2 ≠ 1) must not sit between T1
        // and T3, forcing T3 -> T2 — contradicting rt T2 -> T3.
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(2))
            .committed_reader(t(3), x(), v(1))
            .build();
        match saturate(&h, PlanCriterion::FinalState) {
            SaturationOutcome::Refuted(cert) => {
                assert_eq!(check_certificate(&h, &cert), Ok(()));
                assert!(
                    cert.steps.iter().any(|s| matches!(
                        s.rule,
                        Rule::InterferenceAfter { .. } | Rule::InterferenceBefore { .. }
                    )),
                    "expected an interference step: {cert}"
                );
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    /// Saturation agrees with the backtracking search on a spread of
    /// small histories (both polarities).
    #[test]
    fn saturation_never_contradicts_the_search() {
        use crate::{Criterion, DuOpacity, FinalStateOpacity, SearchConfig};
        let histories = vec![
            HistoryBuilder::new()
                .committed_writer(t(1), x(), v(1))
                .committed_reader(t(2), x(), v(1))
                .build(),
            HistoryBuilder::new()
                .committed_writer(t(1), x(), v(1))
                .committed_reader(t(2), x(), v(0))
                .build(),
            HistoryBuilder::new()
                .committed_writer(t(1), x(), v(1))
                .committed_writer(t(2), x(), v(2))
                .committed_reader(t(3), x(), v(1))
                .build(),
            HistoryBuilder::new()
                .write(t(1), x(), v(1))
                .inv_try_commit(t(1))
                .build(),
        ];
        let cfg = SearchConfig {
            saturate: false,
            prelint: false,
            ..SearchConfig::default()
        };
        for h in &histories {
            for criterion in [PlanCriterion::FinalState, PlanCriterion::Du] {
                let exact: Box<dyn Criterion> = match criterion {
                    PlanCriterion::FinalState => {
                        Box::new(FinalStateOpacity::with_config(cfg.clone()))
                    }
                    _ => Box::new(DuOpacity::with_config(cfg.clone())),
                };
                let expected = exact.check(h);
                match saturate(h, criterion) {
                    SaturationOutcome::Refuted(_) => {
                        assert!(expected.is_violated(), "{criterion:?} on {h:?}")
                    }
                    SaturationOutcome::Decided(_) => {
                        assert!(expected.is_satisfied(), "{criterion:?} on {h:?}")
                    }
                    SaturationOutcome::Inconclusive => {}
                }
            }
        }
    }

    #[test]
    fn saturate_verdict_wraps_certificate() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(0))
            .build();
        let verdict = saturate_verdict(&h, PlanCriterion::Du).expect("decided");
        match verdict {
            Verdict::Violated(Violation::Certified {
                criterion,
                certificate,
            }) => {
                assert_eq!(criterion, "du-opacity");
                assert_eq!(check_certificate(&h, &certificate), Ok(()));
            }
            other => panic!("expected certified violation, got {other:?}"),
        }
    }

    #[test]
    fn oversized_history_is_gated() {
        let mut b = HistoryBuilder::new();
        for k in 1..=(MAX_TXNS as u32 + 1) {
            b = b.committed_writer(t(k), ObjId::new(k), v(1));
        }
        let h = b.build();
        assert!(matches!(
            saturate(&h, PlanCriterion::FinalState),
            SaturationOutcome::Inconclusive
        ));
    }
}
