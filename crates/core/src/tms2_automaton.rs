//! The full TMS2 specification automaton (Doherty, Groves, Luchangco,
//! Moir), as a membership checker.
//!
//! Section 4.2 of the paper renders TMS2 informally (a final-state
//! serialization constrained by commit-order edges) and *conjectures* that
//! every TMS2 history is du-opaque. The informal rendering provably does
//! not imply du-opacity (see
//! `duop_experiments::figures::tms2_rendering_gap`); this module
//! implements the automaton itself so the conjecture can be tested against
//! its actual subject.
//!
//! ## The automaton
//!
//! TMS2 maintains a growing sequence of memory snapshots `mems`
//! (`mems[0]` is the all-initial snapshot). Committing a writer appends
//! `last(mems) ⊕ wrSet`. The per-transaction protocol:
//!
//! * a transaction's **begin index** is the index of the latest snapshot
//!   when it begins (here: at its first event);
//! * a **read response** `read_t(x) → v` (not from `t`'s own write set)
//!   requires some `n ≥ beginIdx(t)` with `rdSet(t) ∪ {x ↦ v} ⊆ mems[n]`;
//! * a **writer's commit** requires `rdSet(t) ⊆ last(mems)` at its
//!   linearization point (inside the `tryC` interval) and appends the new
//!   snapshot; a **read-only commit** requires `rdSet(t) ⊆ mems[n]` for
//!   some `n ≥ beginIdx(t)`;
//! * aborts are always allowed.
//!
//! Membership is decided by a search over the only nondeterminism: *when*
//! each writer's commit linearizes inside its `tryC` interval (the
//! snapshot index `n` of a read is an existence check and needs no
//! branching). Accepted histories come with a replayable
//! [`Tms2Execution`] certificate, independently validated by [`replay`].

use duop_history::{EventKind, History, ObjId, Op, Ret, TxnId, Value};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A certificate for acceptance by the TMS2 automaton: the commit
/// linearization schedule.
///
/// `flushes_before[i]` lists the writer transactions whose commits
/// linearize immediately before history event `i` (in order).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Tms2Execution {
    /// Commit linearizations per event index (length = history length).
    pub flushes_before: Vec<Vec<TxnId>>,
}

/// Outcome of the TMS2 automaton membership check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tms2Verdict {
    /// The history is a TMS2 history; the certificate replays.
    Accepted(Tms2Execution),
    /// No commit schedule makes the automaton accept.
    Rejected {
        /// Number of search states explored.
        explored: u64,
    },
    /// The search budget was exhausted.
    Unknown {
        /// Number of search states explored.
        explored: u64,
    },
}

impl Tms2Verdict {
    /// Returns `true` for [`Tms2Verdict::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, Tms2Verdict::Accepted(_))
    }

    /// The certificate, if accepted.
    pub fn execution(&self) -> Option<&Tms2Execution> {
        match self {
            Tms2Verdict::Accepted(e) => Some(e),
            _ => None,
        }
    }
}

/// Why a [`Tms2Execution`] certificate failed to replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The certificate's length does not match the history.
    WrongShape,
    /// A scheduled commit was not linearizable at its position.
    BadFlush {
        /// The transaction whose commit failed.
        txn: TxnId,
    },
    /// A read response had no valid snapshot.
    BadRead {
        /// The reading transaction.
        txn: TxnId,
        /// The object read.
        obj: ObjId,
    },
    /// A commit response arrived for a transaction that never linearized.
    UnflushedCommit {
        /// The transaction.
        txn: TxnId,
    },
    /// An abort response arrived for an already-linearized commit.
    FlushedAbort {
        /// The transaction.
        txn: TxnId,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::WrongShape => write!(f, "certificate shape does not match history"),
            ReplayError::BadFlush { txn } => {
                write!(f, "commit of {txn} not linearizable as scheduled")
            }
            ReplayError::BadRead { txn, obj } => {
                write!(f, "read of {obj} by {txn} has no valid snapshot")
            }
            ReplayError::UnflushedCommit { txn } => {
                write!(f, "{txn} responded committed without a linearized commit")
            }
            ReplayError::FlushedAbort { txn } => {
                write!(f, "{txn} aborted after its commit linearized")
            }
        }
    }
}

impl Error for ReplayError {}

#[derive(Clone, Debug, Default)]
struct TxnState {
    begin_idx: Option<usize>,
    rd: HashMap<ObjId, Value>,
    wr: HashMap<ObjId, Value>,
    /// `tryC` invoked, commit not yet linearized.
    pending: bool,
    /// Commit linearized (snapshot appended, or read-only validated).
    flushed: bool,
}

#[derive(Clone, Debug)]
struct AutomatonState {
    mems: Vec<HashMap<ObjId, Value>>,
    txns: HashMap<TxnId, TxnState>,
}

impl AutomatonState {
    fn new() -> Self {
        AutomatonState {
            mems: vec![HashMap::new()],
            txns: HashMap::new(),
        }
    }

    fn lookup(&self, n: usize, obj: ObjId) -> Value {
        self.mems[n].get(&obj).copied().unwrap_or(Value::INITIAL)
    }

    /// Is `rdSet ∪ extra ⊆ mems[n]`?
    fn consistent_at(
        &self,
        n: usize,
        rd: &HashMap<ObjId, Value>,
        extra: Option<(ObjId, Value)>,
    ) -> bool {
        rd.iter().all(|(o, v)| self.lookup(n, *o) == *v)
            && extra.is_none_or(|(o, v)| self.lookup(n, o) == v)
    }

    /// Is there a valid snapshot `n ≥ begin` for `rdSet ∪ extra`?
    fn some_consistent(
        &self,
        begin: usize,
        rd: &HashMap<ObjId, Value>,
        extra: Option<(ObjId, Value)>,
    ) -> bool {
        (begin..self.mems.len()).any(|n| self.consistent_at(n, rd, extra))
    }

    /// Attempts to linearize the commit of `txn` now.
    fn flush(&mut self, txn: TxnId) -> bool {
        let state = self.txns.get(&txn).expect("pending txn has state");
        let begin = state.begin_idx.unwrap_or(0);
        if state.wr.is_empty() {
            // Read-only: any consistent snapshot suffices.
            if !self.some_consistent(begin, &state.rd, None) {
                return false;
            }
        } else {
            // Writer: the read set must be consistent with the latest
            // snapshot, which the write set then extends.
            let last = self.mems.len() - 1;
            if !self.consistent_at(last, &state.rd, None) {
                return false;
            }
            let mut next = self.mems[last].clone();
            for (o, v) in &state.wr {
                next.insert(*o, *v);
            }
            self.mems.push(next);
        }
        let state = self.txns.get_mut(&txn).expect("pending txn has state");
        state.pending = false;
        state.flushed = true;
        true
    }
}

/// Precomputed per-event info: the operation a response answers.
fn resp_ops(h: &History) -> Vec<Option<Op>> {
    let mut out = vec![None; h.len()];
    for t in h.txns() {
        for op in t.ops() {
            if let Some(r) = op.resp_index {
                out[r] = Some(op.op);
            }
        }
    }
    out
}

struct Searcher<'a> {
    h: &'a History,
    resp_op: Vec<Option<Op>>,
    max_states: Option<u64>,
    explored: u64,
    flushes: Vec<Vec<TxnId>>,
}

enum StepOutcome {
    Accepted,
    Rejected,
    Budget,
}

impl Searcher<'_> {
    fn step(&mut self, idx: usize, state: &AutomatonState) -> StepOutcome {
        self.explored += 1;
        if let Some(max) = self.max_states {
            if self.explored > max {
                return StepOutcome::Budget;
            }
        }
        if idx == self.h.len() {
            return StepOutcome::Accepted;
        }

        // Option: linearize a pending commit before this event.
        let pending: Vec<TxnId> = state
            .txns
            .iter()
            .filter(|(_, s)| s.pending)
            .map(|(t, _)| *t)
            .collect();
        for txn in pending {
            let mut next = state.clone();
            if next.flush(txn) {
                self.flushes[idx].push(txn);
                match self.step(idx, &next) {
                    StepOutcome::Accepted => return StepOutcome::Accepted,
                    StepOutcome::Budget => {
                        self.flushes[idx].pop();
                        return StepOutcome::Budget;
                    }
                    StepOutcome::Rejected => {
                        self.flushes[idx].pop();
                    }
                }
            }
        }

        // Option: process the event itself.
        let mut next = state.clone();
        if self.process(idx, &mut next) {
            match self.step(idx + 1, &next) {
                StepOutcome::Accepted => return StepOutcome::Accepted,
                other => return other,
            }
        }
        StepOutcome::Rejected
    }

    /// Applies event `idx`; returns `false` if the automaton cannot take
    /// it.
    fn process(&self, idx: usize, state: &mut AutomatonState) -> bool {
        let ev = self.h.events()[idx];
        let txn_state = state.txns.entry(ev.txn).or_default();
        if txn_state.begin_idx.is_none() {
            txn_state.begin_idx = Some(state.mems.len() - 1);
        }
        match ev.kind {
            EventKind::Inv(Op::TryCommit) => {
                let s = state.txns.get_mut(&ev.txn).expect("just inserted");
                s.pending = true;
                true
            }
            EventKind::Inv(_) => true,
            EventKind::Resp(ret) => {
                let op = self.resp_op[idx].expect("response matches an operation");
                match (op, ret) {
                    (Op::Read(x), Ret::Value(v)) => {
                        let s = state.txns.get(&ev.txn).expect("participating");
                        if let Some(&own) = s.wr.get(&x) {
                            return own == v;
                        }
                        let begin = s.begin_idx.unwrap_or(0);
                        if !state.some_consistent(begin, &s.rd, Some((x, v))) {
                            return false;
                        }
                        state
                            .txns
                            .get_mut(&ev.txn)
                            .expect("participating")
                            .rd
                            .insert(x, v);
                        true
                    }
                    (Op::Write(x, v), Ret::Ok) => {
                        state
                            .txns
                            .get_mut(&ev.txn)
                            .expect("participating")
                            .wr
                            .insert(x, v);
                        true
                    }
                    (Op::TryCommit, Ret::Committed) => {
                        // The commit must have linearized inside the
                        // interval; last chance is right now.
                        let s = state.txns.get(&ev.txn).expect("participating");
                        if s.flushed {
                            return true;
                        }
                        state.flush(ev.txn)
                        // Note: a flush here is "before the response",
                        // recorded implicitly by the deterministic replay
                        // (replay retries a late flush the same way).
                    }
                    (Op::TryCommit, Ret::Aborted) => {
                        let s = state.txns.get_mut(&ev.txn).expect("participating");
                        if s.flushed {
                            return false;
                        }
                        s.pending = false;
                        true
                    }
                    // Aborted reads/writes and tryA: always allowed.
                    (_, Ret::Aborted) => true,
                    _ => true,
                }
            }
        }
    }
}

/// Decides membership of `h` in the TMS2 automaton's set of histories.
///
/// `max_states` bounds the search (the nondeterminism is the commit
/// schedule, so the bound is rarely hit on realistic histories); `None`
/// means unlimited.
///
/// # Examples
///
/// ```
/// use duop_core::tms2_automaton::{check_tms2_automaton, replay};
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
///     .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
///     .build();
/// let verdict = check_tms2_automaton(&h, None);
/// let exec = verdict.execution().expect("a TMS2 history");
/// assert!(replay(&h, exec).is_ok());
/// ```
pub fn check_tms2_automaton(h: &History, max_states: Option<u64>) -> Tms2Verdict {
    let mut searcher = Searcher {
        h,
        resp_op: resp_ops(h),
        max_states,
        explored: 0,
        flushes: vec![Vec::new(); h.len() + 1],
    };
    let state = AutomatonState::new();
    match searcher.step(0, &state) {
        StepOutcome::Accepted => {
            let mut flushes = searcher.flushes;
            flushes.truncate(h.len());
            Tms2Verdict::Accepted(Tms2Execution {
                flushes_before: flushes,
            })
        }
        StepOutcome::Rejected => Tms2Verdict::Rejected {
            explored: searcher.explored,
        },
        StepOutcome::Budget => Tms2Verdict::Unknown {
            explored: searcher.explored,
        },
    }
}

/// Deterministically replays a certificate against the history.
///
/// # Errors
///
/// Returns the first [`ReplayError`] if the certificate does not witness
/// acceptance.
pub fn replay(h: &History, exec: &Tms2Execution) -> Result<(), ReplayError> {
    if exec.flushes_before.len() != h.len() {
        return Err(ReplayError::WrongShape);
    }
    let resp_op = resp_ops(h);
    let mut state = AutomatonState::new();
    for (idx, ev) in h.events().iter().enumerate() {
        for &txn in &exec.flushes_before[idx] {
            if !state.txns.contains_key(&txn) || !state.txns[&txn].pending || !state.flush(txn) {
                return Err(ReplayError::BadFlush { txn });
            }
        }
        let txn_state = state.txns.entry(ev.txn).or_default();
        if txn_state.begin_idx.is_none() {
            txn_state.begin_idx = Some(state.mems.len() - 1);
        }
        match ev.kind {
            EventKind::Inv(Op::TryCommit) => {
                state.txns.get_mut(&ev.txn).expect("inserted").pending = true;
            }
            EventKind::Inv(_) => {}
            EventKind::Resp(ret) => {
                let op = resp_op[idx].expect("matched response");
                match (op, ret) {
                    (Op::Read(x), Ret::Value(v)) => {
                        let s = &state.txns[&ev.txn];
                        if let Some(&own) = s.wr.get(&x) {
                            if own != v {
                                return Err(ReplayError::BadRead {
                                    txn: ev.txn,
                                    obj: x,
                                });
                            }
                        } else {
                            let begin = s.begin_idx.unwrap_or(0);
                            if !state.some_consistent(begin, &s.rd, Some((x, v))) {
                                return Err(ReplayError::BadRead {
                                    txn: ev.txn,
                                    obj: x,
                                });
                            }
                            state
                                .txns
                                .get_mut(&ev.txn)
                                .expect("participating")
                                .rd
                                .insert(x, v);
                        }
                    }
                    (Op::Write(x, v), Ret::Ok) => {
                        state
                            .txns
                            .get_mut(&ev.txn)
                            .expect("participating")
                            .wr
                            .insert(x, v);
                    }
                    (Op::TryCommit, Ret::Committed) => {
                        let flushed = state.txns[&ev.txn].flushed;
                        if !flushed && !state.flush(ev.txn) {
                            return Err(ReplayError::UnflushedCommit { txn: ev.txn });
                        }
                    }
                    (Op::TryCommit, Ret::Aborted) => {
                        if state.txns[&ev.txn].flushed {
                            return Err(ReplayError::FlushedAbort { txn: ev.txn });
                        }
                        state.txns.get_mut(&ev.txn).expect("participating").pending = false;
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::HistoryBuilder;

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn y() -> ObjId {
        ObjId::new(1)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn sequential_writer_reader_accepted() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        let verdict = check_tms2_automaton(&h, None);
        let exec = verdict.execution().expect("accepted");
        assert_eq!(replay(&h, exec), Ok(()));
    }

    #[test]
    fn stale_read_rejected() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(7))
            .build();
        assert!(matches!(
            check_tms2_automaton(&h, None),
            Tms2Verdict::Rejected { .. }
        ));
    }

    #[test]
    fn read_through_pending_commit_accepted() {
        // The commit linearizes inside its interval, before T2's read.
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .read(t(2), x(), v(1))
            .commit(t(2))
            .build();
        let verdict = check_tms2_automaton(&h, None);
        let exec = verdict.execution().expect("accepted");
        assert_eq!(replay(&h, exec), Ok(()));
        // The schedule linearizes T1's commit somewhere before T2's read
        // response (event 4).
        let flush_pos = exec
            .flushes_before
            .iter()
            .position(|f| f.contains(&t(1)))
            .expect("T1 commit scheduled");
        assert!(flush_pos <= 4);
    }

    #[test]
    fn doomed_inconsistent_snapshot_rejected() {
        // T3 reads X before T1's commit and Y after it: no single snapshot
        // holds both, even though T3 aborts.
        let h = HistoryBuilder::new()
            .read(t(3), x(), v(0))
            .write(t(1), x(), v(1))
            .write(t(1), y(), v(1))
            .commit(t(1))
            .read(t(3), y(), v(1))
            .try_abort(t(3))
            .build();
        assert!(matches!(
            check_tms2_automaton(&h, None),
            Tms2Verdict::Rejected { .. }
        ));
    }

    #[test]
    fn read_only_commit_may_use_old_snapshot() {
        // T2 begins before T1 commits, reads the old value of X after T1's
        // commit, and still commits read-only from the old snapshot.
        let h = HistoryBuilder::new()
            .inv_read(t(2), x())
            .resp_value(t(2), v(0))
            .committed_writer(t(1), x(), v(1))
            .read(t(2), y(), v(0))
            .commit(t(2))
            .build();
        let verdict = check_tms2_automaton(&h, None);
        assert!(verdict.is_accepted(), "read-only snapshot commit is TMS2");
    }

    #[test]
    fn writer_must_validate_against_latest() {
        // T2 reads X=0, T1 commits X=1, then T2 (a writer) tries to commit:
        // its read set is stale against the latest snapshot.
        let h = HistoryBuilder::new()
            .read(t(2), x(), v(0))
            .committed_writer(t(1), x(), v(1))
            .write(t(2), y(), v(5))
            .commit(t(2))
            .build();
        assert!(matches!(
            check_tms2_automaton(&h, None),
            Tms2Verdict::Rejected { .. }
        ));
    }

    #[test]
    fn rejects_commit_after_abort_impossibility() {
        // A tryC that aborted cannot have linearized: accepted only via the
        // non-flush branch, and a later reader must not see the value.
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .commit_aborted(t(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        assert!(matches!(
            check_tms2_automaton(&h, None),
            Tms2Verdict::Rejected { .. }
        ));
    }

    #[test]
    fn budget_gives_unknown() {
        let mut b = HistoryBuilder::new();
        for k in 1..=6 {
            b = b.write(t(k), x(), v(k as u64)).inv_try_commit(t(k));
        }
        // Reader wanting a value that needs a very specific schedule.
        let h = b.read(t(7), x(), v(9)).commit(t(7)).build();
        assert!(matches!(
            check_tms2_automaton(&h, Some(3)),
            Tms2Verdict::Unknown { .. } | Tms2Verdict::Rejected { .. }
        ));
    }

    #[test]
    fn replay_rejects_tampered_certificates() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        let exec = check_tms2_automaton(&h, None)
            .execution()
            .cloned()
            .expect("accepted");
        // Wrong shape.
        let bad = Tms2Execution {
            flushes_before: vec![],
        };
        assert_eq!(replay(&h, &bad), Err(ReplayError::WrongShape));
        // Scheduling a flush before the tryC invocation.
        let mut early = exec.clone();
        for f in &mut early.flushes_before {
            f.clear();
        }
        early.flushes_before[0] = vec![t(1)];
        assert!(matches!(
            replay(&h, &early),
            Err(ReplayError::BadFlush { .. })
        ));
    }
}
