//! The backtracking serialization search shared by every criterion.
//!
//! The search explores total orders of the history's transactions that
//! extend the real-time order (plus any criterion-specific precedence
//! edges), choosing a commit/abort fate for every commit-pending
//! transaction, and checking each transaction's external reads at its
//! placement:
//!
//! * **global legality** — the read's value must be the last value written
//!   to the object by a committed transaction placed so far (or the initial
//!   value);
//! * **local legality** (du-opacity only, Definition 3(3)) — the last such
//!   value *among transactions whose `tryC` was invoked before the read's
//!   response in `H`* must also match (`T_0` always qualifies, supplying
//!   the initial value).
//!
//! Criteria may also supply **commit-conditional edges** `(a, b)`: `a`
//! must precede `b` in any serialization that *commits* `b`. They encode
//! constraints like read-commit-order, which only binds writers the chosen
//! completion actually commits; for a commit-pending `b` they gate the
//! commit fate instead of constraining the order unconditionally.
//!
//! Before any backtracking, the [`crate::plan`] module preprocesses the
//! query (conflict-graph decomposition into independent components,
//! candidate-writer analysis with forced precedence edges); set
//! [`SearchConfig::decompose`] to `false` for the monolithic ablation.
//!
//! Failed states are memoized by a sound canonical key: the set of placed
//! transactions plus exactly the state the future can observe (per-object
//! last committed value for objects still read by unplaced transactions,
//! and per-pending-read last *eligible* committed value). Two states with
//! equal keys admit exactly the same completions — the commit-fate gate
//! depends only on the placed set, which is part of the key — so pruning
//! is lossless up to the 128-bit key hash: keys are stored hash-compacted
//! (fixed-width, allocation-free probes), making the memo *probabilistically*
//! sound with collision probability below 2⁻⁸⁰ for any feasible search.
//!
//! Children are expanded **fail-first**: transactions with the most
//! not-yet-placed successors in the precedence closure are tried earliest,
//! so an infeasible branch is discovered near the root instead of after
//! permuting the unconstrained remainder.
//!
//! When [`SearchConfig::threads`] asks for more than one worker the search
//! is delegated to [`crate::parallel`], which fans out over conflict-graph
//! components when there are several and otherwise splits the placement
//! tree into subtree tasks running this same `Searcher` with shared state
//! (a sharded memo, a global budget counter, and a cooperative-cancellation
//! word). The sequential and parallel engines return equivalent verdicts
//! and identical witnesses; see `DESIGN.md`.

use crate::bitset::BitSet;
use crate::fxhash::{FxBuildHasher, Hash128};
use crate::parallel::SharedSearch;
use crate::plan::ComponentCache;
use crate::spec::Spec;
use crate::{UnknownReason, Verdict, Violation, Witness};
use duop_history::{CommitCapability, History, TxnId, Value};
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide default for [`SearchConfig::decompose`], so the
/// experiments binary can ablate the planner without threading a flag
/// through every criterion constructor.
static DEFAULT_DECOMPOSE: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide default for [`SearchConfig::decompose`] (the
/// `--no-decompose` ablation). Affects configs created *after* the call.
pub fn set_default_decompose(enabled: bool) {
    DEFAULT_DECOMPOSE.store(enabled, Ordering::Relaxed);
}

/// Process-wide default for [`SearchConfig::prelint`], so the experiments
/// binary can ablate the lint prefilter (`--no-prelint`) without threading
/// a flag through every criterion constructor.
static DEFAULT_PRELINT: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide default for [`SearchConfig::prelint`] (the
/// `--no-prelint` ablation). Affects configs created *after* the call.
pub fn set_default_prelint(enabled: bool) {
    DEFAULT_PRELINT.store(enabled, Ordering::Relaxed);
}

/// Process-wide default for [`SearchConfig::saturate`], so the CLI and
/// the experiments binary can ablate the saturation prefilter
/// (`--no-saturate`) without threading a flag through every criterion
/// constructor.
static DEFAULT_SATURATE: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide default for [`SearchConfig::saturate`] (the
/// `--no-saturate` ablation). Affects configs created *after* the call.
pub fn set_default_saturate(enabled: bool) {
    DEFAULT_SATURATE.store(enabled, Ordering::Relaxed);
}

/// Process-wide default for [`SearchConfig::ladder`], so the experiments
/// binary can ablate the degradation ladder (`--no-ladder`) without
/// threading a flag through every criterion constructor.
static DEFAULT_LADDER: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide default for [`SearchConfig::ladder`] (the
/// `--no-ladder` ablation). Affects configs created *after* the call.
pub fn set_default_ladder(enabled: bool) {
    DEFAULT_LADDER.store(enabled, Ordering::Relaxed);
}

/// Process-wide default for [`SearchConfig::deadline`], in milliseconds
/// (`0` = none), so the CLI and the experiments binary can impose a
/// wall-clock cap (`--deadline <ms>`) without threading it through every
/// criterion constructor.
static DEFAULT_DEADLINE_MS: AtomicU64 = AtomicU64::new(0);

/// Sets the process-wide default for [`SearchConfig::deadline`]. Affects
/// configs created *after* the call; `None` clears the default.
pub fn set_default_deadline(deadline: Option<Duration>) {
    let ms = deadline.map_or(0, |d| d.as_millis().min(u128::from(u64::MAX)) as u64);
    DEFAULT_DEADLINE_MS.store(ms, Ordering::Relaxed);
}

fn default_deadline() -> Option<Duration> {
    match DEFAULT_DEADLINE_MS.load(Ordering::Relaxed) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    }
}

/// Tuning knobs for the serialization search.
///
/// The defaults (memoization on, unlimited budget, sequential, planner on)
/// decide every history in this repository quickly; `max_states` exists
/// because the membership problem is NP-hard in general and a caller may
/// prefer [`Verdict::Unknown`] to an unbounded search.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Memoize failed search states (default `true`). Disabling is only
    /// useful for the ablation benchmarks.
    pub memo: bool,
    /// Give up (returning [`Verdict::Unknown`]) after exploring this many
    /// states. `None` means unlimited. With multiple threads this is a
    /// *global* budget shared by all workers.
    pub max_states: Option<u64>,
    /// Worker threads for the parallel engine. `None`, `Some(0)` and
    /// `Some(1)` all mean sequential.
    pub threads: Option<usize>,
    /// Run the search planner (conflict-graph decomposition, candidate
    /// writer analysis, forced precedence edges) before backtracking
    /// (default `true`). `false` is the `--no-decompose` ablation: one
    /// monolithic search, no forced edges.
    pub decompose: bool,
    /// Run the polynomial lint prefilter ([`crate::lint`]) before the
    /// search and return an immediate
    /// [`Violation::LintRefuted`](crate::Violation) when an
    /// `Error`-severity rule refutes the criterion (default `true`).
    /// Verdict-equivalent by the lint soundness contract; `false` is the
    /// `--no-prelint` ablation.
    pub prelint: bool,
    /// Run the must-precede saturation pass ([`crate::saturate`]) after
    /// lint and before the planner, returning an immediate certified
    /// refutation ([`Violation::Certified`](crate::Violation)) or a
    /// validated witness when the fixpoint decides the query outright
    /// (default `true`). Sound by construction — refutations carry a
    /// certificate the independent validator re-derives and positive
    /// decisions are re-checked by [`crate::check_witness`]; `false` is
    /// the `--no-saturate` ablation.
    pub saturate: bool,
    /// Wall-clock deadline for one check. The clock starts when the search
    /// does; expiry returns [`Verdict::Unknown`] with
    /// [`UnknownReason::Deadline`]. Checked cooperatively (roughly every
    /// thousand expansions), so overruns are bounded by a handful of node
    /// expansions. `None` means no deadline.
    pub deadline: Option<Duration>,
    /// Approximate cap on failed-state memo entries (each entry is a
    /// 16-byte key plus table overhead). At the cap the search stops
    /// *inserting* — existing entries keep pruning and the verdict is
    /// unaffected; only time-to-verdict degrades. With multiple threads
    /// the cap is global but approximate (racing workers may overshoot by
    /// a few entries). `None` means uncapped.
    pub max_memo_entries: Option<usize>,
    /// On budget exhaustion, fall back through the sound degradation
    /// ladder (lint refutation, the Theorem 11 unique-writes fast path
    /// where applicable) before settling for [`Verdict::Unknown`], and
    /// attach a [`crate::PartialProgress`] payload to any remaining
    /// `Unknown` (default `true`). `false` is the `--no-ladder` ablation;
    /// the ladder only ever turns `Unknown` into a sound decision, never
    /// the other way, so ablating it cannot flip a decided verdict.
    pub ladder: bool,
    /// Poll the process-wide interrupt flag
    /// ([`crate::snapshot::request_interrupt`]) in the deadline sampling
    /// slot and stop cooperatively with [`UnknownReason::Interrupted`]
    /// (default `false`; the CLI opts in so SIGINT/SIGTERM flush a final
    /// checkpoint instead of killing the process mid-line).
    pub interruptible: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            memo: true,
            max_states: None,
            threads: None,
            decompose: DEFAULT_DECOMPOSE.load(Ordering::Relaxed),
            prelint: DEFAULT_PRELINT.load(Ordering::Relaxed),
            saturate: DEFAULT_SATURATE.load(Ordering::Relaxed),
            deadline: default_deadline(),
            max_memo_entries: None,
            ladder: DEFAULT_LADDER.load(Ordering::Relaxed),
            interruptible: false,
        }
    }
}

impl SearchConfig {
    /// The effective worker count (`1` = sequential).
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or(1).max(1)
    }
}

/// Resource limits of one search run, resolved from a [`SearchConfig`]
/// when the search starts: the relative [`SearchConfig::deadline`] becomes
/// an absolute instant, so nested and parallel searches all race the same
/// clock.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum states to expand (`None` = unlimited).
    pub max_states: Option<u64>,
    /// Absolute wall-clock cutoff (`None` = no deadline).
    pub deadline: Option<Instant>,
    /// Approximate cap on failed-state memo entries (`None` = uncapped).
    pub max_memo_entries: Option<usize>,
}

impl Budget {
    /// Resolves the config's limits against the current wall clock.
    pub fn resolve(cfg: &SearchConfig) -> Budget {
        Budget {
            max_states: cfg.max_states,
            deadline: cfg.deadline.map(|d| Instant::now() + d),
            max_memo_entries: cfg.max_memo_entries,
        }
    }

    /// Whether the wall clock has passed the deadline.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Quantitative account of one serialization search, for the ablation
/// experiments and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search states expanded.
    pub explored: u64,
    /// Branches cut by the failed-state memo.
    pub memo_hits: u64,
    /// Branches cut by forward feasibility (dead-end) pruning.
    pub dead_ends: u64,
    /// Peak entries in the failed-state memo. The planner clears the memo
    /// between components (entries cannot hit across components), so the
    /// peak rather than the final size is reported.
    pub peak_memo_entries: u64,
    /// Subtree tasks created by the parallel engine (`0` = sequential).
    pub subtree_tasks: u64,
}

impl SearchStats {
    /// Accumulates another search's counters (used when a criterion runs
    /// several searches, e.g. opacity's prefix loop, and by the parallel
    /// engine's per-worker reduction).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.explored += other.explored;
        self.memo_hits += other.memo_hits;
        self.dead_ends += other.dead_ends;
        self.peak_memo_entries = self.peak_memo_entries.max(other.peak_memo_entries);
        self.subtree_tasks += other.subtree_tasks;
    }
}

/// What the engine is asked to decide.
#[derive(Clone, Debug)]
pub(crate) struct Query {
    /// Human-readable criterion name, used in violations.
    pub name: &'static str,
    /// Enforce Definition 3(3) (du-opacity's local serializations).
    pub deferred_update: bool,
    /// Criterion-specific precedence edges `(before, after)` in addition
    /// to the real-time order.
    pub extra_edges: Vec<(TxnId, TxnId)>,
    /// Commit-conditional edges `(a, b)`: `a` must precede `b` whenever
    /// the serialization *commits* `b`; vacuous when `b` aborts. For an
    /// already-committed `b` this is equivalent to an `extra_edges` entry.
    pub commit_edges: Vec<(TxnId, TxnId)>,
    /// The criterion family the lint prefilter treats this query as (which
    /// `Error`-severity rules may refute it).
    pub lint_scope: crate::lint::LintScope,
}

/// Sentinel encoding of `Value` for memo keys: 0 = don't-care.
fn encode(v: Value) -> u64 {
    v.get().wrapping_add(1)
}

pub(crate) struct Searcher<'a> {
    spec: &'a Spec,
    cfg: &'a SearchConfig,
    du: bool,
    preds: Vec<BitSet>,
    /// Conditional predecessors: placing `i` with the *commit* fate
    /// requires `commit_preds[i] ⊆ placed`. Empty sets for transactions
    /// without incoming commit-conditional edges.
    commit_preds: Vec<BitSet>,
    /// Eligible writers per read slot (du mode): transactions whose
    /// `tryC` invocation precedes the read's response in `H`.
    elig: Vec<BitSet>,
    /// Committable writers that could still supply each read slot's value
    /// (du mode: restricted to eligible writers). Used for forward
    /// feasibility pruning: once a slot's value is gone from the state and
    /// every candidate writer is placed, no extension can serve the read.
    suppliers: Vec<BitSet>,
    /// Fail-first candidate order over *all* transactions: most successors
    /// in the precedence closure first, `priority` then index as
    /// tie-breakers (deterministic).
    order: Vec<usize>,
    /// The transactions the current search covers (all of them by
    /// default; one conflict-graph component under the planner).
    scope: BitSet,
    /// `dfs` succeeds when `placed_count` reaches this (scope members may
    /// sit on top of already-placed earlier components).
    scope_target: usize,
    /// `order` filtered to the scope — the exact iteration order of `dfs`.
    active: Vec<usize>,

    placed: BitSet,
    placed_count: usize,
    /// Last committed value per interned object.
    global_last: Vec<Value>,
    /// Last eligible committed value per read slot (du mode).
    local_last: Vec<Value>,
    /// Unplaced external-read count per object (for memo canonicalization).
    pending_reads: Vec<usize>,
    /// Placement path: (txn index, committed).
    pub(crate) path: Vec<(usize, bool)>,

    /// Failed states, hash-compacted to fixed width (see module docs).
    memo: HashSet<u128, FxBuildHasher>,
    /// High-water mark across per-component memo clears.
    memo_peak: usize,
    /// Spent undo logs recycled across `place` calls so the hot loop does
    /// not allocate two `Vec`s per node.
    undo_pool: Vec<UndoLog>,
    /// Shared state when running as a parallel worker; `None` when
    /// sequential.
    shared: Option<&'a SharedSearch>,
    /// Index of the subtree task this worker is currently running; used
    /// for cooperative cancellation ordering.
    pub(crate) task_index: u64,

    pub(crate) explored: u64,
    pub(crate) memo_hits: u64,
    pub(crate) dead_ends: u64,
    /// Resolved resource limits (state budget, absolute deadline, memo
    /// cap) this search runs under.
    pub(crate) budget: Budget,
    /// Why the search gave up, when [`Outcome::Budget`] was returned.
    pub(crate) unknown: Option<UnknownReason>,
}

pub(crate) enum Outcome {
    Found,
    Exhausted,
    Budget,
    /// A lower-indexed task already found a witness; the subtree was
    /// abandoned, so nothing may be memoized on the way out.
    Cancelled,
}

impl<'a> Searcher<'a> {
    /// Builds a searcher over the whole spec. `forced` carries the
    /// planner's forced precedence edges as `(before, after)` index pairs
    /// (empty for the monolithic ablation).
    pub(crate) fn new(
        spec: &'a Spec,
        cfg: &'a SearchConfig,
        query: &Query,
        forced: &[(usize, usize)],
    ) -> Result<Self, Violation> {
        let n = spec.txns.len();
        let (mut preds, commit_preds) = crate::plan::build_constraints(spec, query);
        for &(a, b) in forced {
            if a != b {
                preds[b].insert(a);
            }
        }

        // Cycle check (Kahn's algorithm) so cyclic constraints produce a
        // crisp violation instead of an exhausted search, and a topological
        // order for the closure below. Conditional edges are excluded: a
        // "cycle" through one only means the target cannot commit, which
        // the fate gate handles.
        let topo = match crate::plan::topo_order(&preds) {
            Ok(t) => t,
            Err(cyc) => {
                return Err(Violation::ConstraintCycle {
                    txns: cyc.into_iter().map(|i| spec.txns[i].id).collect(),
                });
            }
        };

        // Reachability closure of the precedence edges, for fail-first
        // ordering: desc[i] = transactions that must come after i.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, p) in preds.iter().enumerate() {
            for i in p.iter_ones() {
                succs[i].push(j);
            }
        }
        let mut desc: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for &i in topo.iter().rev() {
            let mut d = std::mem::replace(&mut desc[i], BitSet::new(n));
            for &j in &succs[i] {
                d.insert(j);
                d.union_with(&desc[j]);
            }
            desc[i] = d;
        }

        // Most-constrained first: a transaction with many forced
        // successors prunes hardest when it fails, and unblocks the most
        // candidates when it succeeds. Ties fall back to the history-order
        // priority the sequential engine always used, then the index, so
        // the order (and hence every witness) stays deterministic.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| {
            (
                std::cmp::Reverse(desc[i].count_ones()),
                spec.txns[i].priority,
                i,
            )
        });

        let (elig, suppliers) = crate::plan::supplier_sets(spec, query.deferred_update);

        let mut pending_reads = vec![0usize; spec.objs.len()];
        for r in &spec.reads {
            pending_reads[r.obj] += 1;
        }

        Ok(Searcher {
            spec,
            cfg,
            du: query.deferred_update,
            preds,
            commit_preds,
            elig,
            suppliers,
            active: order.clone(),
            order,
            scope: BitSet::full(n),
            scope_target: n,
            placed: BitSet::new(n),
            placed_count: 0,
            global_last: vec![Value::INITIAL; spec.objs.len()],
            local_last: vec![Value::INITIAL; spec.reads.len()],
            pending_reads,
            path: Vec::with_capacity(n),
            memo: HashSet::default(),
            memo_peak: 0,
            undo_pool: Vec::with_capacity(n),
            shared: None,
            task_index: 0,
            explored: 0,
            memo_hits: 0,
            dead_ends: 0,
            budget: Budget::resolve(cfg),
            unknown: None,
        })
    }

    /// Turns this searcher into a parallel worker: memo lookups, the state
    /// budget and cancellation all go through `shared`.
    pub(crate) fn attach_shared(&mut self, shared: &'a SharedSearch) {
        self.shared = Some(shared);
    }

    /// Narrows the search to one conflict-graph component on top of
    /// whatever is already placed. Components are independent, so memo
    /// entries from earlier components can never hit again (their placed
    /// sets differ); they are dropped to bound memory, tracking the peak.
    pub(crate) fn restrict(&mut self, members: &[usize]) {
        self.scope.clear();
        for &i in members {
            self.scope.insert(i);
        }
        self.scope_target = self.placed_count + members.len();
        self.active.clear();
        let scope = &self.scope;
        self.active
            .extend(self.order.iter().copied().filter(|&i| scope.contains(i)));
        self.memo_peak = self.memo_peak.max(self.memo.len());
        self.memo.clear();
    }

    /// This search's counters, in reporting form.
    pub(crate) fn stats(&self) -> SearchStats {
        SearchStats {
            explored: self.explored,
            memo_hits: self.memo_hits,
            dead_ends: self.dead_ends,
            peak_memo_entries: self.memo_peak.max(self.memo.len()) as u64,
            subtree_tasks: 0,
        }
    }

    pub(crate) fn path_len(&self) -> usize {
        self.path.len()
    }

    pub(crate) fn path_slice(&self, from: usize) -> &[(usize, bool)] {
        &self.path[from..]
    }

    /// Sound canonical key of the current state (see module docs),
    /// hash-compacted to 128 bits.
    fn memo_key(&self) -> u128 {
        let mut h = Hash128::new();
        for &w in self.placed.words() {
            h.write(w);
        }
        for (o, v) in self.global_last.iter().enumerate() {
            // Objects with no pending external read cannot influence the
            // future; mask them so permutations collapse.
            h.write(if self.pending_reads[o] > 0 {
                encode(*v)
            } else {
                0
            });
        }
        if self.du {
            for (slot, v) in self.local_last.iter().enumerate() {
                let owner = self.spec.reads[slot].txn;
                h.write(if self.placed.contains(owner) {
                    0
                } else {
                    encode(*v)
                });
            }
        }
        h.finish()
    }

    /// Forward feasibility: returns `true` if some unplaced in-scope
    /// transaction's external read can no longer be satisfied in any
    /// extension of the current state — its value is not in the state and
    /// every committable (and, for du-opacity, eligible) writer of that
    /// value is already placed.
    pub(crate) fn dead_end(&self) -> bool {
        for (slot, r) in self.spec.reads.iter().enumerate() {
            if self.placed.contains(r.txn) || !self.scope.contains(r.txn) {
                continue;
            }
            let state_ok = self.global_last[r.obj] == r.value
                && (!self.du || self.local_last[slot] == r.value);
            if state_ok {
                continue;
            }
            if self.suppliers[slot].is_subset_of(&self.placed) {
                return true;
            }
        }
        false
    }

    /// Checks whether transaction `i` can be placed now; its external reads
    /// must be legal against the current state.
    fn reads_legal(&self, i: usize) -> bool {
        for &slot in &self.spec.txns[i].external_reads {
            let r = &self.spec.reads[slot];
            if self.global_last[r.obj] != r.value {
                return false;
            }
            if self.du && self.local_last[slot] != r.value {
                return false;
            }
        }
        true
    }

    /// Whether placing `i` with the given fate is admissible right now:
    /// unplaced, in scope, predecessors placed, reads legal, fate allowed
    /// by the commit capability and the commit-conditional gate. Used by
    /// the online monitor's cached-fragment replay; `dfs` inlines the same
    /// checks.
    pub(crate) fn can_place(&self, i: usize, committed: bool) -> bool {
        if self.placed.contains(i) || !self.scope.contains(i) {
            return false;
        }
        if !self.preds[i].is_subset_of(&self.placed) || !self.reads_legal(i) {
            return false;
        }
        let fate_ok = match self.spec.txns[i].capability {
            CommitCapability::Committed => committed,
            CommitCapability::NeverCommitted => !committed,
            CommitCapability::CommitPending => true,
        };
        fate_ok && (!committed || self.commit_preds[i].is_subset_of(&self.placed))
    }

    /// Appends the current state's children as `(txn index, committed)` in
    /// the exact order [`Self::dfs`] tries them. Used by the parallel
    /// engine's task enumerator, which must mirror `dfs` so the
    /// lowest-indexed task containing a witness is also the one sequential
    /// DFS reaches first. Keep in sync with the loop in `dfs`.
    pub(crate) fn children_into(&self, out: &mut Vec<(usize, bool)>) {
        out.clear();
        for &i in &self.active {
            if self.placed.contains(i) || !self.preds[i].is_subset_of(&self.placed) {
                continue;
            }
            if !self.reads_legal(i) {
                continue;
            }
            let fates: &[bool] = match self.spec.txns[i].capability {
                CommitCapability::Committed => &[true],
                CommitCapability::NeverCommitted => &[false],
                CommitCapability::CommitPending => &[false, true],
            };
            for &committed in fates {
                if committed && !self.commit_preds[i].is_subset_of(&self.placed) {
                    continue;
                }
                out.push((i, committed));
            }
        }
    }

    /// Places transaction `i` with the given fate and returns an undo log.
    pub(crate) fn place(&mut self, i: usize, committed: bool) -> UndoLog {
        let mut undo = self.undo_pool.pop().unwrap_or_default();
        self.placed.insert(i);
        self.placed_count += 1;
        for &slot in &self.spec.txns[i].external_reads {
            let obj = self.spec.reads[slot].obj;
            self.pending_reads[obj] -= 1;
        }
        if committed {
            for &(obj, v) in &self.spec.txns[i].writes {
                undo.global.push((obj, self.global_last[obj]));
                self.global_last[obj] = v;
                if self.du {
                    for &slot in &self.spec.reads_on_obj[obj] {
                        let owner = self.spec.reads[slot].txn;
                        if !self.placed.contains(owner) && self.elig[slot].contains(i) {
                            undo.local.push((slot, self.local_last[slot]));
                            self.local_last[slot] = v;
                        }
                    }
                }
            }
        }
        self.path.push((i, committed));
        undo
    }

    pub(crate) fn unplace(&mut self, i: usize, mut undo: UndoLog) {
        self.path.pop();
        for &(slot, v) in undo.local.iter().rev() {
            self.local_last[slot] = v;
        }
        for &(obj, v) in undo.global.iter().rev() {
            self.global_last[obj] = v;
        }
        for &slot in &self.spec.txns[i].external_reads {
            let obj = self.spec.reads[slot].obj;
            self.pending_reads[obj] += 1;
        }
        self.placed.remove(i);
        self.placed_count -= 1;
        undo.global.clear();
        undo.local.clear();
        self.undo_pool.push(undo);
    }

    pub(crate) fn dfs(&mut self) -> Outcome {
        if self.placed_count == self.scope_target {
            return Outcome::Found;
        }
        self.explored += 1;
        if let Some(shared) = self.shared {
            // Cooperative cancellation: once a lower-indexed task has a
            // witness, this subtree's result can no longer win the
            // deterministic reduction. A peer's contained panic cancels
            // too — the whole search will report `worker-panic`.
            if shared.winner.load(Ordering::Relaxed) < self.task_index
                || shared.panicked.load(Ordering::Relaxed)
            {
                return Outcome::Cancelled;
            }
            let total = shared.explored.fetch_add(1, Ordering::Relaxed) + 1;
            if shared.max_states.is_some_and(|max| total > max) {
                self.unknown = Some(UnknownReason::StateBudget);
                return Outcome::Budget;
            }
        } else if let Some(max) = self.budget.max_states {
            if self.explored > max {
                self.unknown = Some(UnknownReason::StateBudget);
                return Outcome::Budget;
            }
        }
        // The deadline is wall-clock; reading the clock per expansion
        // would dominate the hot loop, so it is sampled on the first
        // expansion (so an already-expired deadline fires even on tiny
        // searches) and every 1024 thereafter — an overrun is bounded by
        // that many node visits. The interrupt flag shares the slot: a
        // SIGINT/SIGTERM surfaces within the same bound.
        if self.explored & 1023 == 1 {
            if self.budget.deadline_expired() {
                self.unknown = Some(UnknownReason::Deadline);
                return Outcome::Budget;
            }
            if self.cfg.interruptible && crate::snapshot::interrupt_requested() {
                self.unknown = Some(UnknownReason::Interrupted);
                return Outcome::Budget;
            }
        }
        let key = if self.cfg.memo {
            let key = self.memo_key();
            let hit = match self.shared {
                Some(shared) => shared.memo_contains(key),
                None => self.memo.contains(&key),
            };
            if hit {
                self.memo_hits += 1;
                return Outcome::Exhausted;
            }
            Some(key)
        } else {
            None
        };

        for idx in 0..self.active.len() {
            let i = self.active[idx];
            if self.placed.contains(i) || !self.preds[i].is_subset_of(&self.placed) {
                continue;
            }
            if !self.reads_legal(i) {
                continue;
            }
            let fates: &[bool] = match self.spec.txns[i].capability {
                CommitCapability::Committed => &[true],
                CommitCapability::NeverCommitted => &[false],
                CommitCapability::CommitPending => &[false, true],
            };
            for &committed in fates {
                if committed && !self.commit_preds[i].is_subset_of(&self.placed) {
                    continue;
                }
                let undo = self.place(i, committed);
                if self.dead_end() {
                    self.dead_ends += 1;
                    self.unplace(i, undo);
                    continue;
                }
                match self.dfs() {
                    Outcome::Found => return Outcome::Found,
                    Outcome::Budget => {
                        self.unplace(i, undo);
                        return Outcome::Budget;
                    }
                    Outcome::Cancelled => {
                        self.unplace(i, undo);
                        return Outcome::Cancelled;
                    }
                    Outcome::Exhausted => self.unplace(i, undo),
                }
            }
        }

        // Memoize only fully exhausted states: a Budget or Cancelled exit
        // above returns early, because an abandoned subtree proves nothing
        // about the state (this keeps the *shared* memo sound too).
        if let Some(key) = key {
            match self.shared {
                Some(shared) => shared.memo_insert(key),
                None => {
                    // At the memo cap the search degrades gracefully:
                    // existing entries keep pruning, new failed states are
                    // simply re-explored when revisited.
                    if self
                        .budget
                        .max_memo_entries
                        .is_none_or(|cap| self.memo.len() < cap)
                    {
                        self.memo.insert(key);
                    }
                }
            }
        }
        Outcome::Exhausted
    }

    /// Whether this search's wall-clock deadline has expired (checked by
    /// the planner between components).
    pub(crate) fn deadline_expired(&self) -> bool {
        self.budget.deadline_expired()
    }

    /// The reason a [`Outcome::Budget`] exit should report, defaulting to
    /// the state budget.
    pub(crate) fn unknown_reason(&self) -> UnknownReason {
        self.unknown.unwrap_or(UnknownReason::StateBudget)
    }
}

#[derive(Default)]
pub(crate) struct UndoLog {
    global: Vec<(usize, Value)>,
    local: Vec<(usize, Value)>,
}

/// Cheap sound prechecks that reject obviously unserializable histories
/// and produce precise violations. Used by the monolithic (`--no-decompose`)
/// path; the planner's candidate-writer analysis subsumes it.
pub(crate) fn precheck(spec: &Spec, query: &Query) -> Result<(), Violation> {
    for r in &spec.reads {
        if r.value == Value::INITIAL {
            continue; // T0 can always supply the initial value.
        }
        let found = spec.txns.iter().enumerate().any(|(j, t)| {
            j != r.txn
                && t.capability != CommitCapability::NeverCommitted
                && t.writes.iter().any(|&(o, v)| o == r.obj && v == r.value)
                && (!query.deferred_update
                    || t.try_commit_inv.is_some_and(|inv| inv < r.resp_index))
        });
        if !found {
            return Err(Violation::MissingWriter {
                txn: spec.txns[r.txn].id,
                obj: spec.objs[r.obj],
                value: r.value,
            });
        }
    }
    Ok(())
}

/// Builds the satisfied-verdict witness from a complete placement path.
pub(crate) fn witness_from_path(spec: &Spec, path: &[(usize, bool)]) -> Witness {
    let order: Vec<TxnId> = path.iter().map(|&(i, _)| spec.txns[i].id).collect();
    let mut choices = BTreeMap::new();
    for &(i, committed) in path {
        if spec.txns[i].capability == CommitCapability::CommitPending {
            choices.insert(spec.txns[i].id, committed);
        }
    }
    Witness::new(order, choices)
}

/// Sequential monolithic search over a prebuilt spec (optionally with the
/// planner's forced edges).
pub(crate) fn seq_search_spec(
    spec: &Spec,
    query: &Query,
    cfg: &SearchConfig,
    forced: &[(usize, usize)],
) -> (Verdict, SearchStats) {
    let mut searcher = match Searcher::new(spec, cfg, query, forced) {
        Ok(s) => s,
        Err(v) => return (Verdict::Violated(v), SearchStats::default()),
    };
    let outcome = searcher.dfs();
    let stats = searcher.stats();
    let verdict = match outcome {
        Outcome::Found => Verdict::Satisfied(witness_from_path(spec, &searcher.path)),
        Outcome::Exhausted => Verdict::Violated(Violation::NoSerialization {
            criterion: query.name.to_owned(),
            explored: searcher.explored,
        }),
        Outcome::Budget => Verdict::Unknown {
            explored: searcher.explored,
            reason: searcher.unknown_reason(),
            partial: Some(crate::PartialProgress::components(0, 1)),
        },
        Outcome::Cancelled => unreachable!("sequential search cannot be cancelled"),
    };
    (verdict, stats)
}

/// Decides `query` over a prebuilt spec, dispatching between the planned
/// (decomposed) and monolithic paths and the sequential and parallel
/// engines. `cache` optionally carries the online monitor's per-component
/// serialization cache.
pub(crate) fn decide_spec(
    spec: &Spec,
    query: &Query,
    cfg: &SearchConfig,
    cache: Option<&mut ComponentCache>,
) -> (Verdict, SearchStats) {
    if cfg.decompose {
        return crate::plan::planned_search(spec, query, cfg, cache);
    }
    if let Err(v) = precheck(spec, query) {
        return (Verdict::Violated(v), SearchStats::default());
    }
    if cfg.effective_threads() > 1 {
        return crate::parallel::par_search_spec(spec, query, cfg, &[]);
    }
    seq_search_spec(spec, query, cfg, &[])
}

/// Decides whether `h` has a serialization satisfying `query`.
pub(crate) fn search_serialization(h: &History, query: &Query, cfg: &SearchConfig) -> Verdict {
    search_serialization_with_stats(h, query, cfg).0
}

/// As [`search_serialization`], also returning the search counters.
pub(crate) fn search_serialization_with_stats(
    h: &History,
    query: &Query,
    cfg: &SearchConfig,
) -> (Verdict, SearchStats) {
    if cfg.prelint {
        if let Some(v) = crate::lint::prelint(h, query.lint_scope, query.name) {
            return (Verdict::Violated(v), SearchStats::default());
        }
    }
    if cfg.saturate {
        if let Some(criterion) = saturable_criterion(query) {
            match crate::saturate::saturate_prepared(h, criterion) {
                crate::saturate::SaturationOutcome::Refuted(cert) => {
                    return (
                        Verdict::Violated(Violation::Certified {
                            criterion: query.name.into(),
                            certificate: Box::new(cert),
                        }),
                        SearchStats::default(),
                    );
                }
                crate::saturate::SaturationOutcome::Decided(w) => {
                    return (Verdict::Satisfied(w), SearchStats::default());
                }
                crate::saturate::SaturationOutcome::Inconclusive => {}
            }
        }
    }
    let spec = match Spec::build(h) {
        Ok(s) => s,
        Err(v) => return (Verdict::Violated(v), SearchStats::default()),
    };
    let (verdict, stats) = decide_spec(&spec, query, cfg, None);
    if cfg.ladder {
        if let Verdict::Unknown {
            explored,
            reason,
            partial,
        } = verdict
        {
            return (
                ladder_fallback(h, query, cfg, explored, reason, partial),
                stats,
            );
        }
    }
    (verdict, stats)
}

/// Maps a query to the saturable criterion it renders, or `None` when the
/// query carries caller-supplied edges the saturation engine would not
/// re-derive (e.g. the unique-writes fallback's seeded constraints) — the
/// pass only runs on the canonical per-scope query shapes, where deriving
/// its own seeds from the history is verdict-equivalent.
fn saturable_criterion(query: &Query) -> Option<crate::plan::PlanCriterion> {
    use crate::lint::LintScope;
    use crate::plan::PlanCriterion;
    match query.lint_scope {
        LintScope::Plain
            if !query.deferred_update
                && query.extra_edges.is_empty()
                && query.commit_edges.is_empty() =>
        {
            Some(PlanCriterion::FinalState)
        }
        LintScope::Du
            if query.deferred_update
                && query.extra_edges.is_empty()
                && query.commit_edges.is_empty() =>
        {
            Some(PlanCriterion::Du)
        }
        LintScope::Rco if !query.deferred_update && query.extra_edges.is_empty() => {
            Some(PlanCriterion::Rco)
        }
        LintScope::Tms2 if !query.deferred_update && query.commit_edges.is_empty() => {
            Some(PlanCriterion::Tms2)
        }
        _ => None,
    }
}

/// The verdict-degradation ladder: on budget exhaustion, fall back through
/// strictly *sound* procedures before settling for `Unknown`.
///
/// Every tier either decides the query exactly or abstains — it can turn
/// `Unknown` into `Satisfied`/`Violated` but never contradict what an
/// unbudgeted exact search would have said:
///
/// 1. **lint** — the polynomial rules of [`crate::lint`] refute only via
///    proven necessary conditions (skipped when `prelint` already ran
///    them before the search).
/// 2. **unique-writes** — Theorem 11's constraint-propagation pass, run
///    only for the plain du-opacity query on histories satisfying
///    [`crate::unique::has_unique_writes`], and only its polynomial
///    portion (it abstains instead of recursing into a fresh search).
///
/// If every tier abstains the `Unknown` is returned with its
/// [`crate::PartialProgress`] payload annotated with the tiers that ran.
pub(crate) fn ladder_fallback(
    h: &History,
    query: &Query,
    cfg: &SearchConfig,
    explored: u64,
    reason: UnknownReason,
    partial: Option<crate::PartialProgress>,
) -> Verdict {
    let mut tiers: Vec<&'static str> = vec!["exact-search"];
    if cfg.prelint {
        // The prefilter already ran the lint tier and found nothing.
        tiers.push("lint");
    } else if let Some(v) = crate::lint::prelint(h, query.lint_scope, query.name) {
        return Verdict::Violated(v);
    } else {
        tiers.push("lint");
    }
    // Theorem 11 applies to the du-opacity query itself (deferred update,
    // no criterion-specific edges) under the unique-writes hypothesis.
    if query.deferred_update
        && query.extra_edges.is_empty()
        && query.commit_edges.is_empty()
        && crate::unique::has_unique_writes(h)
    {
        tiers.push("unique-writes");
        if let Some(verdict) = crate::unique::propagate_unique_writes(h) {
            return verdict;
        }
    }
    let mut partial = partial.unwrap_or_else(|| crate::PartialProgress::components(0, 1));
    partial.tiers = tiers;
    Verdict::Unknown {
        explored,
        reason,
        partial: Some(partial),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::{HistoryBuilder, ObjId};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    fn plain_query() -> Query {
        Query {
            name: "final-state opacity",
            deferred_update: false,
            extra_edges: Vec::new(),
            commit_edges: Vec::new(),
            lint_scope: crate::lint::LintScope::Plain,
        }
    }

    fn du_query() -> Query {
        Query {
            name: "du-opacity",
            deferred_update: true,
            extra_edges: Vec::new(),
            commit_edges: Vec::new(),
            lint_scope: crate::lint::LintScope::Du,
        }
    }

    /// Both planner settings, for tests that must hold under each.
    fn both_modes() -> [SearchConfig; 2] {
        [
            SearchConfig::default(),
            SearchConfig {
                decompose: false,
                ..SearchConfig::default()
            },
        ]
    }

    #[test]
    fn expired_deadline_yields_unknown_with_reason() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        for cfg in both_modes() {
            let cfg = SearchConfig {
                deadline: Some(Duration::ZERO),
                prelint: false,
                // The degradation ladder (and the saturation prefilter)
                // would decide this unique-writes history outright; this
                // test is about the raw search.
                ladder: false,
                saturate: false,
                ..cfg
            };
            let verdict = search_serialization(&h, &du_query(), &cfg);
            assert!(
                matches!(
                    verdict,
                    Verdict::Unknown {
                        reason: UnknownReason::Deadline,
                        ..
                    }
                ),
                "expected deadline Unknown, got {verdict:?}"
            );
        }
    }

    #[test]
    fn generous_deadline_does_not_change_verdict() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        let cfg = SearchConfig {
            deadline: Some(Duration::from_secs(3600)),
            ..SearchConfig::default()
        };
        assert!(search_serialization(&h, &du_query(), &cfg).is_satisfied());
    }

    #[test]
    fn memo_cap_preserves_verdict_and_bounds_entries() {
        // Enough concurrent commit-pending writers to force backtracking
        // (and memo inserts) without the cap dominating runtime.
        let mut b = HistoryBuilder::new();
        for k in 1..=6u32 {
            b = b
                .inv_write(t(k), x(), v(u64::from(k)))
                .resp_ok(t(k))
                .inv_try_commit(t(k));
        }
        let h = b
            .read(t(7), x(), v(3))
            .read(t(8), x(), v(5))
            .commit(t(7))
            .commit(t(8))
            .build();
        let baseline = search_serialization(&h, &du_query(), &SearchConfig::default());
        let capped_cfg = SearchConfig {
            max_memo_entries: Some(2),
            ..SearchConfig::default()
        };
        let (capped, stats) = search_serialization_with_stats(&h, &du_query(), &capped_cfg);
        assert_eq!(baseline.is_satisfied(), capped.is_satisfied());
        assert!(stats.peak_memo_entries <= 2, "cap exceeded: {stats:?}");
    }

    #[test]
    fn default_deadline_is_inherited_by_new_configs() {
        // A huge value: concurrently-running tests that happen to build a
        // config inside this window must never actually trip it.
        set_default_deadline(Some(Duration::from_secs(86_400)));
        let cfg = SearchConfig::default();
        set_default_deadline(None);
        assert_eq!(cfg.deadline, Some(Duration::from_secs(86_400)));
        assert_eq!(SearchConfig::default().deadline, None);
    }

    #[test]
    fn sequential_legal_history_found() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        for cfg in both_modes() {
            let verdict = search_serialization(&h, &plain_query(), &cfg);
            let w = verdict.witness().expect("satisfied");
            assert_eq!(w.order(), &[t(1), t(2)]);
        }
    }

    #[test]
    fn stale_read_rejected_with_missing_writer() {
        let h = HistoryBuilder::new()
            .committed_reader(t(1), x(), v(7))
            .build();
        for cfg in both_modes() {
            // The exact variant surfaces with the prefilter off; with it
            // on, lint rule RF003 reports the same refutation first.
            let cfg = SearchConfig {
                prelint: false,
                ..cfg
            };
            let verdict = search_serialization(&h, &plain_query(), &cfg);
            assert_eq!(
                verdict.violation(),
                Some(&Violation::MissingWriter {
                    txn: t(1),
                    obj: x(),
                    value: v(7)
                })
            );
        }
        let verdict = search_serialization(&h, &plain_query(), &SearchConfig::default());
        assert!(matches!(
            verdict.violation(),
            Some(Violation::LintRefuted { .. })
        ));
    }

    #[test]
    fn rt_violation_rejected() {
        // T1 commits writing 1, then T2 (entirely after T1) reads 0:
        // serialization would need T2 before T1, contradicting real time.
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(0))
            .build();
        for cfg in both_modes() {
            let cfg = SearchConfig {
                prelint: false,
                saturate: false,
                ..cfg
            };
            let verdict = search_serialization(&h, &plain_query(), &cfg);
            assert!(matches!(
                verdict.violation(),
                Some(Violation::NoSerialization { .. })
            ));
        }
        // With only saturation on, the same cycle comes back certified.
        let cfg = SearchConfig {
            prelint: false,
            ..SearchConfig::default()
        };
        let verdict = search_serialization(&h, &plain_query(), &cfg);
        assert!(matches!(
            verdict.violation(),
            Some(Violation::Certified { .. })
        ));
        // With the prefilter on, CY004 refutes without searching.
        let verdict = search_serialization(&h, &plain_query(), &SearchConfig::default());
        assert!(matches!(
            verdict.violation(),
            Some(Violation::LintRefuted { .. })
        ));
    }

    #[test]
    fn overlapping_reader_may_serialize_before_writer() {
        // T2 overlaps T1 and reads the initial value: T2 < T1 works.
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_value(t(2), v(0))
            .resp_ok(t(1))
            .commit(t(1))
            .commit(t(2))
            .build();
        for cfg in both_modes() {
            let verdict = search_serialization(&h, &plain_query(), &cfg);
            let w = verdict.witness().expect("satisfied");
            assert!(w.position(t(2)).unwrap() < w.position(t(1)).unwrap());
        }
    }

    #[test]
    fn pending_commit_fate_is_chosen() {
        // T1's tryC never returns; T2 reads T1's write. The only witness
        // commits T1.
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .read(t(2), x(), v(1))
            .commit(t(2))
            .build();
        for cfg in both_modes() {
            let verdict = search_serialization(&h, &du_query(), &cfg);
            let w = verdict.witness().expect("satisfied");
            assert_eq!(w.commit_choice(t(1)), Some(true));
            assert!(w.position(t(1)).unwrap() < w.position(t(2)).unwrap());
        }
    }

    #[test]
    fn du_rejects_read_from_not_yet_committing_txn() {
        // T3 writes 1 but invokes tryC only *after* T2's read returns, and
        // T1's write of 1 aborts: the value 1 has no du-eligible source.
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .commit_aborted(t(1))
            .read(t(2), x(), v(1))
            .committed_writer(t(3), x(), v(1))
            .commit(t(2))
            .build();
        for cfg in both_modes() {
            let no_prelint = SearchConfig {
                prelint: false,
                ..cfg.clone()
            };
            let verdict = search_serialization(&h, &du_query(), &no_prelint);
            assert_eq!(
                verdict.violation(),
                Some(&Violation::MissingWriter {
                    txn: t(2),
                    obj: x(),
                    value: v(1)
                })
            );
            // With the prefilter on, DU002 refutes du-opacity first.
            let verdict = search_serialization(&h, &du_query(), &cfg);
            assert!(verdict.is_violated());
            // Without the deferred-update condition the same history
            // passes: T3 can be serialized before T2 (and the du-only
            // lint error must not leak into the plain scope).
            let verdict = search_serialization(&h, &plain_query(), &cfg);
            assert!(verdict.is_satisfied());
        }
    }

    #[test]
    fn extra_edges_constrain_order() {
        // T1 and T2 overlap; force T1 < T2 while T2 read 0 and T1 committed
        // a write of 1 to the same object: unsatisfiable with the edge,
        // satisfiable without.
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_value(t(2), v(0))
            .resp_ok(t(1))
            .commit(t(1))
            .commit(t(2))
            .build();
        let constrained = Query {
            name: "tms2",
            deferred_update: false,
            extra_edges: vec![(t(1), t(2))],
            commit_edges: Vec::new(),
            lint_scope: crate::lint::LintScope::Plain,
        };
        for cfg in both_modes() {
            let verdict = search_serialization(&h, &constrained, &cfg);
            assert!(verdict.is_violated());
        }
    }

    #[test]
    fn cyclic_edges_reported() {
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_write(t(2), x(), v(2))
            .resp_ok(t(1))
            .resp_ok(t(2))
            .commit(t(1))
            .commit(t(2))
            .build();
        let q = Query {
            name: "test",
            deferred_update: false,
            extra_edges: vec![(t(1), t(2)), (t(2), t(1))],
            commit_edges: Vec::new(),
            lint_scope: crate::lint::LintScope::Plain,
        };
        for cfg in both_modes() {
            let verdict = search_serialization(&h, &q, &cfg);
            assert!(matches!(
                verdict.violation(),
                Some(Violation::ConstraintCycle { .. })
            ));
        }
    }

    #[test]
    fn commit_edge_binds_commit_pending_target() {
        // T1's write of 1 is commit-pending; T2 needs it, so T1 must
        // commit *and* precede T2. A commit-conditional edge (T2, T1)
        // demands T2 before T1 if T1 commits — contradiction either way.
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .read(t(2), x(), v(1))
            .commit(t(2))
            .build();
        let q = Query {
            name: "test",
            deferred_update: false,
            extra_edges: Vec::new(),
            commit_edges: vec![(t(2), t(1))],
            lint_scope: crate::lint::LintScope::Plain,
        };
        for cfg in both_modes() {
            let verdict = search_serialization(&h, &q, &cfg);
            assert!(matches!(
                verdict.violation(),
                Some(Violation::NoSerialization { .. })
            ));
            // Sanity: without the conditional edge the history is
            // satisfiable (T1 commits before T2).
            assert!(search_serialization(&h, &plain_query(), &cfg).is_satisfied());
        }
    }

    #[test]
    fn commit_edge_forces_abort_instead_of_cycle() {
        // Unconditional edges T1 < T2 and T2 < T1 would be a constraint
        // cycle; making the second conditional on T1 committing instead
        // lets the search keep T1 by choosing the abort fate.
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_write(t(2), x(), v(2))
            .resp_ok(t(2))
            .resp_ok(t(1))
            .inv_try_commit(t(1))
            .commit(t(2))
            .build();
        let q = Query {
            name: "test",
            deferred_update: false,
            extra_edges: vec![(t(1), t(2))],
            commit_edges: vec![(t(2), t(1))],
            lint_scope: crate::lint::LintScope::Plain,
        };
        for cfg in both_modes() {
            let verdict = search_serialization(&h, &q, &cfg);
            let w = verdict.witness().expect("satisfied with T1 aborted");
            assert_eq!(w.commit_choice(t(1)), Some(false));
        }
    }

    #[test]
    fn commit_edge_on_committed_target_is_unconditional() {
        // Same shape as extra_edges_constrain_order, but through
        // commit_edges: the target is a committed transaction, so the
        // edge must constrain the order exactly like an extra edge.
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_value(t(2), v(0))
            .resp_ok(t(1))
            .commit(t(1))
            .commit(t(2))
            .build();
        let q = Query {
            name: "test",
            deferred_update: false,
            extra_edges: Vec::new(),
            commit_edges: vec![(t(1), t(2))],
            lint_scope: crate::lint::LintScope::Plain,
        };
        for cfg in both_modes() {
            assert!(search_serialization(&h, &q, &cfg).is_violated());
        }
    }

    #[test]
    fn budget_returns_unknown() {
        // An unserializable history with several overlapping transactions
        // forces exploration; a tiny budget gives Unknown.
        let mut b = HistoryBuilder::new();
        for k in 1..=4 {
            b = b.inv_write(t(k), x(), v(k as u64));
        }
        for k in 1..=4 {
            b = b.resp_ok(t(k));
        }
        for k in 1..=4 {
            b = b.commit(t(k));
        }
        // A reader of a value that exists but is overwritten forces search.
        let h = b
            .read(t(5), x(), v(9))
            .write(t(5), x(), v(9))
            .commit(t(5))
            .build();
        // The read of 9 precedes T5's own write of 9 (external read with
        // no other writer) — precheck kills it. Use a different shape:
        let verdict = search_serialization(
            &h,
            &plain_query(),
            &SearchConfig {
                max_states: Some(0),
                ..SearchConfig::default()
            },
        );
        // Either violated by precheck or unknown; accept both shapes but
        // require non-satisfied.
        assert!(!verdict.is_satisfied());
    }

    #[test]
    fn memo_disabled_gives_same_answers() {
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_write(t(2), x(), v(2))
            .inv_read(t(3), x())
            .resp_value(t(3), v(2))
            .resp_ok(t(1))
            .resp_ok(t(2))
            .commit(t(1))
            .commit(t(2))
            .commit(t(3))
            .build();
        let with = search_serialization(&h, &plain_query(), &SearchConfig::default());
        let without = search_serialization(
            &h,
            &plain_query(),
            &SearchConfig {
                memo: false,
                ..SearchConfig::default()
            },
        );
        assert_eq!(with.is_satisfied(), without.is_satisfied());
    }

    #[test]
    fn decompose_matches_monolithic_on_independent_clusters() {
        // Two disjoint object clusters, fully concurrent: the planner
        // splits them, the monolithic engine does not; verdicts agree and
        // both witnesses validate.
        let y = ObjId::new(1);
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_write(t(3), y, v(7))
            .resp_ok(t(1))
            .resp_ok(t(3))
            .inv_try_commit(t(1))
            .inv_try_commit(t(3))
            .read(t(2), x(), v(1))
            .read(t(4), y, v(7))
            .commit(t(2))
            .commit(t(4))
            .build();
        let [on, off] = both_modes();
        let vd_on = search_serialization(&h, &du_query(), &on);
        let vd_off = search_serialization(&h, &du_query(), &off);
        assert!(vd_on.is_satisfied() && vd_off.is_satisfied());
        for vd in [&vd_on, &vd_off] {
            let w = vd.witness().unwrap();
            assert_eq!(w.order().len(), 4);
            crate::check_witness(&h, w, crate::CriterionKind::DuOpacity)
                .expect("witness validates");
        }
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = SearchStats {
            explored: 1,
            memo_hits: 2,
            dead_ends: 3,
            peak_memo_entries: 10,
            subtree_tasks: 0,
        };
        let b = SearchStats {
            explored: 10,
            memo_hits: 20,
            dead_ends: 30,
            peak_memo_entries: 5,
            subtree_tasks: 4,
        };
        a.absorb(&b);
        assert_eq!(a.explored, 11);
        assert_eq!(a.memo_hits, 22);
        assert_eq!(a.dead_ends, 33);
        assert_eq!(a.peak_memo_entries, 10);
        assert_eq!(a.subtree_tasks, 4);
    }
}
