//! Counterexample localization: shrink a violating history to the part
//! that matters.
//!
//! When a checker rejects a multi-hundred-event STM trace, the violation
//! usually involves a handful of transactions. [`minimal_violating_prefix`]
//! finds the first event at which the property is lost (meaningful for
//! prefix-closed criteria like du-opacity — Corollary 2 guarantees the
//! verdict never recovers), and [`shrink_transactions`] delta-debugs the
//! transaction set down to a locally minimal violating core.

use crate::Criterion;
use duop_history::{History, TxnId};

/// The shortest prefix of `h` that `criterion` rejects, with its length.
///
/// Returns `None` if the full history is not rejected (including when the
/// checker answers [`Verdict::Unknown`](crate::Verdict::Unknown)).
///
/// Uses binary search, which is exact for prefix-closed criteria
/// (du-opacity, opacity): the set of violating prefixes is upward closed.
/// For non-prefix-closed criteria (final-state opacity) the result is
/// still *a* violating prefix, but not necessarily the first.
///
/// # Examples
///
/// ```
/// use duop_core::{minimize::minimal_violating_prefix, DuOpacity, Criterion};
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let (t1, t2) = (TxnId::new(1), TxnId::new(2));
/// let x = ObjId::new(0);
/// let h = HistoryBuilder::new()
///     .committed_writer(t1, x, Value::new(1))
///     .read(t2, x, Value::new(0))   // stale: T2 starts after T1 commits
///     .commit(t2)
///     .build();
/// let (prefix, len) = minimal_violating_prefix(&h, &DuOpacity::new()).unwrap();
/// assert_eq!(len, 6); // the stale read's response
/// assert!(DuOpacity::new().check(&prefix).is_violated());
/// ```
pub fn minimal_violating_prefix(
    h: &History,
    criterion: &dyn Criterion,
) -> Option<(History, usize)> {
    if !criterion.check(h).is_violated() {
        return None;
    }
    let mut lo = 0usize; // satisfied (the empty history always is)
    let mut hi = h.len(); // violated
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if criterion.check(&h.prefix(mid)).is_violated() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some((h.prefix(hi), hi))
}

/// Delta-debugs the transaction set: repeatedly removes transactions whose
/// removal keeps the history violating, until no single removal does.
///
/// The result is *locally minimal*: every transaction in it is necessary
/// for the violation (removing any one makes the criterion satisfied or
/// unknown). Returns `None` if `h` is not rejected.
///
/// # Examples
///
/// ```
/// use duop_core::{minimize::shrink_transactions, DuOpacity, Criterion};
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let x = ObjId::new(0);
/// let mut b = HistoryBuilder::new();
/// // Unrelated noise.
/// for k in 3..10 {
///     b = b.committed_reader(TxnId::new(k), ObjId::new(1), Value::INITIAL);
/// }
/// let h = b
///     .committed_writer(TxnId::new(1), x, Value::new(1))
///     .read(TxnId::new(2), x, Value::new(0))
///     .commit(TxnId::new(2))
///     .build();
/// let core = shrink_transactions(&h, &DuOpacity::new()).unwrap();
/// assert_eq!(core.txn_count(), 2); // only T1 and T2 matter
/// ```
pub fn shrink_transactions(h: &History, criterion: &dyn Criterion) -> Option<History> {
    if !criterion.check(h).is_violated() {
        return None;
    }
    let mut current = h.clone();
    loop {
        let ids: Vec<TxnId> = current.txn_ids().collect();
        let mut shrunk = false;
        for id in ids {
            let candidate = current.filter_txns(|t| t != id);
            if criterion.check(&candidate).is_violated() {
                current = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return Some(current);
        }
    }
}

/// Convenience: full localization — shrink the transaction set, then cut
/// to the minimal violating prefix of the shrunken history.
///
/// Returns `None` if `h` is not rejected.
pub fn localize(h: &History, criterion: &dyn Criterion) -> Option<History> {
    let shrunk = shrink_transactions(h, criterion)?;
    minimal_violating_prefix(&shrunk, criterion).map(|(p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DuOpacity;
    use duop_history::{HistoryBuilder, ObjId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    fn noisy_violation() -> History {
        let mut b = HistoryBuilder::new();
        for k in 10..20 {
            b = b.committed_writer(t(k), ObjId::new(k), v(u64::from(k)));
        }
        b.committed_writer(t(1), x(), v(1))
            .read(t(2), x(), v(0))
            .commit(t(2))
            .build()
    }

    #[test]
    fn satisfied_histories_are_not_localized() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .build();
        assert!(minimal_violating_prefix(&h, &DuOpacity::new()).is_none());
        assert!(shrink_transactions(&h, &DuOpacity::new()).is_none());
        assert!(localize(&h, &DuOpacity::new()).is_none());
    }

    #[test]
    fn prefix_localization_finds_the_fatal_response() {
        let h = noisy_violation();
        let (prefix, len) = minimal_violating_prefix(&h, &DuOpacity::new()).unwrap();
        // The violating prefix ends exactly at the stale read's response.
        assert_eq!(len, prefix.len());
        assert!(DuOpacity::new().check(&prefix).is_violated());
        assert!(DuOpacity::new().check(&h.prefix(len - 1)).is_satisfied());
    }

    #[test]
    fn transaction_shrinking_reaches_the_core() {
        let h = noisy_violation();
        let core = shrink_transactions(&h, &DuOpacity::new()).unwrap();
        assert!(core.txn_count() <= 2, "core: {core}");
        assert!(DuOpacity::new().check(&core).is_violated());
        // Local minimality: removing anything repairs the history.
        for id in core.txn_ids().collect::<Vec<_>>() {
            let repaired = core.filter_txns(|t| t != id);
            assert!(!DuOpacity::new().check(&repaired).is_violated());
        }
    }

    #[test]
    fn localize_composes_both() {
        let h = noisy_violation();
        let localized = localize(&h, &DuOpacity::new()).unwrap();
        assert!(localized.txn_count() <= 2);
        assert!(localized.len() <= 10);
        assert!(DuOpacity::new().check(&localized).is_violated());
    }
}
