//! The paper's constructive lemmas as algorithms.
//!
//! * [`restrict_witness`] is the construction in **Lemma 1**: from a
//!   serialization of `H`, build a serialization of any prefix `H^i` whose
//!   order is a subsequence of the original. Prefix-closure of du-opacity
//!   (**Corollary 2**) is this construction plus the validator.
//! * [`live_set_reorder`] is the construction in **Lemma 4**: reorder a
//!   serialization so that live-set precedence `≺LS` is respected, the key
//!   step of the limit-closure proof (**Theorem 5**);
//! * [`build_theorem5_graph`] mechanizes the proof apparatus of
//!   **Theorem 5** — the layered graph of prefix serializations to which
//!   the paper applies König's Path Lemma — so its hypotheses can be
//!   checked on concrete instances.
//!
//! A reproduction note: Lemma 4's conclusion, read literally, requires
//! Theorem 5's "every transaction is complete" restriction — see
//! `figure2_shows_why_theorem5_needs_completeness` in this module's
//! tests for a du-opaque history with an incomplete transaction where no
//! `≺LS`-respecting serialization exists.

use crate::Witness;
use duop_history::{CommitCapability, History, TxnId};
use std::collections::BTreeMap;

/// Lemma 1: restricts a witness serialization of `h` to its prefix of
/// length `i`.
///
/// The resulting witness covers exactly `txns(H^i)`, in an order that is a
/// subsequence of the input order, with commit decisions carried over:
/// a transaction whose `tryC` is incomplete in `H^i` keeps the fate it has
/// in the serialization of `h` (the construction sets `S^i|k = S|k`), and
/// transactions that lose their `tryC` entirely become aborted, which needs
/// no recorded choice.
///
/// The paper proves the result is a du-opaque serialization of `H^i`
/// whenever the input is one of `H`; the property tests validate exactly
/// that with [`check_witness`](crate::check_witness).
///
/// # Examples
///
/// ```
/// use duop_core::{lemmas::restrict_witness, check_witness, Criterion, CriterionKind, DuOpacity};
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
///     .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
///     .build();
/// let w = DuOpacity::new().check(&h).into_result().unwrap();
/// let half = restrict_witness(&h, &w, 4);
/// assert!(check_witness(&h.prefix(4), &half, CriterionKind::DuOpacity).is_ok());
/// ```
///
/// # Panics
///
/// Panics if `i > h.len()` or if the witness does not cover `txns(H)`.
pub fn restrict_witness(h: &History, witness: &Witness, i: usize) -> Witness {
    assert!(i <= h.len(), "prefix length out of range");
    assert_eq!(
        witness.order().len(),
        h.txn_count(),
        "witness must cover the history"
    );
    let prefix = h.prefix(i);
    let order: Vec<TxnId> = witness
        .order()
        .iter()
        .copied()
        .filter(|id| prefix.participates(*id))
        .collect();
    let mut choices = BTreeMap::new();
    for t in prefix.txns() {
        if t.commit_capability() == CommitCapability::CommitPending {
            choices.insert(t.id(), witness.is_committed_in(h, t.id()));
        }
    }
    Witness::new(order, choices)
}

/// Lemma 4: reorders a witness serialization so that live-set precedence
/// is respected — whenever `T_k ≺LS T_m` in `h`, `T_k` comes before `T_m`.
///
/// Implements the paper's procedure: for each transaction `T_k`, find the
/// earliest transaction `T_ℓ` in the current sequence with `T_k ≺LS T_ℓ`;
/// if `T_ℓ` currently precedes `T_k`, move `T_k` to immediately precede
/// `T_ℓ`. Commit decisions are unchanged.
///
/// The paper proves the result is still a serialization when every
/// transaction in the live set of each moved transaction is complete —
/// in particular for *complete* histories, the hypothesis of Theorem 5.
///
/// # Examples
///
/// ```
/// use duop_core::{lemmas::live_set_reorder, Criterion, DuOpacity};
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
///     .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
///     .build();
/// let w = DuOpacity::new().check(&h).into_result().unwrap();
/// let reordered = live_set_reorder(&h, &w);
/// assert_eq!(reordered.order(), w.order()); // already ≺LS-respecting
/// ```
///
/// # Panics
///
/// Panics if the witness does not cover `txns(h)`.
pub fn live_set_reorder(h: &History, witness: &Witness) -> Witness {
    assert_eq!(
        witness.order().len(),
        h.txn_count(),
        "witness must cover the history"
    );
    let mut seq: Vec<TxnId> = witness.order().to_vec();
    let ids: Vec<TxnId> = h.txn_ids().collect();
    for &k in &ids {
        // Earliest transaction in the current sequence that succeeds T_k's
        // live set.
        let ell = seq.iter().position(|&m| m != k && h.precedes_ls(k, m));
        let Some(pos_ell) = ell else { continue };
        let pos_k = seq.iter().position(|&m| m == k).expect("coverage");
        if pos_ell < pos_k {
            seq.remove(pos_k);
            seq.insert(pos_ell, k);
        }
    }
    Witness::new(seq, witness.commit_choices().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_witness, Criterion, CriterionKind, DuOpacity};
    use duop_history::{HistoryBuilder, ObjId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    /// A du-opaque history with concurrency and a pending commit.
    fn sample() -> History {
        HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .read(t(2), x(), v(1))
            .inv_read(t(3), x())
            .resp_value(t(3), v(1))
            .commit(t(2))
            .commit(t(3))
            .build()
    }

    use duop_history::History;

    #[test]
    fn restricted_witness_serializes_every_prefix() {
        let h = sample();
        let witness = DuOpacity::new().check(&h).into_result().expect("du-opaque");
        for i in 0..=h.len() {
            let prefix = h.prefix(i);
            let restricted = restrict_witness(&h, &witness, i);
            assert_eq!(
                check_witness(&prefix, &restricted, CriterionKind::DuOpacity),
                Ok(()),
                "prefix of length {i}"
            );
        }
    }

    #[test]
    fn restricted_order_is_a_subsequence() {
        let h = sample();
        let witness = DuOpacity::new().check(&h).into_result().expect("du-opaque");
        for i in 0..=h.len() {
            let restricted = restrict_witness(&h, &witness, i);
            // Subsequence check.
            let mut it = witness.order().iter();
            assert!(
                restricted.order().iter().all(|id| it.any(|w| w == id)),
                "order of prefix {i} is not a subsequence"
            );
        }
    }

    #[test]
    fn pending_txn_keeps_its_fate() {
        let h = sample();
        let witness = DuOpacity::new().check(&h).into_result().expect("du-opaque");
        // T1 is commit-pending in every prefix that contains its tryC
        // invocation; since T2 reads T1's write, the witness commits T1.
        assert_eq!(witness.commit_choice(t(1)), Some(true));
        let restricted = restrict_witness(&h, &witness, h.len());
        assert_eq!(restricted.commit_choice(t(1)), Some(true));
    }

    #[test]
    #[should_panic(expected = "prefix length out of range")]
    fn restrict_rejects_out_of_range() {
        let h = sample();
        let witness = DuOpacity::new().check(&h).into_result().unwrap();
        restrict_witness(&h, &witness, h.len() + 1);
    }

    #[test]
    fn live_set_reorder_respects_ls_order() {
        // T2 (complete, never tries to commit) overlaps T1 and reads T1's
        // committed value; T3 starts after T1 and T2 finish, so T2 ≺LS T3.
        // A serialization may nonetheless place T2 after T3 — Lemma 4's
        // procedure pulls it back without breaking the witness.
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .inv_read(t(2), x())
            .resp_committed(t(1))
            .resp_value(t(2), v(1))
            .committed_reader(t(3), x(), v(1))
            .build();
        assert!(h.precedes_ls(t(2), t(3)), "T2's live set ends before T3");
        let skewed = Witness::new(vec![t(1), t(3), t(2)], BTreeMap::new());
        assert_eq!(check_witness(&h, &skewed, CriterionKind::DuOpacity), Ok(()));
        let reordered = live_set_reorder(&h, &skewed);
        assert!(
            reordered.position(t(2)).unwrap() < reordered.position(t(3)).unwrap(),
            "T2 must precede T3 after reordering"
        );
        assert_eq!(
            check_witness(&h, &reordered, CriterionKind::DuOpacity),
            Ok(())
        );
    }

    #[test]
    fn live_set_reorder_is_noop_on_ls_ordered_witness() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .committed_reader(t(3), x(), v(1))
            .build();
        let ordered = Witness::new(vec![t(1), t(2), t(3)], BTreeMap::new());
        assert_eq!(
            check_witness(&h, &ordered, CriterionKind::DuOpacity),
            Ok(())
        );
        let reordered = live_set_reorder(&h, &ordered);
        assert_eq!(reordered.order(), ordered.order());
    }

    #[test]
    fn reorder_preserves_witness_validity_on_complete_histories() {
        // Complete history (every transaction's last operation responded),
        // with overlap and a never-committing transaction.
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .inv_read(t(2), x())
            .resp_committed(t(1))
            .resp_value(t(2), v(1))
            .committed_reader(t(3), x(), v(1))
            .build();
        let witness = DuOpacity::new().check(&h).into_result().expect("du-opaque");
        assert!(h.is_complete());
        let reordered = live_set_reorder(&h, &witness);
        assert_eq!(
            check_witness(&h, &reordered, CriterionKind::DuOpacity),
            Ok(())
        );
        for a in h.txn_ids() {
            for b in h.txn_ids() {
                if a != b && h.precedes_ls(a, b) {
                    assert!(reordered.position(a).unwrap() < reordered.position(b).unwrap());
                }
            }
        }
    }
}

/// The proof apparatus of **Theorem 5**, mechanized for finite instances:
/// the rooted layered graph `G_H` whose layer `i` holds the (live-set
/// respecting, per Lemma 4) du-serializations of the prefix `H^i`, with an
/// edge between consecutive layers when the serializations agree on the
/// transactions already complete.
///
/// The paper applies König's Path Lemma to this graph to extract a
/// serialization of an infinite history; [`build_theorem5_graph`] builds
/// it for every prefix of a finite history so that the lemma's
/// hypotheses — every layer inhabited, every vertex reachable, bounded
/// branching — can be checked mechanically.
#[derive(Clone, Debug)]
pub struct Theorem5Graph {
    /// `layers[i]`: every ≺LS-respecting du-witness of `h.prefix(i)`.
    pub layers: Vec<Vec<Witness>>,
    /// `edges[i]`: index pairs `(a, b)` connecting `layers[i][a]` to
    /// `layers[i + 1][b]`.
    pub edges: Vec<Vec<(usize, usize)>>,
}

impl Theorem5Graph {
    /// Every prefix has at least one vertex (prefix-closure, Corollary 2).
    pub fn every_layer_nonempty(&self) -> bool {
        self.layers.iter().all(|l| !l.is_empty())
    }

    /// Every non-root vertex has a predecessor in the previous layer — the
    /// connectivity step of the paper's proof (via Lemma 1).
    pub fn every_vertex_has_predecessor(&self) -> bool {
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            for b in 0..layer.len() {
                if !self.edges[i - 1].iter().any(|&(_, to)| to == b) {
                    return false;
                }
            }
        }
        true
    }

    /// A root-to-final-layer path exists — the finite instance of König's
    /// Path Lemma (for a finite history this certifies a serialization of
    /// the full history consistent layer by layer).
    pub fn full_path_exists(&self) -> bool {
        if self.layers.is_empty() {
            return false;
        }
        let mut reachable: Vec<bool> = vec![true; self.layers[0].len()];
        for i in 0..self.edges.len() {
            let mut next = vec![false; self.layers[i + 1].len()];
            for &(a, b) in &self.edges[i] {
                if reachable[a] {
                    next[b] = true;
                }
            }
            reachable = next;
        }
        reachable.iter().any(|&r| r)
    }

    /// Extracts a root-to-final-layer path — the König path the proof of
    /// Theorem 5 derives. Returns one vertex index per layer, or `None`
    /// when some layer is unreachable.
    pub fn konig_path(&self) -> Option<Vec<usize>> {
        if self.layers.is_empty() || self.layers[0].is_empty() {
            return None;
        }
        // Backward reachability from the final layer, then walk forward.
        let depth = self.layers.len();
        let mut alive: Vec<Vec<bool>> = self.layers.iter().map(|l| vec![false; l.len()]).collect();
        for slot in alive[depth - 1].iter_mut() {
            *slot = true;
        }
        for i in (0..self.edges.len()).rev() {
            for &(a, b) in &self.edges[i] {
                if alive[i + 1][b] {
                    alive[i][a] = true;
                }
            }
        }
        let mut path = Vec::with_capacity(depth);
        let mut current = (0..self.layers[0].len()).find(|&a| alive[0][a])?;
        path.push(current);
        for i in 0..self.edges.len() {
            let next = self.edges[i]
                .iter()
                .find(|&&(a, b)| a == current && alive[i + 1][b])
                .map(|&(_, b)| b)?;
            path.push(next);
            current = next;
        }
        Some(path)
    }

    /// Maximum out-degree — the finite-branching hypothesis.
    pub fn max_out_degree(&self) -> usize {
        let mut max = 0;
        for (i, layer_edges) in self.edges.iter().enumerate() {
            for a in 0..self.layers[i].len() {
                let deg = layer_edges.iter().filter(|&&(from, _)| from == a).count();
                max = max.max(deg);
            }
        }
        max
    }
}

/// `cseq_i(S^j)`: the witness order restricted to transactions that are
/// complete in `H^i` *with respect to* `H` — their last event in `H` is a
/// response and falls inside the prefix.
fn cseq(h: &History, prefix_len: usize, order: &[TxnId]) -> Vec<TxnId> {
    order
        .iter()
        .copied()
        .filter(|id| {
            let txn = h.txn(*id).expect("witness covers h");
            txn.is_complete() && txn.last_event_index() < prefix_len
        })
        .collect()
}

/// Builds [`Theorem5Graph`] for `h` by enumerating every du-witness of
/// every prefix (so `h` must be small — at most
/// [`MAX_ENUMERABLE_TXNS`](crate::reference::MAX_ENUMERABLE_TXNS)
/// transactions) and keeping the ≺LS-respecting ones, per the vertex
/// condition in the paper's proof.
///
/// # Examples
///
/// ```
/// use duop_core::lemmas::build_theorem5_graph;
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
///     .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
///     .build();
/// let g = build_theorem5_graph(&h);
/// assert!(g.every_layer_nonempty());
/// assert!(g.full_path_exists());
/// ```
///
/// # Panics
///
/// Panics if `h` has too many transactions to enumerate.
pub fn build_theorem5_graph(h: &History) -> Theorem5Graph {
    use crate::reference::enumerate_witnesses;
    use crate::CriterionKind;

    let mut layers: Vec<Vec<Witness>> = Vec::with_capacity(h.len() + 1);
    for i in 0..=h.len() {
        let prefix = h.prefix(i);
        let ids: Vec<TxnId> = prefix.txn_ids().collect();
        let witnesses: Vec<Witness> = enumerate_witnesses(&prefix, CriterionKind::DuOpacity)
            .into_iter()
            .filter(|w| {
                ids.iter().all(|&a| {
                    ids.iter().all(|&b| {
                        a == b
                            || !prefix.precedes_ls(a, b)
                            || w.position(a).unwrap() < w.position(b).unwrap()
                    })
                })
            })
            .collect();
        layers.push(witnesses);
    }

    let mut edges: Vec<Vec<(usize, usize)>> = Vec::with_capacity(h.len());
    for i in 0..h.len() {
        let mut layer_edges = Vec::new();
        for (a, wa) in layers[i].iter().enumerate() {
            let ca = cseq(h, i, wa.order());
            for (b, wb) in layers[i + 1].iter().enumerate() {
                if ca == cseq(h, i, wb.order()) {
                    layer_edges.push((a, b));
                }
            }
        }
        edges.push(layer_edges);
    }

    Theorem5Graph { layers, edges }
}

#[cfg(test)]
mod theorem5_tests {
    use super::*;
    use crate::{Criterion, CriterionKind, DuOpacity};
    use duop_history::{HistoryBuilder, ObjId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn konig_hypotheses_hold_on_a_complete_du_opaque_history() {
        // Complete history (Theorem 5's restriction) with overlap.
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .inv_read(t(2), x())
            .resp_committed(t(1))
            .resp_value(t(2), v(1))
            .committed_reader(t(3), x(), v(1))
            .build();
        assert!(h.is_complete());
        let g = build_theorem5_graph(&h);
        assert!(
            g.every_layer_nonempty(),
            "Corollary 2: every prefix serializable"
        );
        assert!(g.every_vertex_has_predecessor(), "Lemma 1: connectivity");
        assert!(g.full_path_exists(), "König path through every layer");
        assert!(g.max_out_degree() > 0);
    }

    /// A reproduction finding: Theorem 5's completeness restriction is
    /// *necessary for the proof apparatus itself*, not only for the limit.
    ///
    /// In the Figure 2 family, `T1`'s `tryC` never responds (`T1` is
    /// incomplete) while `T2` — complete, never committing — finishes its
    /// read before the later readers begin, so `T2 ≺LS T_i` for every
    /// reader. Legality forces `T2` *after* `T1` (it read `T1`'s value)
    /// and every reader of 0 *before* `T1` — so no serialization respects
    /// `≺LS`, and the Lemma 4-filtered layers of the Theorem 5 graph go
    /// empty. Read literally (per-`T_k` hypothesis only), Lemma 4's
    /// conclusion fails here; under Theorem 5's "every transaction is
    /// complete" restriction, histories like this are excluded and the
    /// lemma is sound — our property tests confirm it on complete
    /// histories.
    #[test]
    fn figure2_shows_why_theorem5_needs_completeness() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .inv_read(t(2), x())
            .resp_value(t(2), v(1))
            .inv_read(t(3), x())
            .resp_value(t(3), v(0))
            .inv_read(t(4), x())
            .resp_value(t(4), v(0))
            .build();
        assert!(!h.is_complete(), "T1's tryC never responds");
        // The history is du-opaque...
        assert!(DuOpacity::new().check(&h).is_satisfied());
        // ... T2 live-set-precedes the later readers ...
        assert!(h.precedes_ls(t(2), t(3)));
        assert!(h.precedes_ls(t(2), t(4)));
        // ... and yet no ≺LS-respecting serialization exists: the final
        // layer of the Theorem 5 graph is empty.
        let g = build_theorem5_graph(&h);
        assert!(
            g.layers.last().unwrap().is_empty(),
            "≺LS-respecting witnesses must not exist for the full history"
        );
        assert!(!g.every_layer_nonempty());
        // Without the ≺LS vertex condition, witnesses do exist (du-opacity
        // holds) — the emptiness is specifically a Lemma 4 phenomenon.
        let all = crate::reference::enumerate_witnesses(&h, CriterionKind::DuOpacity);
        assert!(!all.is_empty());
    }

    /// Claims 6–7 of the Theorem 5 proof, checked along a concrete König
    /// path: `cseq_i` is stable along the path (Claim 6), and the limit
    /// order — the stabilized positions of transactions as they complete —
    /// is a well-defined total order over `txns(H)` (Claim 7's bijection),
    /// which moreover serializes the full history.
    #[test]
    fn konig_path_satisfies_claims_6_and_7() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .inv_read(t(2), x())
            .resp_committed(t(1))
            .resp_value(t(2), v(1))
            .committed_reader(t(3), x(), v(1))
            .build();
        assert!(h.is_complete());
        let g = build_theorem5_graph(&h);
        let path = g.konig_path().expect("a König path exists");
        assert_eq!(path.len(), h.len() + 1);

        // Claim 6: cseq_i agreement along every edge of the path, and
        // cseq_i(S^i) = cseq_i(S^j) for all j > i.
        for i in 0..h.len() {
            let wi = &g.layers[i][path[i]];
            for (j, &pj) in path.iter().enumerate().skip(i + 1) {
                let wj = &g.layers[j][pj];
                assert_eq!(
                    cseq(&h, i, wi.order()),
                    cseq(&h, i, wj.order()),
                    "cseq_{i} differs between layers {i} and {j}"
                );
            }
        }

        // Claim 7: the limit sequence (the final layer's order) is a
        // bijection onto txns(H) and a du-witness of the full history.
        let last = &g.layers[h.len()][*path.last().unwrap()];
        let mut ids: Vec<TxnId> = h.txn_ids().collect();
        let mut ordered = last.order().to_vec();
        ids.sort_unstable();
        ordered.sort_unstable();
        assert_eq!(ids, ordered, "the limit order covers txns(H) exactly once");
        assert_eq!(
            crate::check_witness(&h, last, CriterionKind::DuOpacity),
            Ok(())
        );
    }

    #[test]
    fn empty_history_graph_is_trivial() {
        let g = build_theorem5_graph(&duop_history::History::empty());
        assert_eq!(g.layers.len(), 1);
        assert_eq!(g.layers[0].len(), 1, "the empty witness");
        assert!(g.full_path_exists());
    }
}
