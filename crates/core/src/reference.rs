//! Brute-force reference checker used as a differential-testing oracle.
//!
//! [`check_by_enumeration`] enumerates *every* candidate witness — all
//! permutations of the history's transactions crossed with all commit
//! choices for commit-pending transactions — and validates each with the
//! literal-definition validator [`check_witness`]. It shares no code with
//! the search engine beyond the validator, so agreement between the two is
//! strong evidence of correctness.
//!
//! Cost is `n! · 2^p`; intended for histories with at most
//! [`MAX_ENUMERABLE_TXNS`] transactions.

use crate::{check_witness, CriterionKind, Verdict, Violation, Witness};
use duop_history::{CommitCapability, History, TxnId};
use std::collections::BTreeMap;

/// Largest transaction count [`check_by_enumeration`] accepts.
pub const MAX_ENUMERABLE_TXNS: usize = 8;

/// Decides `kind` for `h` by exhaustive enumeration.
///
/// # Examples
///
/// ```
/// use duop_core::{reference::check_by_enumeration, CriterionKind};
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
///     .build();
/// assert!(check_by_enumeration(&h, CriterionKind::DuOpacity).is_satisfied());
/// ```
///
/// # Panics
///
/// Panics if `h` has more than [`MAX_ENUMERABLE_TXNS`] transactions.
pub fn check_by_enumeration(h: &History, kind: CriterionKind) -> Verdict {
    let ids: Vec<TxnId> = h.txn_ids().collect();
    assert!(
        ids.len() <= MAX_ENUMERABLE_TXNS,
        "enumeration limited to {MAX_ENUMERABLE_TXNS} transactions, got {}",
        ids.len()
    );
    let pending: Vec<TxnId> = h
        .txns()
        .filter(|t| t.commit_capability() == CommitCapability::CommitPending)
        .map(|t| t.id())
        .collect();

    let mut explored = 0u64;
    let mut order = ids.clone();
    let mut found = None;
    permute(&mut order, 0, &mut |perm| {
        if found.is_some() {
            return;
        }
        for mask in 0..(1u32 << pending.len()) {
            explored += 1;
            let choices: BTreeMap<TxnId, bool> = pending
                .iter()
                .enumerate()
                .map(|(b, id)| (*id, mask & (1 << b) != 0))
                .collect();
            let w = Witness::new(perm.to_vec(), choices);
            if check_witness(h, &w, kind).is_ok() {
                found = Some(w);
                return;
            }
        }
    });

    match found {
        Some(w) => Verdict::Satisfied(w),
        None => Verdict::Violated(Violation::NoSerialization {
            criterion: format!("{kind:?} (by enumeration)"),
            explored,
        }),
    }
}

/// Heap's algorithm, invoking `f` on every permutation of `items`.
fn permute(items: &mut [TxnId], k: usize, f: &mut impl FnMut(&[TxnId])) {
    let n = items.len();
    if k == n.saturating_sub(1) || n == 0 {
        f(items);
        return;
    }
    for i in k..n {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::{HistoryBuilder, ObjId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn empty_history_is_trivially_satisfied() {
        let h = History::empty();
        assert!(check_by_enumeration(&h, CriterionKind::DuOpacity).is_satisfied());
    }

    use duop_history::History;

    #[test]
    fn agrees_with_search_on_simple_positive() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        assert!(check_by_enumeration(&h, CriterionKind::DuOpacity).is_satisfied());
        assert!(check_by_enumeration(&h, CriterionKind::FinalStateOpacity).is_satisfied());
    }

    #[test]
    fn agrees_with_search_on_simple_negative() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(0))
            .build();
        assert!(check_by_enumeration(&h, CriterionKind::DuOpacity).is_violated());
        assert!(check_by_enumeration(&h, CriterionKind::FinalStateOpacity).is_violated());
    }

    #[test]
    fn finds_pending_commit_choices() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .read(t(2), x(), v(1))
            .commit(t(2))
            .build();
        let verdict = check_by_enumeration(&h, CriterionKind::DuOpacity);
        assert_eq!(verdict.witness().unwrap().commit_choice(t(1)), Some(true));
    }

    #[test]
    #[should_panic(expected = "enumeration limited")]
    fn rejects_large_histories() {
        let mut b = HistoryBuilder::new();
        for k in 1..=(MAX_ENUMERABLE_TXNS as u32 + 1) {
            b = b.committed_writer(t(k), x(), v(u64::from(k)));
        }
        check_by_enumeration(&b.build(), CriterionKind::DuOpacity);
    }
}

/// Enumerates **every** witness of `kind` for `h`: all permutations of the
/// transactions crossed with all commit choices, filtered by
/// [`check_witness`].
///
/// # Panics
///
/// Panics if `h` has more than [`MAX_ENUMERABLE_TXNS`] transactions.
pub fn enumerate_witnesses(h: &History, kind: CriterionKind) -> Vec<Witness> {
    let ids: Vec<TxnId> = h.txn_ids().collect();
    assert!(
        ids.len() <= MAX_ENUMERABLE_TXNS,
        "enumeration limited to {MAX_ENUMERABLE_TXNS} transactions, got {}",
        ids.len()
    );
    let pending: Vec<TxnId> = h
        .txns()
        .filter(|t| t.commit_capability() == CommitCapability::CommitPending)
        .map(|t| t.id())
        .collect();
    let mut out = Vec::new();
    let mut order = ids.clone();
    permute(&mut order, 0, &mut |perm| {
        for mask in 0..(1u32 << pending.len()) {
            let choices: BTreeMap<TxnId, bool> = pending
                .iter()
                .enumerate()
                .map(|(b, id)| (*id, mask & (1 << b) != 0))
                .collect();
            let w = Witness::new(perm.to_vec(), choices);
            if check_witness(h, &w, kind).is_ok() {
                out.push(w);
            }
        }
    });
    out
}

#[cfg(test)]
mod enumerate_tests {
    use super::*;
    use duop_history::{HistoryBuilder, ObjId, Value};

    #[test]
    fn enumerates_exactly_the_valid_witnesses() {
        let (t1, t2) = (TxnId::new(1), TxnId::new(2));
        let x = ObjId::new(0);
        // Overlapping reader of the initial value: both orders valid? The
        // reader reads 0 so it must precede the writer... unless the writer
        // aborts — it committed, so exactly one order.
        let h = HistoryBuilder::new()
            .inv_write(t1, x, Value::new(1))
            .inv_read(t2, x)
            .resp_value(t2, Value::new(0))
            .resp_ok(t1)
            .commit(t1)
            .commit(t2)
            .build();
        let all = enumerate_witnesses(&h, CriterionKind::DuOpacity);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].order(), &[t2, t1]);
    }

    #[test]
    fn independent_transactions_admit_both_orders() {
        let (t1, t2) = (TxnId::new(1), TxnId::new(2));
        let h = HistoryBuilder::new()
            .inv_write(t1, ObjId::new(0), Value::new(1))
            .inv_write(t2, ObjId::new(1), Value::new(2))
            .resp_ok(t1)
            .resp_ok(t2)
            .commit(t1)
            .commit(t2)
            .build();
        let all = enumerate_witnesses(&h, CriterionKind::DuOpacity);
        assert_eq!(all.len(), 2);
    }
}
