//! Independent validation of witness serializations.
//!
//! [`check_witness`] re-derives every condition of the criterion
//! definitions directly on the materialized history `S`, sharing no state
//! with the search engine. It is the oracle used by the differential and
//! property tests, and the proof that a [`Witness`] returned by a checker
//! really certifies the criterion.

use crate::criteria::{rco_edges, tms2_edges, CriterionKind};
use crate::{Violation, Witness};
use duop_history::{History, LegalityError, ObjId, Op, Ret, TxnId, Value};
use std::error::Error;
use std::fmt;

/// Why a witness fails to certify a criterion for a history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WitnessError {
    /// The witness order does not cover exactly the history's transactions.
    WrongCoverage,
    /// The materialized `S` is not equivalent to any completion of `H`.
    NotEquivalentToCompletion,
    /// Real-time order violated: `earlier ≺RT later` in `H` but the
    /// witness places them in the opposite order.
    RealTimeViolated {
        /// The transaction that finishes first in `H`.
        earlier: TxnId,
        /// The transaction that starts after `earlier` finishes.
        later: TxnId,
    },
    /// The materialized `S` is not legal.
    NotLegal(LegalityError),
    /// Definition 3(3) fails: a read is not legal in its local
    /// serialization `S^{k,X}_H`.
    LocalLegalityViolated {
        /// The reading transaction.
        txn: TxnId,
        /// The t-object.
        obj: ObjId,
        /// The value the read returned.
        got: Value,
        /// The latest written value in the local serialization.
        expected: Value,
    },
    /// A criterion-specific precedence edge is violated.
    EdgeViolated {
        /// Must come first.
        before: TxnId,
        /// Must come second.
        after: TxnId,
    },
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::WrongCoverage => {
                write!(f, "witness does not cover exactly the history's transactions")
            }
            WitnessError::NotEquivalentToCompletion => {
                write!(f, "materialized serialization is not equivalent to a completion")
            }
            WitnessError::RealTimeViolated { earlier, later } => {
                write!(f, "real-time order violated: {earlier} precedes {later} in the history")
            }
            WitnessError::NotLegal(err) => write!(f, "serialization is not legal: {err}"),
            WitnessError::LocalLegalityViolated { txn, obj, got, expected } => write!(
                f,
                "read of {obj} by {txn} returned {got} but its local serialization yields {expected}"
            ),
            WitnessError::EdgeViolated { before, after } => {
                write!(f, "criterion requires {before} before {after}")
            }
        }
    }
}

impl Error for WitnessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WitnessError::NotLegal(err) => Some(err),
            _ => None,
        }
    }
}

/// Validates that `witness` certifies `kind` for history `h`.
///
/// Checks, in order: coverage; equivalence to a completion of `h`
/// (Definition 2); real-time order (Definitions 3(2)/4(1)); legality of
/// the materialized `S`; and the criterion-specific condition —
/// Definition 3(3) for du-opacity, the precedence edges for TMS2 and
/// read-commit-order opacity.
///
/// # Errors
///
/// Returns the first [`WitnessError`] encountered.
pub fn check_witness(
    h: &History,
    witness: &Witness,
    kind: CriterionKind,
) -> Result<(), WitnessError> {
    // Coverage: exactly the transactions of `h`, each once.
    if witness.order().len() != h.txn_count() {
        return Err(WitnessError::WrongCoverage);
    }
    for &id in witness.order() {
        if !h.participates(id) {
            return Err(WitnessError::WrongCoverage);
        }
    }
    {
        let mut seen = std::collections::HashSet::new();
        if !witness.order().iter().all(|id| seen.insert(*id)) {
            return Err(WitnessError::WrongCoverage);
        }
    }

    let s = witness.materialize(h);

    // Equivalence to a completion (Definition 2). The canonical completion
    // with the witness's commit choices has the same per-transaction
    // events, so equivalence to it is exactly what we need.
    let completion = h.complete_with(|id| witness.commit_choice(id).unwrap_or(false));
    if !s.equivalent(&completion) || !completion.is_completion_of(h) {
        return Err(WitnessError::NotEquivalentToCompletion);
    }

    // Real-time order.
    let ids: Vec<TxnId> = h.txn_ids().collect();
    for &a in &ids {
        for &b in &ids {
            if a != b && h.precedes_rt(a, b) {
                let (pa, pb) = (
                    witness.position(a).expect("coverage checked"),
                    witness.position(b).expect("coverage checked"),
                );
                if pa >= pb {
                    return Err(WitnessError::RealTimeViolated {
                        earlier: a,
                        later: b,
                    });
                }
            }
        }
    }

    // Legality of S.
    s.check_legal().map_err(WitnessError::NotLegal)?;

    match kind {
        CriterionKind::FinalStateOpacity => {}
        CriterionKind::DuOpacity => check_local_legality(h, witness, &s)?,
        CriterionKind::Tms2 => check_edges(witness, tms2_edges(h))?,
        CriterionKind::ReadCommitOrder => {
            // The edges are commit-conditional: an edge toward a writer
            // the witness's completion *aborts* is vacuous.
            let edges = rco_edges(h)
                .into_iter()
                .filter(|&(_, writer)| witness.is_committed_in(h, writer))
                .collect();
            check_edges(witness, edges)?;
        }
    }
    Ok(())
}

/// Definition 3(3), implemented literally: for every `read_k(X)` returning
/// a value, build the local serialization `S^{k,X}_H` — the prefix of `S`
/// up to the read's response, with every transaction `T_m` whose `tryC_m`
/// is not invoked in `H^{k,X}` removed (the reader itself is retained) —
/// and check the read returns the latest written value there.
fn check_local_legality(h: &History, witness: &Witness, s: &History) -> Result<(), WitnessError> {
    for txn in h.txns() {
        let k = txn.id();
        let pos_k = witness.position(k).expect("coverage checked");
        for op in txn.ops() {
            let (Op::Read(x), Some(Ret::Value(got))) = (op.op, op.resp) else {
                continue;
            };
            // Own-write reads are legal locally iff legal globally (already
            // checked): the reader's own events are retained in S^{k,X}_H.
            let own_write = txn.ops()[..]
                .iter()
                .take_while(|o| o.inv_index < op.inv_index)
                .filter_map(|o| match (o.op, o.resp) {
                    (Op::Write(ox, v), Some(Ret::Ok)) if ox == x => Some(v),
                    _ => None,
                })
                .last();
            if own_write.is_some() {
                continue;
            }
            let resp_h = h
                .read_resp_index(k, x)
                .expect("complete read has a response index");
            // Latest written value of X in S^{k,X}_H: the last committed
            // (in S) transaction before T_k in the witness order that
            // writes X *and* has invoked tryC in H^{k,X}.
            let mut expected = Value::INITIAL;
            for &m in &witness.order()[..pos_k] {
                if !witness.is_committed_in(h, m) {
                    continue;
                }
                let eligible = h.try_commit_inv_index(m).is_some_and(|inv| inv < resp_h);
                if !eligible {
                    continue;
                }
                if let Some(v) = s.txn(m).expect("txn in S").last_write_to(x) {
                    expected = v;
                }
            }
            if got != expected {
                return Err(WitnessError::LocalLegalityViolated {
                    txn: k,
                    obj: x,
                    got,
                    expected,
                });
            }
        }
    }
    Ok(())
}

fn check_edges(witness: &Witness, edges: Vec<(TxnId, TxnId)>) -> Result<(), WitnessError> {
    for (before, after) in edges {
        let (pa, pb) = (
            witness.position(before).expect("coverage checked"),
            witness.position(after).expect("coverage checked"),
        );
        if pa >= pb {
            return Err(WitnessError::EdgeViolated { before, after });
        }
    }
    Ok(())
}

impl From<WitnessError> for Violation {
    fn from(err: WitnessError) -> Self {
        match err {
            WitnessError::LocalLegalityViolated { txn, obj, got, .. } => Violation::MissingWriter {
                txn,
                obj,
                value: got,
            },
            other => Violation::NoSerialization {
                criterion: format!("witness validation failed: {other}"),
                explored: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::CriterionKind;
    use duop_history::HistoryBuilder;
    use std::collections::BTreeMap;

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    fn w(order: Vec<TxnId>) -> Witness {
        Witness::new(order, BTreeMap::new())
    }

    #[test]
    fn valid_witness_accepted() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        assert_eq!(
            check_witness(&h, &w(vec![t(1), t(2)]), CriterionKind::DuOpacity),
            Ok(())
        );
    }

    #[test]
    fn coverage_errors() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(2))
            .build();
        assert_eq!(
            check_witness(&h, &w(vec![t(1)]), CriterionKind::FinalStateOpacity),
            Err(WitnessError::WrongCoverage)
        );
        assert_eq!(
            check_witness(&h, &w(vec![t(1), t(1)]), CriterionKind::FinalStateOpacity),
            Err(WitnessError::WrongCoverage)
        );
        assert_eq!(
            check_witness(&h, &w(vec![t(1), t(9)]), CriterionKind::FinalStateOpacity),
            Err(WitnessError::WrongCoverage)
        );
    }

    #[test]
    fn real_time_violation_detected() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(2))
            .build();
        assert_eq!(
            check_witness(&h, &w(vec![t(2), t(1)]), CriterionKind::FinalStateOpacity),
            Err(WitnessError::RealTimeViolated {
                earlier: t(1),
                later: t(2)
            })
        );
    }

    #[test]
    fn illegal_serialization_detected() {
        // Both orders illegal for a stale read.
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_ok(t(1))
            .resp_value(t(2), v(9))
            .commit(t(1))
            .commit(t(2))
            .build();
        let res = check_witness(&h, &w(vec![t(1), t(2)]), CriterionKind::FinalStateOpacity);
        assert!(matches!(res, Err(WitnessError::NotLegal(_))));
    }

    #[test]
    fn local_legality_distinguishes_du() {
        // T3's write of 1 commits, but its tryC is invoked after T2's read
        // responded. Witness T1(aborted) T3 T2 is final-state valid but
        // du-invalid.
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .commit_aborted(t(1))
            .inv_read(t(2), x())
            .resp_value(t(2), v(1))
            .committed_writer(t(3), x(), v(1))
            .commit(t(2))
            .build();
        let witness = w(vec![t(1), t(3), t(2)]);
        assert_eq!(
            check_witness(&h, &witness, CriterionKind::FinalStateOpacity),
            Ok(())
        );
        assert_eq!(
            check_witness(&h, &witness, CriterionKind::DuOpacity),
            Err(WitnessError::LocalLegalityViolated {
                txn: t(2),
                obj: x(),
                got: v(1),
                expected: v(0),
            })
        );
    }

    #[test]
    fn pending_commit_choice_affects_validity() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .read(t(2), x(), v(1))
            .commit(t(2))
            .build();
        let committed = Witness::new(vec![t(1), t(2)], BTreeMap::from([(t(1), true)]));
        assert_eq!(
            check_witness(&h, &committed, CriterionKind::DuOpacity),
            Ok(())
        );

        let aborted = Witness::new(vec![t(1), t(2)], BTreeMap::from([(t(1), false)]));
        assert!(check_witness(&h, &aborted, CriterionKind::DuOpacity).is_err());
    }

    #[test]
    fn own_write_reads_are_locally_legal() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(7))
            .read(t(1), x(), v(7))
            .commit(t(1))
            .build();
        assert_eq!(
            check_witness(&h, &w(vec![t(1)]), CriterionKind::DuOpacity),
            Ok(())
        );
    }
}
