//! The search planner: static preprocessing that runs before any
//! backtracking.
//!
//! Membership in du-opacity (and the related criteria) is NP-hard, so the
//! serialization search is exponential in the worst case. The planner
//! attacks the *instance size* rather than the constant factor:
//!
//! 1. **Conflict-graph decomposition.** Two transactions conflict when
//!    they access a common object, are ordered by real time, or are
//!    related by a criterion edge (conditional or not). Transactions in
//!    different connected components of this graph share *no* objects and
//!    *no* ordering constraints, so a serialization of the whole history
//!    exists iff each component has one, and per-component serializations
//!    compose by concatenation (see `DESIGN.md` for the argument). The
//!    search therefore runs per component and is exponential only in the
//!    largest component.
//! 2. **Candidate writer sets.** For every external read the planner
//!    precomputes the set of transactions that could supply its value in
//!    *some* serialization (committable writers of the value; in du mode
//!    additionally `tryC`-eligible). Zero candidates for a non-initial
//!    value is an immediate [`Violation::MissingWriter`] — no search. A
//!    *singleton* candidate is a writer that must commit and precede the
//!    reader in every satisfying serialization, so it becomes a **forced
//!    precedence edge** fed to the search, shrinking the tree before the
//!    first node is expanded.
//!
//! A cycle among real-time/criterion edges alone is reported as
//! [`Violation::ConstraintCycle`] exactly like the monolithic engine; a
//! cycle that appears only once forced edges are added means no
//! serialization exists (forced edges are necessary conditions), reported
//! as [`Violation::NoSerialization`] with zero explored states.

use crate::bitset::BitSet;
use crate::search::{witness_from_path, Outcome, Query, SearchConfig, SearchStats, Searcher};
use crate::spec::Spec;
use crate::{Verdict, Violation};
use duop_history::{CommitCapability, History, TxnId, Value};
use std::collections::HashMap;

/// Result of planning one query: the conflict-graph components (each a
/// sorted list of transaction indices, ordered by smallest member) and the
/// forced precedence edges from singleton candidate sets.
#[derive(Clone, Debug)]
pub(crate) struct Plan {
    pub(crate) components: Vec<Vec<usize>>,
    pub(crate) forced: Vec<(usize, usize)>,
}

/// Builds the precedence constraints of `query` over `spec`:
/// unconditional predecessors (real time + extra edges + commit edges
/// whose target is already committed) and commit-conditional predecessors
/// (commit edges gating a commit-pending target's fate).
pub(crate) fn build_constraints(spec: &Spec, query: &Query) -> (Vec<BitSet>, Vec<BitSet>) {
    let n = spec.txns.len();
    let mut preds = spec.rt_preds.clone();
    for (a, b) in &query.extra_edges {
        if let (Some(&ia), Some(&ib)) = (spec.index.get(a), spec.index.get(b)) {
            if ia != ib {
                preds[ib].insert(ia);
            }
        }
    }
    let mut commit_preds: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    for (a, b) in &query.commit_edges {
        if let (Some(&ia), Some(&ib)) = (spec.index.get(a), spec.index.get(b)) {
            if ia == ib {
                continue;
            }
            match spec.txns[ib].capability {
                // Always committed: the condition always holds, so the
                // edge is unconditional.
                CommitCapability::Committed => {
                    preds[ib].insert(ia);
                }
                // The search decides the fate: gate the commit branch.
                CommitCapability::CommitPending => {
                    commit_preds[ib].insert(ia);
                }
                // Never commits: the edge is vacuous.
                CommitCapability::NeverCommitted => {}
            }
        }
    }
    (preds, commit_preds)
}

/// Kahn's algorithm over `preds` (edge `i → j` iff `preds[j]` contains
/// `i`). Returns a topological order, or the indices left on a cycle.
pub(crate) fn topo_order(preds: &[BitSet]) -> Result<Vec<usize>, Vec<usize>> {
    let n = preds.len();
    let mut indeg: Vec<usize> = preds.iter().map(BitSet::count_ones).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut topo = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        topo.push(i);
        for (j, p) in preds.iter().enumerate() {
            if p.contains(i) {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
    }
    if topo.len() == n {
        Ok(topo)
    } else {
        Err((0..n).filter(|&i| indeg[i] > 0).collect())
    }
}

/// Per-read eligibility and candidate writer ("supplier") sets.
///
/// `elig[slot]` (du mode only) holds the transactions whose `tryC`
/// invocation precedes the read's response in `H`; `suppliers[slot]` holds
/// the committable writers of the read's exact value (restricted to
/// eligible ones in du mode) — the only transactions that can ever make
/// the read legal, besides `T_0` for the initial value.
pub(crate) fn supplier_sets(spec: &Spec, du: bool) -> (Vec<BitSet>, Vec<BitSet>) {
    let n = spec.txns.len();
    let elig: Vec<BitSet> = if du {
        spec.reads
            .iter()
            .map(|r| {
                let mut s = BitSet::new(n);
                for (j, t) in spec.txns.iter().enumerate() {
                    if let Some(inv) = t.try_commit_inv {
                        if inv < r.resp_index {
                            s.insert(j);
                        }
                    }
                }
                s
            })
            .collect()
    } else {
        Vec::new()
    };

    let suppliers: Vec<BitSet> = spec
        .reads
        .iter()
        .enumerate()
        .map(|(slot, r)| {
            let mut s = BitSet::new(n);
            for (j, t) in spec.txns.iter().enumerate() {
                if j == r.txn || t.capability == CommitCapability::NeverCommitted {
                    continue;
                }
                if !t.writes.iter().any(|&(o, v)| o == r.obj && v == r.value) {
                    continue;
                }
                if du && !elig[slot].contains(j) {
                    continue;
                }
                s.insert(j);
            }
            s
        })
        .collect();

    (elig, suppliers)
}

/// Union–find over transaction indices, used to build the conflict-graph
/// components.
#[derive(Debug, Default)]
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    /// Re-initialises the structure for `n` singletons, reusing the
    /// parent buffer.
    fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n);
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins, so component roots are deterministic.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Pooled scratch for repeated planning, so a caller that extracts
/// components in a loop — the sharding coordinator replans every incoming
/// history — reuses the union-find, Kahn's-algorithm and bitset buffers
/// instead of reallocating them per call (the same discipline `search.rs`
/// applies to its undo logs).
#[derive(Debug, Default)]
pub struct PlanScratch {
    dsu: Dsu,
    /// Component slot per union-find root; `usize::MAX` = unassigned.
    slot_of_root: Vec<usize>,
    /// Kahn's-algorithm in-degrees and work queue.
    indeg: Vec<usize>,
    queue: Vec<usize>,
    /// The constraint graph with forced edges added, copied word-for-word
    /// from the base constraints into pooled bit sets.
    preds_forced: Vec<BitSet>,
    /// Spare component vectors, recycled between plans.
    spare: Vec<Vec<usize>>,
}

impl PlanScratch {
    /// Creates an empty scratch pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a plan's component vectors to the spare pool.
    fn recycle(&mut self, components: Vec<Vec<usize>>) {
        self.spare.extend(components.into_iter().map(|mut c| {
            c.clear();
            c
        }));
    }
}

/// Kahn's algorithm into pooled buffers: `None` when `preds` is acyclic,
/// otherwise the indices left on a cycle (same members, in the same
/// order, as [`topo_order`]).
fn topo_cycle(
    preds: &[BitSet],
    indeg: &mut Vec<usize>,
    queue: &mut Vec<usize>,
) -> Option<Vec<usize>> {
    let n = preds.len();
    indeg.clear();
    indeg.extend(preds.iter().map(BitSet::count_ones));
    queue.clear();
    queue.extend((0..n).filter(|&i| indeg[i] == 0));
    let mut seen = 0;
    while let Some(i) = queue.pop() {
        seen += 1;
        for (j, p) in preds.iter().enumerate() {
            if p.contains(i) {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
    }
    if seen == n {
        None
    } else {
        Some((0..n).filter(|&i| indeg[i] > 0).collect())
    }
}

impl Plan {
    /// Plans `query` over `spec` with a private scratch pool; see
    /// [`Plan::build_with`].
    pub(crate) fn build(spec: &Spec, query: &Query) -> Result<Plan, Violation> {
        Plan::build_with(spec, query, &mut PlanScratch::new())
    }

    /// Plans `query` over `spec`; fails fast with the violation when the
    /// planning analysis alone already refutes the query. All internal
    /// buffers come from (and the caller may return component vectors to)
    /// `scratch`.
    pub(crate) fn build_with(
        spec: &Spec,
        query: &Query,
        scratch: &mut PlanScratch,
    ) -> Result<Plan, Violation> {
        let n = spec.txns.len();
        let (_elig, suppliers) = supplier_sets(spec, query.deferred_update);

        // Zero candidates for a non-initial value: no serialization can
        // ever serve the read (same condition as `search::precheck`, which
        // the planner subsumes).
        for (slot, r) in spec.reads.iter().enumerate() {
            if r.value != Value::INITIAL && suppliers[slot].count_ones() == 0 {
                return Err(Violation::MissingWriter {
                    txn: spec.txns[r.txn].id,
                    obj: spec.objs[r.obj],
                    value: r.value,
                });
            }
        }

        // Singleton candidates: the sole supplier must commit before the
        // reader in every satisfying serialization, so the edge is sound
        // and complete. Initial-value reads never force — `T_0` can always
        // supply the initial value.
        let mut forced: Vec<(usize, usize)> = Vec::new();
        for (slot, r) in spec.reads.iter().enumerate() {
            if r.value == Value::INITIAL {
                continue;
            }
            if suppliers[slot].count_ones() == 1 {
                let w = suppliers[slot].iter_ones().next().expect("one element");
                forced.push((w, r.txn));
            }
        }
        forced.sort_unstable();
        forced.dedup();

        let (preds, commit_preds) = build_constraints(spec, query);
        // A cycle among the caller's own constraints is a crisp
        // ConstraintCycle, exactly like the monolithic engine reports.
        if let Some(cyc) = topo_cycle(&preds, &mut scratch.indeg, &mut scratch.queue) {
            return Err(Violation::ConstraintCycle {
                txns: cyc.into_iter().map(|i| spec.txns[i].id).collect(),
            });
        }
        // A cycle only through forced edges refutes the query without a
        // search: forced edges hold in every satisfying serialization.
        // The augmented graph lives in pooled bit sets.
        scratch.preds_forced.truncate(n);
        let copied = scratch.preds_forced.len();
        for (dst, src) in scratch.preds_forced.iter_mut().zip(&preds) {
            dst.copy_from(src);
        }
        for src in &preds[copied..] {
            scratch.preds_forced.push(src.clone());
        }
        for &(a, b) in &forced {
            scratch.preds_forced[b].insert(a);
        }
        if topo_cycle(
            &scratch.preds_forced,
            &mut scratch.indeg,
            &mut scratch.queue,
        )
        .is_some()
        {
            return Err(Violation::NoSerialization {
                criterion: query.name.to_owned(),
                explored: 0,
            });
        }

        // Conflict graph: shared objects ∪ all order edges (including
        // commit-conditional ones, which constrain the order whenever the
        // target commits).
        scratch.dsu.reset(n);
        for (j, commit_pred) in commit_preds.iter().enumerate().take(n) {
            for i in scratch.preds_forced[j].iter_ones() {
                scratch.dsu.union(i, j);
            }
            for i in commit_pred.iter_ones() {
                scratch.dsu.union(i, j);
            }
        }
        for accessors in spec.accessors_per_obj() {
            for w in accessors.windows(2) {
                scratch.dsu.union(w[0], w[1]);
            }
        }

        scratch.slot_of_root.clear();
        scratch.slot_of_root.resize(n, usize::MAX);
        let mut components: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let root = scratch.dsu.find(i);
            let slot = scratch.slot_of_root[root];
            if slot == usize::MAX {
                scratch.slot_of_root[root] = components.len();
                let mut c = scratch.spare.pop().unwrap_or_default();
                c.clear();
                c.push(i);
                components.push(c);
            } else {
                components[slot].push(i);
            }
        }

        Ok(Plan { components, forced })
    }
}

/// The criteria the sharded checker can plan, distribute
/// component-by-component, and recombine into the exact in-process
/// verdict: every criterion whose check is a single serialization query.
/// (Opacity's prefix loop and the TMS2 automaton are not serialization
/// queries; a sharded run ships those histories whole instead.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanCriterion {
    /// Final-state opacity (Definition 4).
    FinalState,
    /// Du-opacity (Definition 3).
    Du,
    /// Read-commit-order opacity (Section 4.2).
    Rco,
    /// TMS2, the Section 4.2 rendering.
    Tms2,
    /// Strict serializability of the committed projection.
    Strict,
}

impl PlanCriterion {
    /// Parses the CLI spelling (`final-state`, `du`, `rco`, `tms2`,
    /// `strict`).
    pub fn parse(token: &str) -> Option<PlanCriterion> {
        match token {
            "final-state" => Some(PlanCriterion::FinalState),
            "du" => Some(PlanCriterion::Du),
            "rco" => Some(PlanCriterion::Rco),
            "tms2" => Some(PlanCriterion::Tms2),
            "strict" => Some(PlanCriterion::Strict),
            _ => None,
        }
    }

    /// The CLI spelling, inverse of [`PlanCriterion::parse`].
    pub fn token(self) -> &'static str {
        match self {
            PlanCriterion::FinalState => "final-state",
            PlanCriterion::Du => "du",
            PlanCriterion::Rco => "rco",
            PlanCriterion::Tms2 => "tms2",
            PlanCriterion::Strict => "strict",
        }
    }

    /// The human-readable criterion name used in verdicts.
    pub fn display_name(self) -> &'static str {
        match self {
            PlanCriterion::FinalState => "final-state opacity",
            PlanCriterion::Du => "du-opacity",
            PlanCriterion::Rco => "read-commit-order opacity",
            PlanCriterion::Tms2 => "TMS2",
            PlanCriterion::Strict => "strict serializability",
        }
    }

    fn lint_scope(self) -> crate::lint::LintScope {
        match self {
            PlanCriterion::FinalState | PlanCriterion::Strict => crate::lint::LintScope::Plain,
            PlanCriterion::Du => crate::lint::LintScope::Du,
            PlanCriterion::Rco => crate::lint::LintScope::Rco,
            PlanCriterion::Tms2 => crate::lint::LintScope::Tms2,
        }
    }

    /// The history the criterion's serialization query actually runs over:
    /// `Some` committed projection for strict serializability (mirroring
    /// [`crate::StrictSerializability`]), `None` — the input itself — for
    /// every other criterion. Idempotent, so re-preparing a shipped
    /// sub-history on the worker side is harmless.
    pub fn prepare(self, h: &History) -> Option<History> {
        match self {
            PlanCriterion::Strict => {
                let committed: Vec<TxnId> = h
                    .txns()
                    .filter(|t| t.commit_capability() != CommitCapability::NeverCommitted)
                    .map(|t| t.id())
                    .collect();
                Some(h.filter_txns(|id| committed.contains(&id)))
            }
            _ => None,
        }
    }

    /// Builds the serialization query over an already-[`prepare`]d
    /// history.
    ///
    /// [`prepare`]: PlanCriterion::prepare
    pub(crate) fn query(self, h: &History) -> Query {
        match self {
            PlanCriterion::FinalState => Query {
                name: "final-state opacity",
                deferred_update: false,
                extra_edges: Vec::new(),
                commit_edges: Vec::new(),
                lint_scope: crate::lint::LintScope::Plain,
            },
            PlanCriterion::Du => Query {
                name: "du-opacity",
                deferred_update: true,
                extra_edges: Vec::new(),
                commit_edges: Vec::new(),
                lint_scope: crate::lint::LintScope::Du,
            },
            PlanCriterion::Rco => Query {
                name: "read-commit-order opacity",
                deferred_update: false,
                extra_edges: Vec::new(),
                commit_edges: crate::criteria::rco_edges(h),
                lint_scope: crate::lint::LintScope::Rco,
            },
            PlanCriterion::Tms2 => Query {
                name: "TMS2",
                deferred_update: false,
                extra_edges: crate::criteria::tms2_edges(h),
                commit_edges: Vec::new(),
                lint_scope: crate::lint::LintScope::Tms2,
            },
            PlanCriterion::Strict => Query {
                name: "strict serializability",
                deferred_update: false,
                extra_edges: Vec::new(),
                commit_edges: Vec::new(),
                lint_scope: crate::lint::LintScope::Plain,
            },
        }
    }
}

/// Outcome of standalone component extraction ([`plan_components`]).
#[derive(Clone, Debug)]
pub enum PlanOutcome {
    /// Planning alone decided the query — spec prechecks or the planner's
    /// fast paths refuted it without a search (internal-read
    /// inconsistency, missing writer, constraint cycle, forced-edge
    /// cycle). The verdict is exactly what the in-process search path
    /// returns.
    Decided(Verdict),
    /// The conflict-graph components, each a list of transaction ids
    /// sorted by spec index, in deterministic smallest-member order. A
    /// serialization of the whole history exists iff each component has
    /// one, and per-component witnesses compose by concatenation in this
    /// order.
    Components(Vec<Vec<TxnId>>),
}

/// Extracts the conflict-graph components of `criterion`'s query over `h`
/// as a standalone unit the sharding coordinator can ship: each component
/// (a set of transaction ids) can be checked in isolation — restricted via
/// [`History::filter_txns`] — and the verdicts recombined exactly.
///
/// `h` must already be [`PlanCriterion::prepare`]d. Repeated calls reuse
/// `scratch`, keeping extraction allocation-free apart from the returned
/// id lists.
pub fn plan_components(
    h: &History,
    criterion: PlanCriterion,
    scratch: &mut PlanScratch,
) -> PlanOutcome {
    let spec = match Spec::build(h) {
        Ok(s) => s,
        Err(v) => return PlanOutcome::Decided(Verdict::Violated(v)),
    };
    let query = criterion.query(h);
    let plan = match Plan::build_with(&spec, &query, scratch) {
        Ok(p) => p,
        Err(v) => return PlanOutcome::Decided(Verdict::Violated(v)),
    };
    let comps = plan
        .components
        .iter()
        .map(|c| c.iter().map(|&i| spec.txns[i].id).collect())
        .collect();
    scratch.recycle(plan.components);
    PlanOutcome::Components(comps)
}

/// Runs the lint prefilter for `criterion` over an already-prepared
/// history, exactly as the in-process search path does when
/// [`SearchConfig::prelint`] is on. `Some` is the refuting verdict.
pub fn prelint_verdict(h: &History, criterion: PlanCriterion) -> Option<Verdict> {
    crate::lint::prelint(h, criterion.lint_scope(), criterion.display_name()).map(Verdict::Violated)
}

/// Applies the verdict-degradation ladder to an undecided sharded check,
/// exactly as the in-process path does when [`SearchConfig::ladder`] is
/// on: sound polynomial fallbacks may still decide the query, otherwise
/// the `Unknown` comes back annotated with the tiers that ran.
pub fn ladder_verdict(
    h: &History,
    criterion: PlanCriterion,
    cfg: &SearchConfig,
    explored: u64,
    reason: crate::UnknownReason,
    partial: Option<crate::PartialProgress>,
) -> Verdict {
    let prepared = criterion.prepare(h);
    let hh = prepared.as_ref().unwrap_or(h);
    crate::search::ladder_fallback(hh, &criterion.query(hh), cfg, explored, reason, partial)
}

/// Checks `h` against `criterion` through the full in-process search path
/// (prepare → prelint → plan → search per `cfg`), additionally returning
/// the explored-state counter — what a shard worker reports so the
/// coordinator can reconstruct the sequential engine's cumulative counts.
pub fn check_criterion_with_stats(
    h: &History,
    criterion: PlanCriterion,
    cfg: &SearchConfig,
) -> (Verdict, u64) {
    let prepared = criterion.prepare(h);
    let hh = prepared.as_ref().unwrap_or(h);
    let (verdict, stats) =
        crate::search::search_serialization_with_stats(hh, &criterion.query(hh), cfg);
    (verdict, stats.explored)
}

/// Serializations of previously decided components, for the online
/// monitor: keyed by the component's member ids, holding the placement
/// order with chosen commit fates.
///
/// Entries are validated by *replay* against the current spec before
/// reuse (every placement re-checked for legality), so a stale entry can
/// never produce a wrong answer — at worst it fails to replay and the
/// component is searched afresh.
#[derive(Debug, Default)]
pub(crate) struct ComponentCache {
    /// Fragments from the previous generation, consulted on lookup.
    prev: HashMap<Vec<TxnId>, Vec<(TxnId, bool)>>,
    /// Fragments of the current generation (searched or replayed).
    cur: HashMap<Vec<TxnId>, Vec<(TxnId, bool)>>,
    /// Components certified by replaying a cached fragment.
    pub(crate) reuses: u64,
}

impl ComponentCache {
    /// Starts a new generation: current fragments become the lookup set,
    /// so entries for components that no longer exist age out.
    pub(crate) fn begin_generation(&mut self) {
        self.prev = std::mem::take(&mut self.cur);
    }

    fn lookup(&self, members: &[TxnId]) -> Option<&[(TxnId, bool)]> {
        self.prev.get(members).map(Vec::as_slice)
    }

    fn store(&mut self, members: Vec<TxnId>, fragment: Vec<(TxnId, bool)>) {
        self.cur.insert(members, fragment);
    }

    /// Exports the current generation's fragments, sorted by member ids
    /// for deterministic checkpoints.
    pub(crate) fn export_fragments(&self) -> Vec<crate::snapshot::RawFragment> {
        let mut out: Vec<_> = self
            .cur
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort();
        out
    }

    /// Preloads fragments (e.g. from a checkpoint) into the *current*
    /// generation, so the [`Self::begin_generation`] call that precedes
    /// every cached search promotes them into the lookup set. Preloaded
    /// entries go through the same replay validation as any other cached
    /// fragment, so a corrupt or stale fragment costs a failed replay —
    /// never a wrong answer.
    pub(crate) fn preload(
        &mut self,
        fragments: impl IntoIterator<Item = (Vec<TxnId>, Vec<(TxnId, bool)>)>,
    ) {
        for (members, frag) in fragments {
            self.cur.insert(members, frag);
        }
    }
}

/// Attempts to replay a cached fragment through the searcher's own
/// placement rules (predecessor, legality, fate and commit-gate checks).
/// On success the fragment's transactions are left placed and the replay
/// certifies the component; on failure the searcher is restored.
fn try_replay(s: &mut Searcher<'_>, spec: &Spec, fragment: &[(TxnId, bool)]) -> bool {
    let mut placed: Vec<(usize, crate::search::UndoLog)> = Vec::with_capacity(fragment.len());
    for &(id, committed) in fragment {
        let ok = spec
            .index
            .get(&id)
            .is_some_and(|&i| s.can_place(i, committed));
        let Some(&i) = spec.index.get(&id) else {
            break;
        };
        if !ok {
            break;
        }
        let undo = s.place(i, committed);
        placed.push((i, undo));
    }
    if placed.len() == fragment.len() {
        return true;
    }
    for (i, undo) in placed.into_iter().rev() {
        s.unplace(i, undo);
    }
    false
}

/// The planned search: decompose, then decide per component, composing
/// per-component serializations into the global witness.
pub(crate) fn planned_search(
    spec: &Spec,
    query: &Query,
    cfg: &SearchConfig,
    cache: Option<&mut ComponentCache>,
) -> (Verdict, SearchStats) {
    let plan = match Plan::build(spec, query) {
        Ok(p) => p,
        Err(v) => return (Verdict::Violated(v), SearchStats::default()),
    };
    if cfg.effective_threads() > 1 {
        if plan.components.len() > 1 {
            return crate::parallel::par_search_components(spec, query, cfg, &plan);
        }
        return crate::parallel::par_search_spec(spec, query, cfg, &plan.forced);
    }
    seq_planned(spec, query, cfg, &plan, cache)
}

fn seq_planned(
    spec: &Spec,
    query: &Query,
    cfg: &SearchConfig,
    plan: &Plan,
    mut cache: Option<&mut ComponentCache>,
) -> (Verdict, SearchStats) {
    let mut s = match Searcher::new(spec, cfg, query, &plan.forced) {
        Ok(s) => s,
        Err(v) => return (Verdict::Violated(v), SearchStats::default()),
    };
    // One searcher serializes every component in turn without unwinding:
    // components are independent, so searching component k with components
    // 1..k already placed explores exactly the tree a fresh per-component
    // searcher would (their objects and constraints are disjoint), and the
    // accumulated path *is* the composed serialization. The state budget
    // and the explored counter are naturally global this way.
    let total = plan.components.len() as u64;
    let mut decided: u64 = 0;
    for comp in &plan.components {
        // The in-search deadline sampling only runs while expanding; a
        // between-components check keeps many-small-component specs
        // responsive too. The interrupt flag shares the slot.
        if s.deadline_expired() {
            let stats = s.stats();
            return (
                Verdict::Unknown {
                    explored: stats.explored,
                    reason: crate::UnknownReason::Deadline,
                    partial: Some(crate::PartialProgress::components(decided, total)),
                },
                stats,
            );
        }
        if cfg.interruptible && crate::snapshot::interrupt_requested() {
            let stats = s.stats();
            return (
                Verdict::Unknown {
                    explored: stats.explored,
                    reason: crate::UnknownReason::Interrupted,
                    partial: Some(crate::PartialProgress::components(decided, total)),
                },
                stats,
            );
        }
        s.restrict(comp);
        let path_start = s.path_len();
        let mut replayed = false;
        if let Some(c) = cache.as_deref_mut() {
            let members: Vec<TxnId> = comp.iter().map(|&i| spec.txns[i].id).collect();
            if let Some(frag) = c.lookup(&members) {
                let frag = frag.to_vec();
                if frag.len() == comp.len() && try_replay(&mut s, spec, &frag) {
                    c.reuses += 1;
                    c.store(members, frag);
                    replayed = true;
                }
            }
        }
        if replayed {
            decided += 1;
            if let Some(c) = cache.as_deref_mut() {
                crate::snapshot::notify_component_progress(c, s.stats().explored);
            }
            continue;
        }
        let outcome = s.dfs();
        match outcome {
            Outcome::Found => {
                decided += 1;
                if let Some(c) = cache.as_deref_mut() {
                    let members: Vec<TxnId> = comp.iter().map(|&i| spec.txns[i].id).collect();
                    let frag: Vec<(TxnId, bool)> = s
                        .path_slice(path_start)
                        .iter()
                        .map(|&(i, f)| (spec.txns[i].id, f))
                        .collect();
                    c.store(members, frag);
                    crate::snapshot::notify_component_progress(c, s.stats().explored);
                }
            }
            Outcome::Exhausted => {
                let stats = s.stats();
                let verdict = Verdict::Violated(Violation::NoSerialization {
                    criterion: query.name.to_owned(),
                    explored: stats.explored,
                });
                return (verdict, stats);
            }
            Outcome::Budget => {
                let stats = s.stats();
                let reason = s.unknown_reason();
                return (
                    Verdict::Unknown {
                        explored: stats.explored,
                        reason,
                        partial: Some(crate::PartialProgress::components(decided, total)),
                    },
                    stats,
                );
            }
            Outcome::Cancelled => unreachable!("sequential search cannot be cancelled"),
        }
    }
    let stats = s.stats();
    let verdict = Verdict::Satisfied(witness_from_path(spec, s.path_slice(0)));
    (verdict, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::{HistoryBuilder, ObjId, TxnId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    fn du_query() -> Query {
        Query {
            name: "du-opacity",
            deferred_update: true,
            extra_edges: Vec::new(),
            commit_edges: Vec::new(),
            lint_scope: crate::lint::LintScope::Du,
        }
    }

    /// Two independent clusters on distinct objects, fully concurrent.
    fn two_cluster_history() -> duop_history::History {
        let (x, y) = (ObjId::new(0), ObjId::new(1));
        HistoryBuilder::new()
            .inv_write(t(1), x, v(1))
            .inv_write(t(3), y, v(7))
            .resp_ok(t(1))
            .resp_ok(t(3))
            .inv_try_commit(t(1))
            .inv_try_commit(t(3))
            .read(t(2), x, v(1))
            .read(t(4), y, v(7))
            .commit(t(2))
            .commit(t(4))
            .build()
    }

    #[test]
    fn splits_independent_clusters() {
        let h = two_cluster_history();
        let spec = Spec::build(&h).unwrap();
        let plan = Plan::build(&spec, &du_query()).unwrap();
        assert_eq!(plan.components.len(), 2, "plan: {plan:?}");
        let sizes: Vec<usize> = plan.components.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![2, 2]);
        // Components are disjoint and cover every transaction.
        let mut all: Vec<usize> = plan.components.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn real_time_order_merges_components() {
        let (x, y) = (ObjId::new(0), ObjId::new(1));
        // T2 starts only after T1 finished: distinct objects, but the
        // real-time edge keeps them in one component.
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x, v(1))
            .committed_writer(t(2), y, v(2))
            .build();
        let spec = Spec::build(&h).unwrap();
        let plan = Plan::build(&spec, &du_query()).unwrap();
        assert_eq!(plan.components.len(), 1);
    }

    #[test]
    fn singleton_supplier_forces_edge() {
        let x = ObjId::new(0);
        let h = HistoryBuilder::new()
            .inv_write(t(1), x, v(1))
            .inv_read(t(2), x)
            .resp_ok(t(1))
            .inv_try_commit(t(1))
            .resp_value(t(2), v(1))
            .commit(t(2))
            .build();
        let spec = Spec::build(&h).unwrap();
        let plan = Plan::build(&spec, &du_query()).unwrap();
        let i1 = spec.index[&t(1)];
        let i2 = spec.index[&t(2)];
        assert!(
            plan.forced.contains(&(i1, i2)),
            "expected forced edge ({i1}, {i2}) in {:?}",
            plan.forced
        );
    }

    #[test]
    fn zero_candidates_is_immediate_missing_writer() {
        let x = ObjId::new(0);
        let h = HistoryBuilder::new()
            .committed_reader(t(1), x, v(9))
            .build();
        let spec = Spec::build(&h).unwrap();
        let err = Plan::build(&spec, &du_query()).unwrap_err();
        assert!(matches!(err, Violation::MissingWriter { .. }));
    }

    #[test]
    fn forced_cycle_refutes_without_search() {
        let x = ObjId::new(0);
        // T1 and T2 each read the *other's* write while both tryCs are
        // invoked after both reads responded: both forced edges point
        // backwards across the pair, a cycle.
        let h = HistoryBuilder::new()
            .inv_write(t(1), x, v(1))
            .inv_write(t(2), x, v(2))
            .resp_ok(t(1))
            .resp_ok(t(2))
            .inv_try_commit(t(1))
            .inv_try_commit(t(2))
            .read(t(3), x, v(1))
            .read(t(4), x, v(2))
            .commit(t(3))
            .commit(t(4))
            .build();
        let spec = Spec::build(&h).unwrap();
        // Forced edges exist but no cycle here (two readers, two writers is
        // satisfiable); build a real cycle via extra edges instead.
        let plan = Plan::build(&spec, &du_query()).unwrap();
        assert!(plan.forced.len() >= 2);
        // A user-level cycle is still a ConstraintCycle.
        let q = Query {
            name: "test",
            deferred_update: false,
            extra_edges: vec![(t(1), t(2)), (t(2), t(1))],
            commit_edges: Vec::new(),
            lint_scope: crate::lint::LintScope::Plain,
        };
        let err = Plan::build(&spec, &q).unwrap_err();
        assert!(matches!(err, Violation::ConstraintCycle { .. }));
    }

    #[test]
    fn topo_order_detects_cycles() {
        let mut a = BitSet::new(3);
        let mut b = BitSet::new(3);
        let c = BitSet::new(3);
        a.insert(1); // 1 → 0
        b.insert(0); // 0 → 1
        assert!(topo_order(&[a, b, c]).is_err());

        let mut p0 = BitSet::new(2);
        p0.insert(1); // 1 → 0
        let order = topo_order(&[p0, BitSet::new(2)]).unwrap();
        assert_eq!(order.len(), 2);
        let pos0 = order.iter().position(|&i| i == 0).unwrap();
        let pos1 = order.iter().position(|&i| i == 1).unwrap();
        assert!(pos1 < pos0);
    }
}
