//! # Paper-to-code map
//!
//! Where each definition, lemma and theorem of *Safety of Deferred Update
//! in Transactional Memory* (Attiya, Hans, Kuznetsov, Ravi; ICDCS 2013)
//! lives in this workspace. This module contains no code — it is the
//! reading guide.
//!
//! ## Section 2 — Model
//!
//! | Paper | Code |
//! |---|---|
//! | t-operations `read/write/tryC/tryA` and responses | [`duop_history::Op`], [`duop_history::Ret`] |
//! | histories, well-formedness | [`duop_history::History`], [`duop_history::MalformedHistoryError`] |
//! | `H\|k`, read/write sets, (t-)completeness | [`duop_history::TxnView`] |
//! | real-time order `≺RT`, overlap | [`duop_history::History::precedes_rt`], [`overlaps`](duop_history::History::overlaps) |
//! | the imaginary `T_0` and initial values | [`duop_history::TxnId::INITIAL`], [`duop_history::Value::INITIAL`] |
//! | latest written value, legality | [`duop_history::History::check_legal`] |
//! | Definition 1 (safety property) | prefix/limit closure exercised by [`crate::lemmas`] + experiments E2/E8/E9 |
//!
//! ## Section 3 — DU-opacity
//!
//! | Paper | Code |
//! |---|---|
//! | Definition 2 (completions) | [`duop_history::History::complete_with`], [`completions`](duop_history::History::completions), [`is_completion_of`](duop_history::History::is_completion_of) |
//! | Definition 3 (du-opacity, local serializations `S^{k,X}_H`) | [`crate::DuOpacity`]; the literal validator is [`crate::check_witness`] with [`crate::CriterionKind::DuOpacity`] |
//! | Figure 1 | `duop_experiments::figures::fig1` (experiment E1) |
//! | Lemma 1 (witness restriction) | [`crate::lemmas::restrict_witness`] |
//! | Corollary 2 (prefix closure) | property tests + experiment E8 |
//! | Proposition 1 / Figure 2 (not limit-closed) | `duop_experiments::figures::fig2_prefix` (E2) |
//! | live sets, `≺LS` | [`duop_history::History::live_set`], [`precedes_ls`](duop_history::History::precedes_ls) |
//! | Lemma 4 (live-set reorder) | [`crate::lemmas::live_set_reorder`] |
//! | Theorem 5 (limit closure under completeness) | E2 + E9 (the finite-prefix machinery of the paper's own proof) |
//!
//! ## Section 4 — Comparison with other definitions
//!
//! | Paper | Code |
//! |---|---|
//! | Definition 4 (final-state opacity) | [`crate::FinalStateOpacity`] |
//! | Figure 3 (FSO not prefix-closed) | `duop_experiments::figures::fig3` (E3) |
//! | Definition 5 (opacity) | [`crate::Opacity`] |
//! | Proposition 2 / Figure 4 / Theorem 10 (DU ⊊ Opacity) | `duop_experiments::figures::fig4` (E4) |
//! | Theorem 11 (unique writes) | [`crate::unique`] (E7) |
//! | read-commit-order definition of \[6\] | [`crate::ReadCommitOrderOpacity`]; Figure 5 → `figures::fig5` (E5) |
//! | TMS2, informal rendering | [`crate::Tms2`]; Figure 6 → `figures::fig6` (E6) |
//! | TMS2 conjecture | [`crate::tms2_automaton`] — the full automaton (E11), plus the rendering-gap finding (`figures::tms2_rendering_gap`) |
//!
//! ## Section 5 — Discussion
//!
//! | Paper | Code |
//! |---|---|
//! | "captures histories of existing opaque TMs" (NOrec, TL2, DSTM) | `duop_stm::engines::{NoRec, Tl2, Dstm}` + experiment E10/E12; sharpened by the ABA finding |
//! | pessimistic STM \[1\] not du-opaque | `duop_stm::engines::Pessimistic` (E12) |
//!
//! Everything not traceable to the paper is infrastructure: the search
//! engine ([`crate::SearchConfig`]), the online monitor
//! ([`crate::online`]), counterexample localization ([`crate::minimize`]),
//! DOT export ([`crate::graph`]), the brute-force oracle
//! ([`crate::reference`]) and the generators/engines in the sibling
//! crates.
