//! Checkers for du-opacity and related transactional-memory correctness
//! criteria.
//!
//! This crate is the executable core of *Safety of Deferred Update in
//! Transactional Memory* (Attiya, Hans, Kuznetsov, Ravi; ICDCS 2013). It
//! decides, for a finite [`History`](duop_history::History), membership in:
//!
//! * **du-opacity** (Definition 3) — [`DuOpacity`], the paper's
//!   contribution;
//! * **final-state opacity** (Definition 4) — [`FinalStateOpacity`];
//! * **opacity** (Definition 5) — [`Opacity`];
//! * **read-commit-order opacity** (Section 4.2) —
//!   [`ReadCommitOrderOpacity`];
//! * **TMS2** (Section 4.2 rendering) — [`Tms2`];
//! * **strict serializability** (baseline) — [`StrictSerializability`].
//!
//! Positive verdicts carry a [`Witness`] that the independent validator
//! [`check_witness`] re-verifies against the literal definitions. The
//! paper's constructive lemmas are implemented in [`lemmas`]:
//! [`lemmas::restrict_witness`] (Lemma 1) and
//! [`lemmas::live_set_reorder`] (Lemma 4). The [`unique`] module provides
//! the Theorem 11 fast path for unique-write histories, and [`online`] an
//! incremental per-event monitor. [`mod@reference`] contains a brute-force
//! enumeration checker used as a differential-testing oracle.
//!
//! Membership is NP-hard in general; before any backtracking a **search
//! planner** decomposes each query along the transaction conflict graph
//! and turns candidate-writer analysis into forced precedence edges (see
//! `DESIGN.md`; disable with [`SearchConfig::decompose`] or the global
//! [`set_default_decompose`] ablation switch). The search engine itself
//! uses sound state memoization (hash-compacted 128-bit keys), fail-first
//! child ordering and prechecks that decide realistic histories (including
//! multi-thread STM traces) quickly, and accepts an optional state budget
//! returning [`Verdict::Unknown`] when exceeded. The [`parallel`] module
//! adds component- and subtree-parallel search engines (enabled by
//! [`SearchConfig::threads`]) and [`par_check_batch`], an order-preserving
//! fan-out of independent checks over a worker pool. Before the planner
//! even runs, the [`lint`] pipeline — a registry of polynomial
//! static-analysis rules with structured diagnostics — refutes most
//! violating histories outright (disable with [`SearchConfig::prelint`]
//! or [`set_default_prelint`]).
//!
//! # Example
//!
//! ```
//! use duop_core::{check_witness, Criterion, CriterionKind, DuOpacity};
//! use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
//!
//! let (t1, t2) = (TxnId::new(1), TxnId::new(2));
//! let x = ObjId::new(0);
//! let h = HistoryBuilder::new()
//!     .committed_writer(t1, x, Value::new(1))
//!     .committed_reader(t2, x, Value::new(1))
//!     .build();
//!
//! let verdict = DuOpacity::new().check(&h);
//! let witness = verdict.witness().expect("du-opaque");
//! assert!(check_witness(&h, witness, CriterionKind::DuOpacity).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod bitset;
mod criteria;
mod json;
mod plan;
mod search;
mod spec;
mod verdict;
mod witness_check;

pub mod certificate;
pub mod saturate;

pub mod fxhash;
pub mod graph;
pub mod lemmas;
pub mod lint;
pub mod minimize;
pub mod online;
pub mod paper;
pub mod parallel;
pub mod reference;
pub mod snapshot;
pub mod tms2_automaton;
pub mod unique;

pub use certificate::{check_certificate, Certificate, CertificateError};
pub use criteria::{
    evaluate_all, Criterion, CriterionKind, DuOpacity, FinalStateOpacity, Opacity,
    ReadCommitOrderOpacity, StrictSerializability, Tms2,
};
pub use parallel::{available_threads, par_check_batch, par_map};
pub use plan::{
    check_criterion_with_stats, ladder_verdict, plan_components, prelint_verdict, PlanCriterion,
    PlanOutcome, PlanScratch,
};
pub use saturate::{saturate, saturate_verdict, SaturationOutcome};
pub use search::{
    set_default_deadline, set_default_decompose, set_default_ladder, set_default_prelint,
    set_default_saturate, Budget, SearchConfig, SearchStats,
};
pub use verdict::{PartialProgress, UnknownReason, Verdict, Violation, Witness};
pub use witness_check::{check_witness, WitnessError};
