//! Preprocessing of a history into the indexed form the serialization
//! search consumes.

use crate::bitset::BitSet;
use crate::Violation;
use duop_history::{CommitCapability, History, ObjId, Op, Ret, TxnId, Value};
use std::collections::HashMap;

/// One external read: a complete `read_k(X) → v` with no preceding write to
/// `X` by the same transaction. Its legality depends on the serialization.
#[derive(Clone, Debug)]
pub(crate) struct ExternalRead {
    /// Index of the reading transaction in [`Spec::txns`].
    pub txn: usize,
    /// Interned object index.
    pub obj: usize,
    /// The value returned.
    pub value: Value,
    /// Index in the history of the read's response event (for the
    /// `H^{k,X}` prefix of Definition 3).
    pub resp_index: usize,
}

/// Preprocessed view of one transaction.
#[derive(Clone, Debug)]
pub(crate) struct TxnInfo {
    pub id: TxnId,
    pub capability: CommitCapability,
    /// Final value written per interned object (last write wins), for
    /// applying the transaction's effects when it commits.
    pub writes: Vec<(usize, Value)>,
    /// Index in the history of the `tryC_k()` invocation, if any.
    pub try_commit_inv: Option<usize>,
    /// Slots into [`Spec::reads`] for this transaction's external reads.
    pub external_reads: Vec<usize>,
    /// Ordering heuristic: position at which this transaction "took
    /// effect" (commit response, else last event).
    pub priority: usize,
}

/// Indexed form of a history.
#[derive(Clone, Debug)]
pub(crate) struct Spec {
    pub txns: Vec<TxnInfo>,
    pub reads: Vec<ExternalRead>,
    /// Interned object table.
    pub objs: Vec<ObjId>,
    /// Map from transaction id to index in `txns`.
    pub index: HashMap<TxnId, usize>,
    /// Real-time predecessors of each transaction, as index bit sets.
    pub rt_preds: Vec<BitSet>,
    /// Read slots per interned object.
    pub reads_on_obj: Vec<Vec<usize>>,
}

impl Spec {
    /// Builds the spec, performing the *internal read consistency*
    /// precheck: a read that follows the transaction's own write to the
    /// same object must return the latest such write in every equivalent
    /// sequential history, so a mismatch dooms every serialization.
    pub(crate) fn build(h: &History) -> Result<Spec, Violation> {
        let mut objs: Vec<ObjId> = Vec::new();
        let mut obj_index: HashMap<ObjId, usize> = HashMap::new();
        let intern = |x: ObjId, objs: &mut Vec<ObjId>, obj_index: &mut HashMap<ObjId, usize>| {
            *obj_index.entry(x).or_insert_with(|| {
                objs.push(x);
                objs.len() - 1
            })
        };

        let n = h.txn_count();
        let mut txns = Vec::with_capacity(n);
        let mut reads = Vec::new();
        let mut index = HashMap::with_capacity(n);

        for (i, t) in h.txns().enumerate() {
            index.insert(t.id(), i);
            let mut own: HashMap<ObjId, Value> = HashMap::new();
            let mut external = Vec::new();
            for op in t.ops() {
                match (op.op, op.resp) {
                    (Op::Read(x), Some(Ret::Value(got))) => {
                        if let Some(&expected) = own.get(&x) {
                            if got != expected {
                                return Err(Violation::InternalReadInconsistency {
                                    txn: t.id(),
                                    obj: x,
                                    got,
                                    expected,
                                });
                            }
                            // Own-write read: resolved, never consulted again.
                        } else {
                            let slot = reads.len();
                            reads.push(ExternalRead {
                                txn: i,
                                obj: intern(x, &mut objs, &mut obj_index),
                                value: got,
                                resp_index: op.resp_index.expect("complete read has response"),
                            });
                            external.push(slot);
                        }
                    }
                    (Op::Write(x, v), Some(Ret::Ok)) => {
                        own.insert(x, v);
                    }
                    _ => {}
                }
            }
            let writes: Vec<(usize, Value)> = {
                let mut ws: Vec<(usize, Value)> = own
                    .iter()
                    .map(|(x, v)| (intern(*x, &mut objs, &mut obj_index), *v))
                    .collect();
                ws.sort_unstable_by_key(|(o, _)| *o);
                ws
            };
            let priority = t
                .ops()
                .iter()
                .find(|o| o.op.is_try_commit())
                .and_then(|o| o.resp_index.or(Some(o.inv_index)))
                .unwrap_or_else(|| t.last_event_index());
            txns.push(TxnInfo {
                id: t.id(),
                capability: t.commit_capability(),
                writes,
                try_commit_inv: h.try_commit_inv_index(t.id()),
                external_reads: external,
                priority,
            });
        }

        let mut rt_preds: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        let ids: Vec<TxnId> = h.txn_ids().collect();
        for (i, &a) in ids.iter().enumerate() {
            for (j, &b) in ids.iter().enumerate() {
                if i != j && h.precedes_rt(a, b) {
                    rt_preds[j].insert(i);
                }
            }
        }

        let mut reads_on_obj: Vec<Vec<usize>> = vec![Vec::new(); objs.len()];
        for (slot, r) in reads.iter().enumerate() {
            reads_on_obj[r.obj].push(slot);
        }

        Ok(Spec {
            txns,
            reads,
            objs,
            index,
            rt_preds,
            reads_on_obj,
        })
    }

    /// Transaction indices accessing each interned object (writers and
    /// external readers), sorted and deduplicated. These are the
    /// shared-object edges of the search planner's conflict graph.
    pub(crate) fn accessors_per_obj(&self) -> Vec<Vec<usize>> {
        let mut acc: Vec<Vec<usize>> = vec![Vec::new(); self.objs.len()];
        for (i, t) in self.txns.iter().enumerate() {
            for &(o, _) in &t.writes {
                acc[o].push(i);
            }
        }
        for r in &self.reads {
            acc[r.obj].push(r.txn);
        }
        for a in &mut acc {
            a.sort_unstable();
            a.dedup();
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::HistoryBuilder;

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn external_and_internal_reads_are_separated() {
        let h = HistoryBuilder::new()
            .read(t(1), x(), v(0))
            .write(t(1), x(), v(3))
            .read(t(1), ObjId::new(1), v(0))
            .commit(t(1))
            .build();
        let spec = Spec::build(&h).unwrap();
        assert_eq!(spec.reads.len(), 2);
        assert_eq!(spec.txns[0].external_reads.len(), 2);
        assert_eq!(spec.txns[0].writes.len(), 1);
    }

    #[test]
    fn own_write_read_is_resolved_not_external() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(3))
            .read(t(1), x(), v(3))
            .commit(t(1))
            .build();
        let spec = Spec::build(&h).unwrap();
        assert!(spec.reads.is_empty());
    }

    #[test]
    fn internal_inconsistency_detected() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(3))
            .read(t(1), x(), v(4))
            .commit(t(1))
            .build();
        let err = Spec::build(&h).unwrap_err();
        assert_eq!(
            err,
            Violation::InternalReadInconsistency {
                txn: t(1),
                obj: x(),
                got: v(4),
                expected: v(3),
            }
        );
    }

    #[test]
    fn last_write_wins() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .write(t(1), x(), v(2))
            .commit(t(1))
            .build();
        let spec = Spec::build(&h).unwrap();
        assert_eq!(spec.txns[0].writes, vec![(0, v(2))]);
    }

    #[test]
    fn rt_preds_follow_real_time_order() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(2))
            .build();
        let spec = Spec::build(&h).unwrap();
        let i1 = spec.index[&t(1)];
        let i2 = spec.index[&t(2)];
        assert!(spec.rt_preds[i2].contains(i1));
        assert!(!spec.rt_preds[i1].contains(i2));
    }

    #[test]
    fn reads_on_obj_groups_slots() {
        let y = ObjId::new(1);
        let h = HistoryBuilder::new()
            .read(t(1), x(), v(0))
            .read(t(1), y, v(0))
            .commit(t(1))
            .read(t(2), x(), v(0))
            .commit(t(2))
            .build();
        let spec = Spec::build(&h).unwrap();
        let xi = spec.objs.iter().position(|o| *o == x()).unwrap();
        assert_eq!(spec.reads_on_obj[xi].len(), 2);
    }

    #[test]
    fn priority_prefers_commit_position() {
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_value(t(2), v(0))
            .resp_ok(t(1))
            .commit(t(1))
            .build();
        let spec = Spec::build(&h).unwrap();
        let i1 = spec.index[&t(1)];
        let i2 = spec.index[&t(2)];
        // T1's commit response is the last event; T2 finished earlier.
        assert!(spec.txns[i2].priority < spec.txns[i1].priority);
    }
}
