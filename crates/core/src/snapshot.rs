//! Durable checkpoint/resume for anytime checking.
//!
//! A long-running check or monitor should never lose its work to a crash,
//! a SIGTERM, or an exhausted budget. This module provides the pieces:
//!
//! * a **versioned, integrity-hashed snapshot format** ([`Snapshot`],
//!   [`save`], [`load`]) — hand-written JSON like everything else in the
//!   workspace, written atomically (temp file + rename) so a kill during
//!   a flush can never leave a half-written checkpoint behind;
//! * a **process-wide interrupt flag** ([`request_interrupt`]) that a
//!   signal handler can set from SIGINT/SIGTERM; interruptible searches
//!   poll it in their deadline-sampling slot and stop cooperatively with
//!   [`UnknownReason::Interrupted`](crate::UnknownReason) so the caller
//!   can flush a final checkpoint;
//! * a **per-thread checkpoint sink** ([`install_checkpoint_sink`]) the
//!   planned search notifies as components are decided, so checkpoints
//!   land *during* a check, not only after it;
//! * an anytime check driver ([`ResumableCheck`]) that runs the same
//!   query as the criterion structs but through a persistent component
//!   cache, so decided fragments survive budget exhaustion (for
//!   checkpointing) and seed the next attempt (for `duop resume` and
//!   `--retry`/`--escalate`).
//!
//! Soundness is inherited, never assumed: resumed fragments are *replayed*
//! through the searcher's own placement rules before reuse, and a resumed
//! monitor revalidates its checkpointed witness. A corrupt-but-well-hashed
//! snapshot therefore costs wasted replay time, never a wrong verdict —
//! and an actually corrupted file is rejected by the integrity hash first.

use crate::online::OnlineStats;
use crate::plan::ComponentCache;
use crate::search::{decide_spec, Query, SearchConfig, SearchStats};
use crate::spec::Spec;
use crate::{Verdict, Witness};
use duop_history::{Event, History, TxnId};
use serde::{Content, DeError, Deserialize as _};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Format version of the snapshot file; [`load`] rejects anything else.
pub const SNAPSHOT_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Interrupt flag
// ---------------------------------------------------------------------------

/// Process-wide cooperative interrupt flag, set by the CLI's
/// SIGINT/SIGTERM handler. Only searches that opt in via
/// [`SearchConfig::interruptible`](crate::SearchConfig) poll it.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Requests a cooperative stop. Async-signal-safe (a single atomic
/// store), so a signal handler may call it directly.
pub fn request_interrupt() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Whether an interrupt has been requested.
pub fn interrupt_requested() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Clears the interrupt flag (tests; a CLI process simply exits).
pub fn clear_interrupt() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Checkpoint sink
// ---------------------------------------------------------------------------

/// One decided conflict-graph component: its member transactions (sorted
/// spec order) and the serialization fragment (placement order + chosen
/// commit fates) that certified it.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fragment {
    /// The component's member transactions.
    pub members: Vec<TxnId>,
    /// The fragment: `(txn, committed)` in placement order.
    pub placements: Vec<(TxnId, bool)>,
}

/// A raw `(members, placements)` fragment pair, as the component cache
/// stores it and the on-disk snapshot records it.
pub type RawFragment = (Vec<TxnId>, Vec<(TxnId, bool)>);

/// A checkpoint-sink callback: receives the decided fragments and the
/// explored-state count at each flush.
pub type CheckpointSink = Box<dyn FnMut(&[Fragment], u64)>;

struct SinkState {
    every: u64,
    last_flush: u64,
    sink: CheckpointSink,
}

thread_local! {
    /// The checkpoint sink is per-thread: the sequential planned search
    /// runs on the installing thread, and thread-locality means one
    /// check's sink can never observe another check's fragments (tests
    /// run checks concurrently in one process).
    static SINK: RefCell<Option<SinkState>> = const { RefCell::new(None) };
}

/// Installs a checkpoint sink on the current thread. The planned search
/// calls it (with the component cache's fragments and the explored-state
/// count) whenever a component is decided and at least `every` states
/// have been explored since the last flush. Replaces any previous sink.
pub fn install_checkpoint_sink(every: u64, sink: CheckpointSink) {
    SINK.with(|cell| {
        *cell.borrow_mut() = Some(SinkState {
            every: every.max(1),
            last_flush: 0,
            sink,
        });
    });
}

/// Removes the current thread's checkpoint sink, if any.
pub fn remove_checkpoint_sink() {
    SINK.with(|cell| {
        *cell.borrow_mut() = None;
    });
}

/// Called by the sequential planned search after each decided component.
pub(crate) fn notify_component_progress(cache: &ComponentCache, explored: u64) {
    SINK.with(|cell| {
        // try_borrow_mut: if the sink itself somehow triggers a cached
        // search on this thread, skip the nested notification rather
        // than panicking the checker.
        let Ok(mut slot) = cell.try_borrow_mut() else {
            return;
        };
        let Some(state) = slot.as_mut() else {
            return;
        };
        if explored.saturating_sub(state.last_flush) < state.every {
            return;
        }
        state.last_flush = explored;
        let fragments = export_cache(cache);
        (state.sink)(&fragments, explored);
    });
}

fn export_cache(cache: &ComponentCache) -> Vec<Fragment> {
    cache
        .export_fragments()
        .into_iter()
        .map(|(members, placements)| Fragment {
            members,
            placements,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Snapshot data model
// ---------------------------------------------------------------------------

/// A serializable witness: the order plus the commit choices, in a shape
/// the hand-written JSON layer round-trips exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WitnessSnap {
    /// The serialization order.
    pub order: Vec<TxnId>,
    /// Commit decisions for commit-pending transactions.
    pub choices: Vec<(TxnId, bool)>,
}

impl WitnessSnap {
    /// Snapshots a witness.
    pub fn from_witness(w: &Witness) -> Self {
        WitnessSnap {
            order: w.order().to_vec(),
            choices: w.commit_choices().iter().map(|(&t, &c)| (t, c)).collect(),
        }
    }

    /// Reconstructs the witness (revalidate before trusting it).
    pub fn into_witness(self) -> Witness {
        let choices: BTreeMap<TxnId, bool> = self.choices.into_iter().collect();
        Witness::new(self.order, choices)
    }
}

/// A criterion the enclosing `duop check` already finished: its CLI name,
/// whether it passed, and the exact output line to re-emit on resume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompletedCriterion {
    /// CLI criterion name (e.g. `du`).
    pub name: String,
    /// Whether the criterion was satisfied.
    pub ok: bool,
    /// The rendered output line (text or JSON, matching the run's format).
    pub line: String,
}

/// The criterion a checkpointed `duop check` was working on when the
/// snapshot was taken, with the component fragments decided so far.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InFlight {
    /// CLI criterion name.
    pub name: String,
    /// Explored-state count at flush time (informational).
    pub explored: u64,
    /// Decided component fragments, replay-validated on resume.
    pub fragments: Vec<Fragment>,
}

/// Checkpoint of a `duop check` run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckSnapshot {
    /// The full input trace (resume does not need the original file).
    pub events: Vec<Event>,
    /// Requested criteria, CLI spellings, in order.
    pub criteria: Vec<String>,
    /// Output format (`text` or `json`).
    pub format: String,
    /// Worker threads (`0` = sequential default).
    pub threads: u64,
    /// Planner enabled.
    pub decompose: bool,
    /// Lint prefilter enabled.
    pub prelint: bool,
    /// Certifying saturation prefilter enabled.
    pub saturate: bool,
    /// Degradation ladder enabled.
    pub ladder: bool,
    /// Per-criterion deadline in milliseconds (`0` = none).
    pub deadline_ms: u64,
    /// State budget (`0` = unlimited).
    pub max_states: u64,
    /// Remaining escalation retries.
    pub retry: u64,
    /// Escalation factor, in thousandths (e.g. `2000` = 2.0×).
    pub escalate_milli: u64,
    /// Escalation attempts already consumed.
    pub attempt: u64,
    /// Criteria already decided, with their recorded output lines.
    pub completed: Vec<CompletedCriterion>,
    /// The criterion in flight when the snapshot was flushed.
    pub current: Option<InFlight>,
}

/// Checkpoint of a `duop monitor` run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MonitorSnapshot {
    /// The full input trace.
    pub events: Vec<Event>,
    /// Events already pushed through the monitor.
    pub done: u64,
    /// Event index (0-based) whose push first returned a violation, if
    /// any. Resume *re-derives* the violation by checking that prefix —
    /// the snapshot records where, never what, so a forged location can
    /// only cause a recheck, not a wrong verdict.
    pub violated_at: Option<u64>,
    /// The last certified witness, revalidated on resume.
    pub witness: Option<WitnessSnap>,
    /// Monitor work counters at flush time.
    pub stats: OnlineStats,
    /// Component fragments from the monitor's cache.
    pub fragments: Vec<Fragment>,
    /// `--status-every` setting (`0` = none), restored on resume.
    pub status_every: u64,
    /// `--checkpoint-every` setting, restored on resume.
    pub checkpoint_every: u64,
}

/// Checkpoint of one `duop serve` session: everything the daemon needs to
/// resume the session's `OnlineChecker` after a crash and keep producing
/// the same verdicts it would have produced uninterrupted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionSnapshot {
    /// The daemon-assigned session id.
    pub session: u64,
    /// Total events acknowledged so far (clients re-stream from here).
    pub ingested: u64,
    /// The retained (possibly compacted) history at flush time. Like
    /// [`MonitorSnapshot::violated_at`], any violation is *re-derived* by
    /// checking these events on load — never deserialized.
    pub events: Vec<Event>,
    /// Whether the session has exhausted its retained-event budget and
    /// stopped retaining new events (its verdict degrades to
    /// `Unknown{partial}` unless a violation was already final).
    pub degraded: bool,
    /// Events counted but not retained after degradation set in.
    pub discarded: u64,
    /// The last certified witness, revalidated on resume.
    pub witness: Option<WitnessSnap>,
    /// Monitor work counters at flush time.
    pub stats: OnlineStats,
    /// Component fragments from the session checker's cache.
    pub fragments: Vec<Fragment>,
    /// Per-session retained-event budget (`0` = unbounded), restored on
    /// resume so a recovered session keeps the same degradation policy.
    pub budget: u64,
}

/// A checkpoint: what kind of run it belongs to plus that run's progress.
#[derive(Clone, Debug, PartialEq)]
pub enum Snapshot {
    /// A `duop check` checkpoint.
    Check(CheckSnapshot),
    /// A `duop monitor` checkpoint.
    Monitor(MonitorSnapshot),
    /// A `duop serve` per-session checkpoint.
    Session(SessionSnapshot),
}

// ---------------------------------------------------------------------------
// Serialization (hand-written, core/json.rs style)
// ---------------------------------------------------------------------------

fn s(text: impl Into<String>) -> Content {
    Content::Str(text.into())
}

fn pair_seq(pairs: &[(TxnId, bool)]) -> Content {
    Content::Seq(
        pairs
            .iter()
            .map(|&(t, c)| Content::Seq(vec![serde::Serialize::to_content(&t), Content::Bool(c)]))
            .collect(),
    )
}

fn pairs_from(content: &Content) -> Result<Vec<(TxnId, bool)>, DeError> {
    let Content::Seq(items) = content else {
        return Err(DeError::custom("expected array of [txn, bool] pairs"));
    };
    items
        .iter()
        .map(|item| match item {
            Content::Seq(kv) if kv.len() == 2 => {
                let t = <TxnId as serde::Deserialize>::from_content(&kv[0])?;
                let c = bool::from_content(&kv[1])?;
                Ok((t, c))
            }
            _ => Err(DeError::custom("expected [txn, bool] pair")),
        })
        .collect()
}

fn fields(content: &Content, what: &str) -> Result<Vec<(String, Content)>, DeError> {
    match content {
        Content::Map(entries) => Ok(entries.clone()),
        _ => Err(DeError::custom(format!("{what}: expected object"))),
    }
}

fn field<'a>(entries: &'a [(String, Content)], name: &str) -> Result<&'a Content, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

impl serde::Serialize for Fragment {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("members".into(), self.members.to_content()),
            ("placements".into(), pair_seq(&self.placements)),
        ])
    }
}

impl serde::Deserialize for Fragment {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let m = fields(content, "fragment")?;
        Ok(Fragment {
            members: Vec::<TxnId>::from_content(field(&m, "members")?)?,
            placements: pairs_from(field(&m, "placements")?)?,
        })
    }
}

impl serde::Serialize for WitnessSnap {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("order".into(), self.order.to_content()),
            ("choices".into(), pair_seq(&self.choices)),
        ])
    }
}

impl serde::Deserialize for WitnessSnap {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let m = fields(content, "witness")?;
        Ok(WitnessSnap {
            order: Vec::<TxnId>::from_content(field(&m, "order")?)?,
            choices: pairs_from(field(&m, "choices")?)?,
        })
    }
}

impl serde::Serialize for CompletedCriterion {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("name".into(), s(self.name.clone())),
            ("ok".into(), Content::Bool(self.ok)),
            ("line".into(), s(self.line.clone())),
        ])
    }
}

impl serde::Deserialize for CompletedCriterion {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let m = fields(content, "completed criterion")?;
        Ok(CompletedCriterion {
            name: String::from_content(field(&m, "name")?)?,
            ok: bool::from_content(field(&m, "ok")?)?,
            line: String::from_content(field(&m, "line")?)?,
        })
    }
}

impl serde::Serialize for InFlight {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("name".into(), s(self.name.clone())),
            ("explored".into(), Content::U64(self.explored)),
            ("fragments".into(), self.fragments.to_content()),
        ])
    }
}

impl serde::Deserialize for InFlight {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let m = fields(content, "in-flight criterion")?;
        Ok(InFlight {
            name: String::from_content(field(&m, "name")?)?,
            explored: u64::from_content(field(&m, "explored")?)?,
            fragments: Vec::<Fragment>::from_content(field(&m, "fragments")?)?,
        })
    }
}

impl serde::Serialize for OnlineStats {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("events".into(), Content::U64(self.events as u64)),
            (
                "incremental_hits".into(),
                Content::U64(self.incremental_hits as u64),
            ),
            (
                "full_searches".into(),
                Content::U64(self.full_searches as u64),
            ),
            (
                "component_reuses".into(),
                Content::U64(self.component_reuses),
            ),
            (
                "lint_refutations".into(),
                Content::U64(self.lint_refutations),
            ),
            (
                "retained_events".into(),
                Content::U64(self.retained_events as u64),
            ),
            (
                "peak_resident_events".into(),
                Content::U64(self.peak_resident_events as u64),
            ),
            ("compactions".into(), Content::U64(self.compactions)),
            (
                "compacted_events".into(),
                Content::U64(self.compacted_events),
            ),
        ])
    }
}

impl serde::Deserialize for OnlineStats {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let m = fields(content, "monitor stats")?;
        Ok(OnlineStats {
            events: usize::from_content(field(&m, "events")?)?,
            incremental_hits: usize::from_content(field(&m, "incremental_hits")?)?,
            full_searches: usize::from_content(field(&m, "full_searches")?)?,
            component_reuses: u64::from_content(field(&m, "component_reuses")?)?,
            lint_refutations: u64::from_content(field(&m, "lint_refutations")?)?,
            retained_events: usize::from_content(field(&m, "retained_events")?)?,
            peak_resident_events: usize::from_content(field(&m, "peak_resident_events")?)?,
            // Absent in checkpoints written before compaction existed.
            compactions: match field(&m, "compactions") {
                Ok(v) => u64::from_content(v)?,
                Err(_) => 0,
            },
            compacted_events: match field(&m, "compacted_events") {
                Ok(v) => u64::from_content(v)?,
                Err(_) => 0,
            },
        })
    }
}

impl serde::Serialize for CheckSnapshot {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("kind".into(), s("check")),
            ("events".into(), self.events.to_content()),
            ("criteria".into(), self.criteria.to_content()),
            ("format".into(), s(self.format.clone())),
            ("threads".into(), Content::U64(self.threads)),
            ("decompose".into(), Content::Bool(self.decompose)),
            ("prelint".into(), Content::Bool(self.prelint)),
            ("saturate".into(), Content::Bool(self.saturate)),
            ("ladder".into(), Content::Bool(self.ladder)),
            ("deadline_ms".into(), Content::U64(self.deadline_ms)),
            ("max_states".into(), Content::U64(self.max_states)),
            ("retry".into(), Content::U64(self.retry)),
            ("escalate_milli".into(), Content::U64(self.escalate_milli)),
            ("attempt".into(), Content::U64(self.attempt)),
            ("completed".into(), self.completed.to_content()),
            ("current".into(), self.current.to_content()),
        ])
    }
}

impl serde::Deserialize for CheckSnapshot {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let m = fields(content, "check snapshot")?;
        Ok(CheckSnapshot {
            events: Vec::<Event>::from_content(field(&m, "events")?)?,
            criteria: Vec::<String>::from_content(field(&m, "criteria")?)?,
            format: String::from_content(field(&m, "format")?)?,
            threads: u64::from_content(field(&m, "threads")?)?,
            decompose: bool::from_content(field(&m, "decompose")?)?,
            prelint: bool::from_content(field(&m, "prelint")?)?,
            // Absent in checkpoints written before the saturation pass.
            saturate: match field(&m, "saturate") {
                Ok(v) => bool::from_content(v)?,
                Err(_) => true,
            },
            ladder: bool::from_content(field(&m, "ladder")?)?,
            deadline_ms: u64::from_content(field(&m, "deadline_ms")?)?,
            max_states: u64::from_content(field(&m, "max_states")?)?,
            retry: u64::from_content(field(&m, "retry")?)?,
            escalate_milli: u64::from_content(field(&m, "escalate_milli")?)?,
            attempt: u64::from_content(field(&m, "attempt")?)?,
            completed: Vec::<CompletedCriterion>::from_content(field(&m, "completed")?)?,
            current: Option::<InFlight>::from_content(field(&m, "current")?)?,
        })
    }
}

impl serde::Serialize for MonitorSnapshot {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("kind".into(), s("monitor")),
            ("events".into(), self.events.to_content()),
            ("done".into(), Content::U64(self.done)),
            ("violated_at".into(), self.violated_at.to_content()),
            ("witness".into(), self.witness.to_content()),
            ("stats".into(), self.stats.to_content()),
            ("fragments".into(), self.fragments.to_content()),
            ("status_every".into(), Content::U64(self.status_every)),
            (
                "checkpoint_every".into(),
                Content::U64(self.checkpoint_every),
            ),
        ])
    }
}

impl serde::Deserialize for MonitorSnapshot {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let m = fields(content, "monitor snapshot")?;
        Ok(MonitorSnapshot {
            events: Vec::<Event>::from_content(field(&m, "events")?)?,
            done: u64::from_content(field(&m, "done")?)?,
            violated_at: Option::<u64>::from_content(field(&m, "violated_at")?)?,
            witness: Option::<WitnessSnap>::from_content(field(&m, "witness")?)?,
            stats: OnlineStats::from_content(field(&m, "stats")?)?,
            fragments: Vec::<Fragment>::from_content(field(&m, "fragments")?)?,
            status_every: u64::from_content(field(&m, "status_every")?)?,
            checkpoint_every: u64::from_content(field(&m, "checkpoint_every")?)?,
        })
    }
}

impl serde::Serialize for SessionSnapshot {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("kind".into(), s("session")),
            ("session".into(), Content::U64(self.session)),
            ("ingested".into(), Content::U64(self.ingested)),
            ("events".into(), self.events.to_content()),
            ("degraded".into(), Content::Bool(self.degraded)),
            ("discarded".into(), Content::U64(self.discarded)),
            ("witness".into(), self.witness.to_content()),
            ("stats".into(), self.stats.to_content()),
            ("fragments".into(), self.fragments.to_content()),
            ("budget".into(), Content::U64(self.budget)),
        ])
    }
}

impl serde::Deserialize for SessionSnapshot {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let m = fields(content, "session snapshot")?;
        Ok(SessionSnapshot {
            session: u64::from_content(field(&m, "session")?)?,
            ingested: u64::from_content(field(&m, "ingested")?)?,
            events: Vec::<Event>::from_content(field(&m, "events")?)?,
            degraded: bool::from_content(field(&m, "degraded")?)?,
            discarded: u64::from_content(field(&m, "discarded")?)?,
            witness: Option::<WitnessSnap>::from_content(field(&m, "witness")?)?,
            stats: OnlineStats::from_content(field(&m, "stats")?)?,
            fragments: Vec::<Fragment>::from_content(field(&m, "fragments")?)?,
            budget: u64::from_content(field(&m, "budget")?)?,
        })
    }
}

impl serde::Serialize for Snapshot {
    fn to_content(&self) -> Content {
        match self {
            Snapshot::Check(c) => c.to_content(),
            Snapshot::Monitor(m) => m.to_content(),
            Snapshot::Session(s) => s.to_content(),
        }
    }
}

impl serde::Deserialize for Snapshot {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let m = fields(content, "snapshot payload")?;
        match String::from_content(field(&m, "kind")?)?.as_str() {
            "check" => CheckSnapshot::from_content(content).map(Snapshot::Check),
            "monitor" => MonitorSnapshot::from_content(content).map(Snapshot::Monitor),
            "session" => SessionSnapshot::from_content(content).map(Snapshot::Session),
            other => Err(DeError::custom(format!("unknown snapshot kind `{other}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Durable save / load
// ---------------------------------------------------------------------------

/// Why a snapshot file could not be written or read back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(String),
    /// The file is not syntactically valid JSON (truncation, bit flips in
    /// structure).
    Syntax(String),
    /// The file's format version is not [`SNAPSHOT_VERSION`].
    WrongVersion {
        /// The version the file declares.
        found: u64,
    },
    /// The payload does not match its recorded integrity hash.
    HashMismatch,
    /// The payload parses as JSON but not as a snapshot.
    Shape(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            SnapshotError::Syntax(e) => write!(f, "checkpoint is not valid JSON: {e}"),
            SnapshotError::WrongVersion { found } => write!(
                f,
                "checkpoint version {found} is not supported (expected {SNAPSHOT_VERSION})"
            ),
            SnapshotError::HashMismatch => {
                write!(f, "checkpoint integrity hash does not match its payload")
            }
            SnapshotError::Shape(e) => write!(f, "checkpoint payload is malformed: {e}"),
        }
    }
}

impl Error for SnapshotError {}

/// FxHash-128 of the payload bytes, as 32 hex digits. Not cryptographic —
/// it detects corruption (truncation, bit flips), not tampering.
fn hash_hex(bytes: &[u8]) -> String {
    let mut h = crate::fxhash::Hash128::new();
    h.write(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h.write(u64::from_le_bytes(buf));
    }
    format!("{:032x}", h.finish())
}

/// Renders a snapshot to its on-disk form (exposed for tests that build
/// corrupt variants).
pub fn to_file_string(snapshot: &Snapshot) -> String {
    let payload = serde::Serialize::to_content(snapshot);
    let body = serde_json::to_string(&payload).expect("content serialization is infallible");
    let hash = hash_hex(body.as_bytes());
    format!("{{\"version\":{SNAPSHOT_VERSION},\"hash\":\"{hash}\",\"payload\":{body}}}\n")
}

/// Writes `snapshot` to `path` atomically: the bytes go to a temp file in
/// the same directory, then a single `rename` publishes them. A reader
/// (or a crash) sees either the old complete checkpoint or the new one.
///
/// # Errors
///
/// [`SnapshotError::Io`] if the temp write or the rename fails.
pub fn save(path: &str, snapshot: &Snapshot) -> Result<(), SnapshotError> {
    let text = to_file_string(snapshot);
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, &text).map_err(|e| SnapshotError::Io(format!("{tmp}: {e}")))?;
    std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(format!("{tmp} -> {path}: {e}")))
}

/// Identity deserializer so the raw content tree can be inspected before
/// committing to a snapshot shape.
struct Raw(Content);

impl serde::Deserialize for Raw {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(Raw(content.clone()))
    }
}

/// Loads and verifies a snapshot: JSON syntax, format version, integrity
/// hash (recomputed over the canonical re-serialization of the payload),
/// then shape — in that order, so the error names the first problem.
///
/// # Errors
///
/// Every [`SnapshotError`] variant is reachable; none of them panic, so a
/// truncated, bit-flipped, or hand-edited file degrades to a structured
/// error (`duop resume` exits 2).
pub fn load(path: &str) -> Result<Snapshot, SnapshotError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| SnapshotError::Io(format!("{path}: {e}")))?;
    let Raw(outer) =
        serde_json::from_str::<Raw>(&text).map_err(|e| SnapshotError::Syntax(e.to_string()))?;
    let entries = fields(&outer, "snapshot file").map_err(|e| SnapshotError::Shape(e.0))?;
    let version = field(&entries, "version")
        .map_err(|e| SnapshotError::Shape(e.0))?
        .as_u64()
        .ok_or_else(|| SnapshotError::Shape("`version` must be an integer".into()))?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::WrongVersion { found: version });
    }
    let recorded = field(&entries, "hash")
        .map_err(|e| SnapshotError::Shape(e.0))?
        .as_str()
        .ok_or_else(|| SnapshotError::Shape("`hash` must be a string".into()))?
        .to_owned();
    let payload = field(&entries, "payload").map_err(|e| SnapshotError::Shape(e.0))?;
    // The payload was written by our own serializer, whose output the
    // parser round-trips exactly, so re-serializing the parsed tree
    // reproduces the hashed bytes.
    let body = serde_json::to_string(payload).expect("content serialization is infallible");
    if hash_hex(body.as_bytes()) != recorded {
        return Err(SnapshotError::HashMismatch);
    }
    <Snapshot as serde::Deserialize>::from_content(payload).map_err(|e| SnapshotError::Shape(e.0))
}

// ---------------------------------------------------------------------------
// Anytime check driver
// ---------------------------------------------------------------------------

/// The criteria whose checks are single serialization queries — exactly
/// the ones whose per-component progress is checkpointable and resumable.
/// (`opacity` runs a prefix loop and the TMS2 automaton is polynomial;
/// both re-run from scratch on resume.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckableCriterion {
    /// Final-state opacity (Definition 2).
    FinalStateOpacity,
    /// DU-opacity (Definition 3).
    DuOpacity,
    /// Read-commit-order opacity.
    ReadCommitOrder,
    /// The paper's TMS2 rendering.
    Tms2,
    /// Strict serializability of the committed projection.
    StrictSerializability,
}

impl CheckableCriterion {
    fn plan_criterion(self) -> crate::plan::PlanCriterion {
        match self {
            CheckableCriterion::FinalStateOpacity => crate::plan::PlanCriterion::FinalState,
            CheckableCriterion::DuOpacity => crate::plan::PlanCriterion::Du,
            CheckableCriterion::ReadCommitOrder => crate::plan::PlanCriterion::Rco,
            CheckableCriterion::Tms2 => crate::plan::PlanCriterion::Tms2,
            CheckableCriterion::StrictSerializability => crate::plan::PlanCriterion::Strict,
        }
    }

    fn query(self, h: &History) -> Query {
        match self {
            CheckableCriterion::FinalStateOpacity => Query {
                name: "final-state opacity",
                deferred_update: false,
                extra_edges: Vec::new(),
                commit_edges: Vec::new(),
                lint_scope: crate::lint::LintScope::Plain,
            },
            CheckableCriterion::DuOpacity => Query {
                name: "du-opacity",
                deferred_update: true,
                extra_edges: Vec::new(),
                commit_edges: Vec::new(),
                lint_scope: crate::lint::LintScope::Du,
            },
            CheckableCriterion::ReadCommitOrder => Query {
                name: "read-commit-order opacity",
                deferred_update: false,
                extra_edges: Vec::new(),
                commit_edges: crate::criteria::rco_edges(h),
                lint_scope: crate::lint::LintScope::Rco,
            },
            CheckableCriterion::Tms2 => Query {
                name: "TMS2",
                deferred_update: false,
                extra_edges: crate::criteria::tms2_edges(h),
                commit_edges: Vec::new(),
                lint_scope: crate::lint::LintScope::Tms2,
            },
            CheckableCriterion::StrictSerializability => Query {
                name: "strict serializability",
                deferred_update: false,
                extra_edges: Vec::new(),
                commit_edges: Vec::new(),
                lint_scope: crate::lint::LintScope::Plain,
            },
        }
    }
}

/// An anytime, resumable exact check: the same prelint → plan → search
/// pipeline as the criterion structs, run through a persistent
/// [`ComponentCache`] so that
///
/// * on budget exhaustion, the fragments of every component decided so
///   far are exportable ([`ResumableCheck::fragments`]) for a checkpoint;
/// * a later attempt (a `duop resume`, or the in-process
///   `--retry`/`--escalate` loop) preloads those fragments and *replays*
///   them through the searcher's own placement rules instead of
///   re-searching — validated reuse, identical verdicts, strictly fewer
///   explored states.
///
/// Fragment reuse flows through the sequential planned engine; with
/// `threads > 1` or `decompose = false` the check still works but decides
/// every component afresh.
#[derive(Debug, Default)]
pub struct ResumableCheck {
    cache: ComponentCache,
}

impl ResumableCheck {
    /// A driver with an empty cache (a from-scratch check).
    pub fn new() -> Self {
        ResumableCheck::default()
    }

    /// Preloads checkpointed fragments. They are replay-validated before
    /// any reuse, so corrupt or stale fragments are harmless.
    pub fn preload(&mut self, fragments: Vec<Fragment>) {
        self.cache
            .preload(fragments.into_iter().map(|f| (f.members, f.placements)));
    }

    /// The fragments of every component decided by the most recent
    /// [`ResumableCheck::check`] call (sorted, deterministic).
    pub fn fragments(&self) -> Vec<Fragment> {
        export_cache(&self.cache)
    }

    /// Checks `h` against `criterion` under `cfg`, going through the
    /// persistent cache. Verdict-equivalent to the corresponding
    /// [`Criterion::check`](crate::Criterion) call.
    pub fn check(
        &mut self,
        h: &History,
        criterion: CheckableCriterion,
        cfg: &SearchConfig,
    ) -> (Verdict, SearchStats) {
        let projection;
        let h_eff: &History = match criterion {
            CheckableCriterion::StrictSerializability => {
                let committed: Vec<TxnId> = h
                    .txns()
                    .filter(|t| {
                        t.commit_capability() != duop_history::CommitCapability::NeverCommitted
                    })
                    .map(|t| t.id())
                    .collect();
                projection = h.filter_txns(|id| committed.contains(&id));
                &projection
            }
            _ => h,
        };
        let query = criterion.query(h_eff);
        if cfg.prelint {
            if let Some(v) = crate::lint::prelint(h_eff, query.lint_scope, query.name) {
                return (Verdict::Violated(v), SearchStats::default());
            }
        }
        // The same certifying saturation prefilter the criterion structs
        // run (h_eff is already the prepared history, so `strict` works
        // on its committed projection here too).
        if cfg.saturate {
            match crate::saturate::saturate_prepared(h_eff, criterion.plan_criterion()) {
                crate::saturate::SaturationOutcome::Refuted(cert) => {
                    return (
                        Verdict::Violated(crate::Violation::Certified {
                            criterion: query.name.into(),
                            certificate: Box::new(cert),
                        }),
                        SearchStats::default(),
                    );
                }
                crate::saturate::SaturationOutcome::Decided(w) => {
                    return (Verdict::Satisfied(w), SearchStats::default());
                }
                crate::saturate::SaturationOutcome::Inconclusive => {}
            }
        }
        let spec = match Spec::build(h_eff) {
            Ok(s) => s,
            Err(v) => return (Verdict::Violated(v), SearchStats::default()),
        };
        self.cache.begin_generation();
        let (verdict, stats) = decide_spec(&spec, &query, cfg, Some(&mut self.cache));
        if cfg.ladder {
            if let Verdict::Unknown {
                explored,
                reason,
                partial,
            } = verdict
            {
                return (
                    crate::search::ladder_fallback(h_eff, &query, cfg, explored, reason, partial),
                    stats,
                );
            }
        }
        (verdict, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::{HistoryBuilder, ObjId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }

    fn sample_check_snapshot() -> CheckSnapshot {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), ObjId::new(0), Value::new(1))
            .committed_reader(t(2), ObjId::new(0), Value::new(1))
            .build();
        CheckSnapshot {
            events: h.events().to_vec(),
            criteria: vec!["du".into(), "rco".into()],
            format: "text".into(),
            threads: 0,
            decompose: true,
            prelint: true,
            saturate: true,
            ladder: true,
            deadline_ms: 250,
            max_states: 1000,
            retry: 3,
            escalate_milli: 2000,
            attempt: 1,
            completed: vec![CompletedCriterion {
                name: "du".into(),
                ok: true,
                line: "du-opacity                   satisfied; witness: \"T1\" < T2".into(),
            }],
            current: Some(InFlight {
                name: "rco".into(),
                explored: 42,
                fragments: vec![Fragment {
                    members: vec![t(1), t(2)],
                    placements: vec![(t(1), true), (t(2), true)],
                }],
            }),
        }
    }

    #[test]
    fn check_snapshot_round_trips_through_file() {
        let snap = Snapshot::Check(sample_check_snapshot());
        let path = std::env::temp_dir().join(format!(
            "duop-snap-rt-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = path.to_str().unwrap().to_owned();
        save(&path, &snap).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn monitor_snapshot_round_trips() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), ObjId::new(0), Value::new(1))
            .build();
        let stats = OnlineStats {
            events: 4,
            incremental_hits: 3,
            full_searches: 1,
            component_reuses: 0,
            lint_refutations: 0,
            retained_events: 4,
            peak_resident_events: 4,
            compactions: 1,
            compacted_events: 6,
        };
        let snap = Snapshot::Monitor(MonitorSnapshot {
            events: h.events().to_vec(),
            done: 4,
            violated_at: None,
            witness: Some(WitnessSnap {
                order: vec![t(1)],
                choices: vec![(t(1), true)],
            }),
            stats,
            fragments: Vec::new(),
            status_every: 2,
            checkpoint_every: 1,
        });
        let text = to_file_string(&snap);
        let path = std::env::temp_dir().join(format!(
            "duop-snap-mon-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, &text).unwrap();
        let loaded = load(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn session_snapshot_round_trips() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), ObjId::new(0), Value::new(1))
            .committed_reader(t(2), ObjId::new(0), Value::new(1))
            .build();
        let stats = OnlineStats {
            events: 8,
            incremental_hits: 5,
            full_searches: 2,
            component_reuses: 1,
            lint_refutations: 0,
            retained_events: 8,
            peak_resident_events: 8,
            compactions: 1,
            compacted_events: 4,
        };
        let snap = Snapshot::Session(SessionSnapshot {
            session: 7,
            ingested: 12,
            events: h.events().to_vec(),
            degraded: true,
            discarded: 4,
            witness: Some(WitnessSnap {
                order: vec![t(1), t(2)],
                choices: vec![(t(1), true), (t(2), true)],
            }),
            stats,
            fragments: vec![Fragment {
                members: vec![t(1), t(2)],
                placements: vec![(t(1), true), (t(2), true)],
            }],
            budget: 64,
        });
        let path = std::env::temp_dir().join(format!(
            "duop-snap-sess-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = path.to_str().unwrap().to_owned();
        save(&path, &snap).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_files_yield_structured_errors() {
        let snap = Snapshot::Check(sample_check_snapshot());
        let good = to_file_string(&snap);

        // Truncated: syntax error.
        let half = &good[..good.len() / 2];
        let dir = std::env::temp_dir();
        let write = |label: &str, text: &str| {
            let p = dir.join(format!(
                "duop-snap-corrupt-{label}-{}-{:?}.json",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::write(&p, text).unwrap();
            p.to_str().unwrap().to_owned()
        };

        let p = write("trunc", half);
        assert!(matches!(load(&p), Err(SnapshotError::Syntax(_))));

        // Wrong version.
        let versioned = good.replacen("\"version\":1", "\"version\":99", 1);
        let p = write("ver", &versioned);
        assert!(matches!(
            load(&p),
            Err(SnapshotError::WrongVersion { found: 99 })
        ));

        // Payload flip: hash mismatch.
        let flipped = good.replacen("\"threads\":0", "\"threads\":7", 1);
        let p = write("flip", &flipped);
        assert!(matches!(load(&p), Err(SnapshotError::HashMismatch)));

        // Bad hash field.
        let bad_hash = {
            let start = good.find("\"hash\":\"").unwrap() + "\"hash\":\"".len();
            let mut s = good.clone();
            s.replace_range(start..start + 4, "dead");
            s
        };
        let p = write("hash", &bad_hash);
        match load(&p) {
            // 1-in-16^4 chance the original hash started with "dead".
            Err(SnapshotError::HashMismatch) | Ok(_) => {}
            other => panic!("expected hash mismatch, got {other:?}"),
        }

        // Missing file: io error.
        assert!(matches!(
            load("/nonexistent/duop-snap.json"),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn resumable_check_reuses_fragments_across_attempts() {
        // Two independent clusters (concurrent, so real-time order does
        // not merge them); a tiny budget decides the first component then
        // trips. The resumed attempt must replay it and explore strictly
        // fewer states than a fresh unbudgeted run.
        let (x, y) = (ObjId::new(0), ObjId::new(1));
        let h = HistoryBuilder::new()
            .inv_write(t(1), x, Value::new(1))
            .inv_write(t(3), y, Value::new(7))
            .resp_ok(t(1))
            .resp_ok(t(3))
            .inv_try_commit(t(1))
            .inv_try_commit(t(3))
            .read(t(2), x, Value::new(1))
            .read(t(4), y, Value::new(7))
            .commit(t(2))
            .commit(t(4))
            .build();

        let cfg_unlimited = SearchConfig {
            prelint: false,
            ..SearchConfig::default()
        };
        let (fresh_verdict, fresh_stats) =
            ResumableCheck::new().check(&h, CheckableCriterion::DuOpacity, &cfg_unlimited);
        assert!(fresh_verdict.is_satisfied());

        let mut budgeted = ResumableCheck::new();
        let cfg_tiny = SearchConfig {
            max_states: Some(3),
            prelint: false,
            // Keep the ladder out so the budget trip is observable.
            ladder: false,
            ..SearchConfig::default()
        };
        let (first, _) = budgeted.check(&h, CheckableCriterion::DuOpacity, &cfg_tiny);
        assert!(
            matches!(first, Verdict::Unknown { .. }),
            "expected budget trip, got {first:?}"
        );
        let fragments = budgeted.fragments();
        assert!(
            !fragments.is_empty(),
            "at least one component should be decided before the budget"
        );

        let mut resumed = ResumableCheck::new();
        resumed.preload(fragments);
        let (second, resumed_stats) =
            resumed.check(&h, CheckableCriterion::DuOpacity, &cfg_unlimited);
        assert!(second.is_satisfied());
        assert!(
            resumed_stats.explored < fresh_stats.explored,
            "resume should skip replayed components: {} vs {}",
            resumed_stats.explored,
            fresh_stats.explored
        );
    }

    #[test]
    fn checkpoint_sink_fires_on_component_progress() {
        use std::cell::Cell;
        use std::rc::Rc;

        let flushes = Rc::new(Cell::new(0usize));
        let seen = flushes.clone();
        install_checkpoint_sink(
            1,
            Box::new(move |fragments, _explored| {
                assert!(!fragments.is_empty());
                seen.set(seen.get() + 1);
            }),
        );
        let h = HistoryBuilder::new()
            .committed_writer(t(1), ObjId::new(0), Value::new(1))
            .committed_reader(t(2), ObjId::new(0), Value::new(1))
            .committed_writer(t(3), ObjId::new(1), Value::new(7))
            .committed_reader(t(4), ObjId::new(1), Value::new(7))
            .build();
        let mut check = ResumableCheck::new();
        // Saturation off: this test exercises the planned search's sink
        // notifications, and the prefilter decides this history outright.
        let cfg = SearchConfig {
            saturate: false,
            ..SearchConfig::default()
        };
        let (verdict, _) = check.check(&h, CheckableCriterion::DuOpacity, &cfg);
        remove_checkpoint_sink();
        assert!(verdict.is_satisfied());
        assert!(flushes.get() > 0, "sink never fired");
    }

    #[test]
    fn interrupt_flag_round_trip() {
        clear_interrupt();
        assert!(!interrupt_requested());
        request_interrupt();
        assert!(interrupt_requested());
        clear_interrupt();
        assert!(!interrupt_requested());
    }
}
