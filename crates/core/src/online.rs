//! Incremental, per-event du-opacity monitoring.
//!
//! [`OnlineChecker`] consumes a history one event at a time and reports
//! after each event whether the prefix seen so far is du-opaque. It
//! exploits two results of the paper:
//!
//! * **Corollary 2** (prefix-closure): once a prefix is not du-opaque no
//!   extension can be, so a violation verdict is final;
//! * **Lemma 1** (witness restriction): serializations of prefixes embed
//!   into serializations of extensions, so the witness found for the
//!   previous prefix is an excellent candidate for the next one — the
//!   monitor first tries cheap adaptations of it and only falls back to a
//!   full search when they all fail.
//!
//! Even the fallback searches are incremental: the search planner
//! ([`crate::plan`]) decomposes each prefix into conflict-graph
//! components, and the monitor caches each component's serialization
//! fragment between events. A new event typically perturbs only the
//! component of the transaction it belongs to; every other component's
//! cached fragment is *replayed* through the searcher's own placement
//! rules (so reuse is validated, never trusted) and only the touched
//! component is actually re-searched.

use crate::plan::ComponentCache;
use crate::search::{decide_spec, Query};
use crate::spec::Spec;
use crate::{check_witness, CriterionKind, SearchConfig, Verdict, Witness};
use duop_history::{Event, History, MalformedHistoryError, ObjId, Op, Ret, TxnId, Value};
use std::collections::BTreeMap;

/// Counters describing how much work the monitor has done.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OnlineStats {
    /// Events accepted so far.
    pub events: usize,
    /// Prefixes certified by adapting the previous witness (no search).
    pub incremental_hits: usize,
    /// Prefixes that needed a full serialization search.
    pub full_searches: usize,
    /// Conflict-graph components certified during fallback searches by
    /// replaying a cached fragment instead of searching.
    pub component_reuses: u64,
    /// Prefixes refuted by the polynomial lint prefilter, skipping the
    /// fallback search entirely.
    pub lint_refutations: u64,
    /// Events currently retained in the monitor's history (its resident
    /// working set — what a checkpoint must persist).
    pub retained_events: usize,
    /// High-water mark of `retained_events` over the monitor's lifetime
    /// (survives checkpoint/resume).
    pub peak_resident_events: usize,
    /// Times a certified t-complete prefix was replaced by its synthetic
    /// baseline transaction (see [`OnlineChecker::try_compact`]).
    pub compactions: u64,
    /// Total events discarded by compactions (each compaction drops the
    /// whole retained history and re-seeds it with the baseline events).
    pub compacted_events: u64,
}

/// A per-event du-opacity monitor.
///
/// # Examples
///
/// ```
/// use duop_core::online::OnlineChecker;
/// use duop_history::{Event, Op, Ret, ObjId, TxnId, Value};
///
/// let t1 = TxnId::new(1);
/// let x = ObjId::new(0);
/// let mut mon = OnlineChecker::new();
/// assert!(mon.push(Event::inv(t1, Op::Write(x, Value::new(1))))?.is_satisfied());
/// assert!(mon.push(Event::resp(t1, Ret::Ok))?.is_satisfied());
/// assert!(mon.push(Event::inv(t1, Op::TryCommit))?.is_satisfied());
/// assert!(mon.push(Event::resp(t1, Ret::Committed))?.is_satisfied());
/// # Ok::<(), duop_history::MalformedHistoryError>(())
/// ```
#[derive(Debug, Default)]
pub struct OnlineChecker {
    history: History,
    witness: Option<Witness>,
    violated: Option<Verdict>,
    cfg: SearchConfig,
    stats: OnlineStats,
    /// Per-component serialization fragments from the previous fallback
    /// search, reused (after replay validation) by the next one.
    cache: ComponentCache,
    /// When set, the monitor attempts a [`Self::try_compact`] whenever a
    /// certified prefix has grown past this many retained events.
    compact_every: Option<usize>,
}

impl OnlineChecker {
    /// Creates a monitor over the empty history.
    pub fn new() -> Self {
        OnlineChecker::default()
    }

    /// Creates a monitor with an explicit search configuration for the
    /// fallback searches.
    pub fn with_config(cfg: SearchConfig) -> Self {
        OnlineChecker {
            cfg,
            ..OnlineChecker::default()
        }
    }

    /// Reconstructs a monitor from checkpointed state (see
    /// [`crate::snapshot`]).
    ///
    /// Nothing from the checkpoint is trusted: the witness is revalidated
    /// against the history before reuse (a stale or corrupt witness costs
    /// one fallback search, never a wrong verdict), and `violated` is
    /// expected to be a verdict the *caller* recomputed from the history
    /// itself — `duop resume` re-checks the prefix where the checkpoint
    /// says the violation occurred rather than deserializing a violation
    /// object.
    pub fn resume(
        history: History,
        witness: Option<Witness>,
        violated: Option<Verdict>,
        stats: OnlineStats,
        cfg: SearchConfig,
    ) -> Self {
        let witness =
            witness.filter(|w| check_witness(&history, w, CriterionKind::DuOpacity).is_ok());
        let mut stats = stats;
        stats.retained_events = history.len();
        stats.peak_resident_events = stats.peak_resident_events.max(history.len());
        OnlineChecker {
            history,
            witness,
            violated,
            cfg,
            stats,
            cache: ComponentCache::default(),
            compact_every: None,
        }
    }

    /// Enables (or disables, with `None`) automatic history compaction
    /// once the retained history outgrows `threshold` events. See
    /// [`Self::try_compact`] for what compaction does and when it is
    /// sound.
    pub fn set_compact_every(&mut self, threshold: Option<usize>) {
        self.compact_every = threshold;
    }

    /// The current automatic-compaction threshold (`None` = disabled).
    /// The serve daemon reads this back when re-arming a session resumed
    /// through [`Self::resume`], which deliberately starts with compaction
    /// off.
    pub fn compact_every(&self) -> Option<usize> {
        self.compact_every
    }

    /// The history consumed so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Work counters.
    pub fn stats(&self) -> OnlineStats {
        self.stats
    }

    /// The current witness serialization, if the prefix is certified
    /// du-opaque (checkpointed so a resumed monitor can start from it).
    pub fn witness(&self) -> Option<&Witness> {
        self.witness.as_ref()
    }

    /// The final violation verdict, once a prefix has been refuted
    /// (Corollary 2 makes it final).
    pub fn violation(&self) -> Option<&Verdict> {
        self.violated.as_ref()
    }

    /// Exports the component cache's serialization fragments for
    /// checkpointing (sorted, deterministic).
    pub fn export_fragments(&self) -> Vec<crate::snapshot::RawFragment> {
        self.cache.export_fragments()
    }

    /// Preloads checkpointed component fragments into the cache. They are
    /// replay-validated before any reuse, exactly like fragments the
    /// monitor cached itself.
    pub fn preload_fragments(&mut self, fragments: Vec<crate::snapshot::RawFragment>) {
        self.cache.preload(fragments);
    }

    /// Appends `event` and reports whether the extended prefix is
    /// du-opaque.
    ///
    /// Once a prefix is violated the verdict is final (Corollary 2) and
    /// every further push returns the same violation without searching.
    ///
    /// # Errors
    ///
    /// Returns a [`MalformedHistoryError`] if the event does not extend the
    /// history to a well-formed one; the event is discarded and the monitor
    /// state is unchanged.
    pub fn push(&mut self, event: Event) -> Result<Verdict, MalformedHistoryError> {
        self.history.push_checked(event)?;
        self.stats.events += 1;
        self.stats.retained_events = self.history.len();
        self.stats.peak_resident_events = self.stats.peak_resident_events.max(self.history.len());

        if let Some(v) = &self.violated {
            return Ok(v.clone());
        }

        // Candidate witnesses adapted from the previous prefix's witness.
        for candidate in self.candidates(event) {
            if check_witness(&self.history, &candidate, CriterionKind::DuOpacity).is_ok() {
                self.stats.incremental_hits += 1;
                self.witness = Some(candidate.clone());
                self.maybe_auto_compact();
                return Ok(Verdict::Satisfied(candidate));
            }
        }

        // Cheap polynomial prefilter before any search: an Error-severity
        // lint finding for the du scope is a proven refutation, and lint
        // runs per event in polynomial time.
        if self.cfg.prelint {
            if let Some(v) =
                crate::lint::prelint(&self.history, crate::lint::LintScope::Du, "du-opacity")
            {
                self.stats.lint_refutations += 1;
                let verdict = Verdict::Violated(v);
                self.violated = Some(verdict.clone());
                return Ok(verdict);
            }
        }

        // Full search — planned per conflict-graph component, reusing the
        // previous search's fragments for components the event left alone.
        self.stats.full_searches += 1;
        self.cache.begin_generation();
        let query = Query {
            name: "du-opacity",
            deferred_update: true,
            extra_edges: Vec::new(),
            commit_edges: Vec::new(),
            lint_scope: crate::lint::LintScope::Du,
        };
        let verdict = match Spec::build(&self.history) {
            Err(v) => Verdict::Violated(v),
            Ok(spec) => decide_spec(&spec, &query, &self.cfg, Some(&mut self.cache)).0,
        };
        self.stats.component_reuses = self.cache.reuses;
        match &verdict {
            Verdict::Satisfied(w) => {
                self.witness = Some(w.clone());
                self.maybe_auto_compact();
            }
            Verdict::Violated(_) => self.violated = Some(verdict.clone()),
            Verdict::Unknown { .. } => {}
        }
        Ok(verdict)
    }

    fn maybe_auto_compact(&mut self) {
        if let Some(n) = self.compact_every {
            if self.history.len() >= n.max(1) {
                self.try_compact();
            }
        }
    }

    /// Attempts to compact the retained history, returning whether it
    /// happened. On success the whole retained prefix is replaced by a
    /// synthetic committed *baseline* transaction [`TxnId::BASELINE`] that
    /// writes each t-object's final committed value — the paper's `T_0`
    /// convention (Section 2) re-applied at a later cut point — so the
    /// monitor's resident memory drops to a few events per object while
    /// verdicts for all future events are unchanged.
    ///
    /// Compaction is performed only when it is provably verdict-preserving:
    ///
    /// 1. **The prefix is certified**: the current witness re-validates
    ///    against the retained history (so the prefix is du-opaque, and by
    ///    Corollary 2 nothing before the cut can retroactively fail).
    /// 2. **The prefix is t-complete**: every transaction has terminated,
    ///    so every retained transaction `≺RT`-precedes every future one and
    ///    any serialization of any extension orders the whole prefix block
    ///    before the suffix (Lemma 1's embedding applies blockwise).
    /// 3. **Final values are forced**: for every t-object, the committed
    ///    writers contain one that `≺RT`-follows all the others. Every
    ///    serialization that respects `≺RT` then agrees on the object's
    ///    final committed value, so the baseline's writes do not depend on
    ///    *which* witness certified the prefix. Without this condition two
    ///    concurrent committed writers could leave either value, and
    ///    pinning one would wrongly refute suffixes consistent only with
    ///    the other.
    ///
    /// Under 1–3, a suffix extends the compacted history to a du-opaque
    /// one exactly when the original prefix plus suffix is du-opaque:
    /// serializations correspond block for block, with the baseline
    /// transaction standing in for the prefix block's (forced) net effect.
    ///
    /// If every retained transaction aborted, the baseline itself is empty
    /// and the history compacts to nothing — the `T_0` convention already
    /// covers all initial values.
    pub fn try_compact(&mut self) -> bool {
        if self.violated.is_some() || self.history.is_empty() {
            return false;
        }
        if !self.history.is_t_complete() {
            return false;
        }
        match &self.witness {
            Some(w) if check_witness(&self.history, w, CriterionKind::DuOpacity).is_ok() => {}
            _ => return false,
        }
        let Some(finals) = self.forced_final_values() else {
            return false;
        };

        let mut events: Vec<Event> = Vec::with_capacity(finals.len() * 2 + 2);
        for &(obj, value) in &finals {
            events.push(Event::inv(TxnId::BASELINE, Op::Write(obj, value)));
            events.push(Event::resp(TxnId::BASELINE, Ret::Ok));
        }
        if !finals.is_empty() {
            events.push(Event::inv(TxnId::BASELINE, Op::TryCommit));
            events.push(Event::resp(TxnId::BASELINE, Ret::Committed));
        }
        let dropped = self.history.len();
        let baseline = History::new(events).expect("baseline history is well-formed");
        self.witness = if finals.is_empty() {
            None
        } else {
            Some(Witness::new(vec![TxnId::BASELINE], BTreeMap::new()))
        };
        self.stats.compactions += 1;
        self.stats.compacted_events += dropped as u64;
        self.stats.retained_events = baseline.len();
        self.history = baseline;
        // Cached fragments serialize transactions that no longer exist.
        self.cache = ComponentCache::default();
        true
    }

    /// The forced final committed value of every committed-written
    /// t-object, or `None` if some object's final value depends on the
    /// serialization (two committed writers not ordered by `≺RT`).
    fn forced_final_values(&self) -> Option<Vec<(ObjId, Value)>> {
        // Committed writers per object as (first, last, final value).
        let mut writers: BTreeMap<ObjId, Vec<(usize, usize, Value)>> = BTreeMap::new();
        for t in self.history.txns() {
            if !t.is_committed() {
                continue;
            }
            for obj in t.write_set() {
                let value = t.last_write_to(obj).expect("write set implies a write");
                writers.entry(obj).or_default().push((
                    t.first_event_index(),
                    t.last_event_index(),
                    value,
                ));
            }
        }
        let mut finals = Vec::with_capacity(writers.len());
        for (obj, ws) in writers {
            let &(max_first, _, value) = ws.iter().max_by_key(|(first, _, _)| *first)?;
            for &(first, last, _) in &ws {
                if first != max_first && last >= max_first {
                    // A rival committed writer does not RT-precede the
                    // latest-starting one: the final value is not forced.
                    return None;
                }
            }
            finals.push((obj, value));
        }
        Some(finals)
    }

    /// Cheap adaptations of the previous witness to the extended history.
    fn candidates(&self, event: Event) -> Vec<Witness> {
        let Some(prev) = &self.witness else {
            // First event of the history: the single-transaction witness.
            return vec![Witness::new(vec![event.txn], BTreeMap::new())];
        };
        let mut out = Vec::new();

        let mut base_order = prev.order().to_vec();
        if !base_order.contains(&event.txn) {
            base_order.push(event.txn);
        }
        let choices = prev.commit_choices().clone();

        // 1. Same order, same choices.
        out.push(Witness::new(base_order.clone(), choices.clone()));

        // 2. The affected transaction moved to the end (a response often
        //    pushes a transaction later in the order, e.g. when it read a
        //    newly committed value).
        let mut moved = base_order.clone();
        moved.retain(|t| *t != event.txn);
        moved.push(event.txn);
        out.push(Witness::new(moved, choices.clone()));

        // 3. Same order with the affected transaction's pending-commit
        //    choice flipped both ways (a new tryC invocation opens the
        //    choice; a read from it may require commit).
        for decide in [true, false] {
            let mut flipped = choices.clone();
            flipped.insert(event.txn, decide);
            out.push(Witness::new(base_order.clone(), flipped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Criterion, DuOpacity};
    use duop_history::{HistoryBuilder, ObjId, Op, Ret, TxnId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    /// Replays a complete history through the monitor, returning the final
    /// verdict.
    fn replay(h: &duop_history::History) -> (Verdict, OnlineStats) {
        let mut mon = OnlineChecker::new();
        let mut last = Verdict::Satisfied(Witness::new(Vec::new(), BTreeMap::new()));
        for ev in h.events() {
            last = mon.push(*ev).expect("well-formed prefix");
        }
        (last, mon.stats())
    }

    #[test]
    fn accepts_du_opaque_history_incrementally() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        let (verdict, stats) = replay(&h);
        assert!(verdict.is_satisfied());
        assert_eq!(stats.events, h.len());
        assert!(
            stats.incremental_hits > 0,
            "expected witness reuse: {stats:?}"
        );
    }

    #[test]
    fn flags_violation_and_stays_violated() {
        // Stale read: T2 reads 0 after T1 committed 1, entirely after T1.
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .read(t(2), x(), v(0))
            .commit(t(2))
            .build();
        let mut mon = OnlineChecker::new();
        let mut first_violation = None;
        for (i, ev) in h.events().iter().enumerate() {
            let verdict = mon.push(*ev).unwrap();
            if verdict.is_violated() && first_violation.is_none() {
                first_violation = Some(i);
            }
        }
        // The violation appears exactly when the stale read's response
        // lands (event index 5) and persists.
        assert_eq!(first_violation, Some(5));
        let after = mon.push(Event::inv(t(3), Op::Read(x()))).unwrap();
        assert!(after.is_violated());
    }

    #[test]
    fn rejects_malformed_events_without_corruption() {
        let mut mon = OnlineChecker::new();
        mon.push(Event::inv(t(1), Op::Read(x()))).unwrap();
        let err = mon.push(Event::resp(t(1), Ret::Ok));
        assert!(err.is_err());
        // Monitor still usable with the correct response.
        let verdict = mon.push(Event::resp(t(1), Ret::Value(v(0)))).unwrap();
        assert!(verdict.is_satisfied());
        assert_eq!(mon.history().len(), 2);
    }

    #[test]
    fn pending_commit_read_through_is_tracked() {
        let mut mon = OnlineChecker::new();
        let events = [
            Event::inv(t(1), Op::Write(x(), v(1))),
            Event::resp(t(1), Ret::Ok),
            Event::inv(t(1), Op::TryCommit),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(1))),
            Event::inv(t(2), Op::TryCommit),
            Event::resp(t(2), Ret::Committed),
        ];
        let mut last = None;
        for ev in events {
            last = Some(mon.push(ev).unwrap());
        }
        let verdict = last.unwrap();
        let w = verdict.witness().expect("du-opaque");
        assert_eq!(w.commit_choice(t(1)), Some(true));
    }

    #[test]
    fn expired_deadline_surfaces_as_unknown_per_push() {
        // Zero deadline: pushes certified by cheap witness adaptation stay
        // Satisfied, but the read response that forces a fallback search
        // must return Unknown(deadline) instead of searching unboundedly.
        let mut mon = OnlineChecker::with_config(crate::SearchConfig {
            deadline: Some(std::time::Duration::ZERO),
            ..crate::SearchConfig::default()
        });
        let events = [
            Event::inv(t(1), Op::Write(x(), v(1))),
            Event::resp(t(1), Ret::Ok),
            Event::inv(t(1), Op::TryCommit),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(1))),
        ];
        let mut last = None;
        for ev in events {
            last = Some(mon.push(ev).unwrap());
        }
        assert!(
            matches!(
                last,
                Some(Verdict::Unknown {
                    reason: crate::UnknownReason::Deadline,
                    ..
                })
            ),
            "expected deadline Unknown, got {last:?}"
        );
    }

    #[test]
    fn fallback_searches_reuse_untouched_components() {
        // Two disjoint overlapping clusters (x: T1/T2, y: T3/T4). Each
        // reader returns a commit-pending writer's value, which no cheap
        // witness adaptation certifies (the *writer's* fate must flip), so
        // both read responses force fallback searches. The second fallback
        // must replay the x-cluster's cached fragment instead of
        // re-searching it.
        let y = ObjId::new(1);
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_write(t(3), y, v(7))
            .resp_ok(t(1))
            .resp_ok(t(3))
            .inv_try_commit(t(1))
            .inv_try_commit(t(3))
            .inv_read(t(2), x())
            .resp_value(t(2), v(1))
            .inv_read(t(4), y)
            .resp_value(t(4), v(7))
            .commit(t(2))
            .commit(t(4))
            .build();
        let (verdict, stats) = replay(&h);
        assert!(verdict.is_satisfied());
        assert!(stats.full_searches >= 2, "stats: {stats:?}");
        assert!(
            stats.component_reuses > 0,
            "expected cached component fragments to be replayed: {stats:?}"
        );
    }

    #[test]
    fn compaction_replaces_certified_prefix_with_baseline() {
        let mut mon = OnlineChecker::new();
        mon.set_compact_every(Some(1));
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(2))
            .build();
        for ev in h.events() {
            assert!(mon.push(*ev).unwrap().is_satisfied());
        }
        let stats = mon.stats();
        assert!(stats.compactions > 0, "stats: {stats:?}");
        // The retained history is just the baseline transaction.
        assert!(mon.history().participates(TxnId::BASELINE));
        assert_eq!(mon.history().txn_count(), 1);
        let tb = mon.history().txn(TxnId::BASELINE).unwrap();
        assert_eq!(tb.last_write_to(x()), Some(v(2)));
        assert!(stats.retained_events < h.len());
    }

    #[test]
    fn compaction_preserves_future_verdicts() {
        // A post-compaction stale read of the pre-compaction value must
        // still be flagged: T1 commits 1, compaction replaces it with the
        // baseline, then T2 reads 0.
        let mut mon = OnlineChecker::new();
        let prefix = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .build();
        for ev in prefix.events() {
            mon.push(*ev).unwrap();
        }
        assert!(mon.try_compact());
        let verdicts: Vec<bool> = [
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(0))),
        ]
        .into_iter()
        .map(|ev| mon.push(ev).unwrap().is_violated())
        .collect();
        assert!(verdicts[1], "stale read must violate after compaction");

        // And the fresh value stays accepted.
        let mut mon = OnlineChecker::new();
        for ev in prefix.events() {
            mon.push(*ev).unwrap();
        }
        assert!(mon.try_compact());
        let h2 = [
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(1))),
            Event::inv(t(2), Op::TryCommit),
            Event::resp(t(2), Ret::Committed),
        ];
        let mut last = None;
        for ev in h2 {
            last = Some(mon.push(ev).unwrap());
        }
        assert!(last.unwrap().is_satisfied());
    }

    #[test]
    fn compaction_refused_when_final_value_not_forced() {
        // Two committed writers of x overlap: either serialization order is
        // legal, so the final value is not forced and compaction must
        // refuse (pinning one value would wrongly refute a suffix reading
        // the other).
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_write(t(2), x(), v(2))
            .resp_ok(t(1))
            .resp_ok(t(2))
            .inv_try_commit(t(1))
            .inv_try_commit(t(2))
            .resp_committed(t(1))
            .resp_committed(t(2))
            .build();
        let mut mon = OnlineChecker::new();
        for ev in h.events() {
            assert!(mon.push(*ev).unwrap().is_satisfied());
        }
        assert!(h.is_t_complete());
        assert!(!mon.try_compact());
        assert_eq!(mon.stats().compactions, 0);
        // Both continuations must remain accepted.
        for stale in [v(1), v(2)] {
            let mut m2 = OnlineChecker::new();
            for ev in h.events() {
                m2.push(*ev).unwrap();
            }
            let cont = [
                Event::inv(t(3), Op::Read(x())),
                Event::resp(t(3), Ret::Value(stale)),
            ];
            let mut last = None;
            for ev in cont {
                last = Some(m2.push(ev).unwrap());
            }
            assert!(
                last.unwrap().is_satisfied(),
                "reading {stale:?} should be accepted"
            );
        }
    }

    #[test]
    fn compaction_refused_mid_transaction() {
        let mut mon = OnlineChecker::new();
        mon.push(Event::inv(t(1), Op::Write(x(), v(1)))).unwrap();
        mon.push(Event::resp(t(1), Ret::Ok)).unwrap();
        assert!(!mon.try_compact(), "prefix is not t-complete");
    }

    #[test]
    fn all_aborted_prefix_compacts_to_empty() {
        let mut mon = OnlineChecker::new();
        for ev in [
            Event::inv(t(1), Op::Write(x(), v(9))),
            Event::resp(t(1), Ret::Ok),
            Event::inv(t(1), Op::TryAbort),
            Event::resp(t(1), Ret::Aborted),
        ] {
            mon.push(ev).unwrap();
        }
        assert!(mon.try_compact());
        assert!(mon.history().is_empty());
        // The aborted write left no trace: a read of 9 now violates, a
        // read of the initial value is fine.
        let mut m = OnlineChecker::new();
        for ev in [
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(0))),
        ] {
            assert!(m.push(ev).unwrap().is_satisfied());
        }
    }

    #[test]
    fn compaction_on_and_off_agree_along_generated_interleavings() {
        // Differential check: with aggressive auto-compaction the verdict
        // sequence must match the uncompacted monitor event for event.
        let y = ObjId::new(1);
        let histories = [
            HistoryBuilder::new()
                .committed_writer(t(1), x(), v(1))
                .committed_reader(t(2), x(), v(1))
                .committed_writer(t(3), y, v(5))
                .committed_reader(t(4), y, v(5))
                .committed_writer(t(5), x(), v(7))
                .committed_reader(t(6), x(), v(7))
                .build(),
            // Violating tail after a compactable prefix.
            HistoryBuilder::new()
                .committed_writer(t(1), x(), v(1))
                .committed_writer(t(2), x(), v(2))
                .read(t(3), x(), v(1))
                .commit(t(3))
                .build(),
            // Aborts interleaved with commits.
            HistoryBuilder::new()
                .committed_writer(t(1), x(), v(1))
                .write(t(2), x(), v(3))
                .try_abort(t(2))
                .committed_reader(t(3), x(), v(1))
                .build(),
        ];
        for h in &histories {
            let mut plain = OnlineChecker::new();
            let mut compacting = OnlineChecker::new();
            compacting.set_compact_every(Some(1));
            for ev in h.events() {
                let a = plain.push(*ev).unwrap();
                let b = compacting.push(*ev).unwrap();
                assert_eq!(
                    a.is_satisfied(),
                    b.is_satisfied(),
                    "divergence on {ev} of {h:?}"
                );
                assert_eq!(a.is_violated(), b.is_violated(), "divergence on {ev}");
            }
        }
    }

    #[test]
    fn verdict_matches_batch_checker_on_prefixes() {
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_value(t(2), v(0))
            .resp_ok(t(1))
            .commit(t(1))
            .commit(t(2))
            .committed_reader(t(3), x(), v(1))
            .build();
        let mut mon = OnlineChecker::new();
        for (i, ev) in h.events().iter().enumerate() {
            let online = mon.push(*ev).unwrap();
            let batch = DuOpacity::new().check(&h.prefix(i + 1));
            assert_eq!(
                online.is_satisfied(),
                batch.is_satisfied(),
                "divergence at prefix {}",
                i + 1
            );
        }
    }
}
