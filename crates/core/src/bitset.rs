//! A small fixed-capacity bit set used by the serialization search.

/// Fixed-capacity bit set over transaction indices.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set with capacity for `n` indices.
    pub(crate) fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64).max(1)],
        }
    }

    pub(crate) fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub(crate) fn is_subset_of(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        s.remove(64);
        assert!(!s.contains(64));
    }

    #[test]
    fn subset() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(3);
        b.insert(3);
        b.insert(5);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        a.insert(7);
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn zero_capacity_still_valid() {
        let s = BitSet::new(0);
        assert_eq!(s.words().len(), 1);
    }
}
