//! A small fixed-capacity bit set used by the serialization search and
//! the search planner.

/// Fixed-capacity bit set over transaction indices.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set with capacity for `n` indices.
    pub(crate) fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64).max(1)],
        }
    }

    /// Creates a set containing every index in `0..n`.
    pub(crate) fn full(n: usize) -> Self {
        let mut s = BitSet::new(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    pub(crate) fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub(crate) fn is_subset_of(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Adds every element of `other` to `self`. Both sets must have the
    /// same capacity.
    pub(crate) fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.words.len(), other.words.len());
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Removes every element.
    pub(crate) fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Makes `self` a copy of `other`, reusing the existing word buffer
    /// (no allocation when capacities match) — the pooling primitive for
    /// scratch sets that are rebuilt every call.
    pub(crate) fn copy_from(&mut self, other: &BitSet) {
        self.words.clone_from(&other.words);
    }

    /// Number of elements in the set.
    pub(crate) fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the elements in increasing order (word-skipping, so cost
    /// is proportional to the population, not the capacity).
    pub(crate) fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let i = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + i)
            })
        })
    }

    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        s.remove(64);
        assert!(!s.contains(64));
    }

    #[test]
    fn subset() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(3);
        b.insert(3);
        b.insert(5);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        a.insert(7);
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn zero_capacity_still_valid() {
        let s = BitSet::new(0);
        assert_eq!(s.words().len(), 1);
    }

    #[test]
    fn union_with_merges() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        a.insert(1);
        b.insert(65);
        b.insert(129);
        a.union_with(&b);
        assert!(a.contains(1));
        assert!(a.contains(65));
        assert!(a.contains(129));
        assert_eq!(a.count_ones(), 3);
        // Idempotent.
        let before = a.clone();
        a.union_with(&b);
        assert_eq!(a, before);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut s = BitSet::new(200);
        for i in [0, 3, 63, 64, 127, 128, 199] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter_ones().collect();
        assert_eq!(got, vec![0, 3, 63, 64, 127, 128, 199]);
        assert_eq!(got.len(), s.count_ones());
    }

    #[test]
    fn iter_ones_empty() {
        let s = BitSet::new(77);
        assert_eq!(s.iter_ones().count(), 0);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(100);
        s.insert(5);
        s.insert(99);
        s.clear();
        assert_eq!(s.count_ones(), 0);
        assert!(!s.contains(5));
        // Still usable after clearing.
        s.insert(42);
        assert!(s.contains(42));
    }

    #[test]
    fn full_contains_everything() {
        let s = BitSet::full(70);
        assert_eq!(s.count_ones(), 70);
        assert!(s.contains(0));
        assert!(s.contains(69));
        let empty = BitSet::full(0);
        assert_eq!(empty.count_ones(), 0);
    }
}
