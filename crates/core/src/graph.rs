//! Graphviz (DOT) export of a history's precedence structure.
//!
//! The rendered graph shows the relations the serialization search works
//! with: real-time edges (`≺RT`, solid), the value-based reads-from
//! candidates (dashed, labelled with object and value), and — when a
//! witness is supplied — the serialization order as numbered ranks.

use crate::Witness;
use duop_history::{History, Op, Ret};
use std::fmt::Write as _;

/// Renders `h` as a Graphviz `digraph`.
///
/// Real-time edges are transitive-reduced for readability. A transaction
/// node is doubly circled when committed, dashed when aborted in every
/// completion, and annotated with its witness position when `witness` is
/// given.
///
/// # Examples
///
/// ```
/// use duop_core::graph::to_dot;
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
///     .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
///     .build();
/// let dot = to_dot(&h, None);
/// assert!(dot.starts_with("digraph history"));
/// assert!(dot.contains("T1 -> T2"));
/// ```
pub fn to_dot(h: &History, witness: Option<&Witness>) -> String {
    let mut out =
        String::from("digraph history {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n");
    let ids: Vec<_> = h.txn_ids().collect();

    for txn in h.txns() {
        let shape = if txn.is_committed() {
            "doublecircle"
        } else {
            "circle"
        };
        let style = if txn.is_aborted() {
            ", style=dashed"
        } else {
            ""
        };
        let label = match witness.and_then(|w| w.position(txn.id())) {
            Some(pos) => format!("{}\\n#{}", txn.id(), pos + 1),
            None => txn.id().to_string(),
        };
        let _ = writeln!(
            out,
            "  {} [label=\"{}\", shape={shape}{style}];",
            txn.id(),
            label
        );
    }

    // Transitive reduction of ≺RT: keep a→b only if no c with a→c→b.
    for &a in &ids {
        for &b in &ids {
            if a == b || !h.precedes_rt(a, b) {
                continue;
            }
            let redundant = ids
                .iter()
                .any(|&c| c != a && c != b && h.precedes_rt(a, c) && h.precedes_rt(c, b));
            if !redundant {
                let _ = writeln!(out, "  {a} -> {b};");
            }
        }
    }

    // Value-based reads-from candidates: reader ← every transaction whose
    // last write to the object carries the value read.
    for reader in h.txns() {
        for op in reader.ops() {
            let (Op::Read(x), Some(Ret::Value(v))) = (op.op, op.resp) else {
                continue;
            };
            for writer in h.txns() {
                if writer.id() == reader.id() {
                    continue;
                }
                if writer.last_write_to(x) == Some(v) {
                    let _ = writeln!(
                        out,
                        "  {} -> {} [style=dashed, color=gray40, label=\"{x}={v}\"];",
                        writer.id(),
                        reader.id()
                    );
                }
            }
        }
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Criterion, DuOpacity};
    use duop_history::{HistoryBuilder, ObjId, TxnId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn transitive_reduction_drops_implied_edges() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(2))
            .committed_writer(t(3), x(), v(3))
            .build();
        let dot = to_dot(&h, None);
        assert!(dot.contains("T1 -> T2;"));
        assert!(dot.contains("T2 -> T3;"));
        assert!(
            !dot.contains("T1 -> T3;"),
            "implied edge must be reduced:\n{dot}"
        );
    }

    #[test]
    fn reads_from_candidates_are_dashed() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        let dot = to_dot(&h, None);
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("X0=1"));
    }

    #[test]
    fn witness_positions_are_annotated() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        let w = DuOpacity::new().check(&h).into_result().unwrap();
        let dot = to_dot(&h, Some(&w));
        assert!(dot.contains("#1"));
        assert!(dot.contains("#2"));
    }

    #[test]
    fn aborted_transactions_are_dashed_nodes() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .commit_aborted(t(1))
            .build();
        let dot = to_dot(&h, None);
        assert!(dot.contains("style=dashed]"));
    }
}
