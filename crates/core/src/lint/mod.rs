//! Polynomial static analysis over histories: the lint pipeline.
//!
//! Every criterion in this crate is decided by an NP-hard serialization
//! search, yet most violations are refutable by *polynomial* necessary
//! conditions: the deferred-update axioms of Definition 3, read-from
//! existence, and cycles in the must-precede relation. This module runs a
//! registry of such analyses ("rules") over a [`History`] and emits
//! structured [`Diagnostic`]s — rule id, severity, event spans into the
//! history, and a human explanation citing the paper definition.
//!
//! Severities encode soundness:
//!
//! * [`Severity::Error`] — the rule is a proven *necessary condition* for
//!   the criteria its [`Applicability`] names: when it fires, no
//!   serialization can satisfy them. The search prefilter
//!   ([`SearchConfig::prelint`](crate::SearchConfig::prelint)) turns these
//!   into immediate [`Violation::LintRefuted`](crate::Violation) verdicts
//!   without searching; the `lint_differential` suite checks the
//!   implication on generated corpora.
//! * [`Severity::Warning`] — a suspicious shape that *may* still be
//!   serializable (e.g. Figure 2's read from a commit-pending writer is
//!   du-opaque). Never short-circuits a checker.
//! * [`Severity::Note`] — informational (e.g. the history leaves the
//!   unique-writes regime of Theorem 11, so opacity and du-opacity may
//!   diverge).
//!
//! Every rule runs in polynomial time: the pipeline is
//! `O(txns² · reads + events)` overall, dominated by the supplier-set and
//! cycle analyses.

mod context;
mod rules;

use crate::Violation;
use duop_history::History;
use std::fmt;

/// How severe a diagnostic is (see the module docs for the soundness
/// contract each level carries).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A proven refutation of the criteria named by the rule's
    /// [`Applicability`].
    Error,
    /// A suspicious shape that may still be serializable.
    Warning,
    /// Informational.
    Note,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The criterion family a checker runs under, from the lint pipeline's
/// point of view. Determines which `Error`-severity rules may refute it
/// via [`Applicability::refutes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LintScope {
    /// Plain serialization semantics: final-state opacity, opacity (per
    /// prefix), strict serializability (over the committed projection).
    Plain,
    /// Du-opacity (Definition 3): plain semantics plus the deferred-update
    /// local-serialization condition.
    Du,
    /// Read-commit-order opacity (Guerraoui–Henzinger–Singh).
    Rco,
    /// The TMS2 rendering of Section 4.2.
    Tms2,
}

/// Which criterion scopes an `Error`-severity diagnostic refutes.
///
/// Rules restricted to one scope exploit constraints that only that
/// criterion imposes (e.g. du-eligibility); `AllCriteria` rules use only
/// real-time order and value constraints shared by every scope — extra
/// criterion edges can only shrink the solution space, so a refutation of
/// the shared core refutes every scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Applicability {
    /// Refutes every criterion scope.
    AllCriteria,
    /// Refutes only du-opacity ([`LintScope::Du`]).
    DuOpacityOnly,
    /// Refutes only read-commit-order opacity ([`LintScope::Rco`]).
    ReadCommitOrderOnly,
    /// Refutes only TMS2 ([`LintScope::Tms2`]).
    Tms2Only,
}

impl Applicability {
    /// Whether an `Error` with this applicability refutes a checker
    /// running under `scope`.
    pub fn refutes(self, scope: LintScope) -> bool {
        match self {
            Applicability::AllCriteria => true,
            Applicability::DuOpacityOnly => scope == LintScope::Du,
            Applicability::ReadCommitOrderOnly => scope == LintScope::Rco,
            Applicability::Tms2Only => scope == LintScope::Tms2,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Applicability::AllCriteria => "all-criteria",
            Applicability::DuOpacityOnly => "du-opacity-only",
            Applicability::ReadCommitOrderOnly => "read-commit-order-only",
            Applicability::Tms2Only => "tms2-only",
        }
    }
}

impl fmt::Display for Applicability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An event position in the history, labeled with the event's rendering
/// for self-contained display.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Index of the event in the history.
    pub event: usize,
    /// The event's [`Display`](fmt::Display) rendering, e.g. `T1:R(X0)`.
    pub label: String,
}

impl Span {
    pub(crate) fn at(h: &History, event: usize) -> Span {
        Span {
            event,
            label: h.event_label(event).unwrap_or_default(),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event {}: {}", self.event, self.label)
    }
}

/// One finding of the lint pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (see [`rules`]).
    pub rule: &'static str,
    /// Soundness level of the finding.
    pub severity: Severity,
    /// Which criterion scopes an `Error` refutes.
    pub applicability: Applicability,
    /// Human explanation, citing the paper definition the rule encodes.
    pub message: String,
    /// The event the finding is anchored to.
    pub primary: Span,
    /// Related events (e.g. the supplying writer's `tryC` invocation).
    pub secondary: Vec<Span>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.rule, self.message)
    }
}

impl serde::Serialize for Diagnostic {
    fn to_content(&self) -> serde::Content {
        let span = |s: &Span| {
            serde::Content::Map(vec![
                ("event".into(), serde::Content::U64(s.event as u64)),
                ("label".into(), serde::Content::Str(s.label.clone())),
            ])
        };
        serde::Content::Map(vec![
            ("rule".into(), serde::Content::Str(self.rule.into())),
            (
                "severity".into(),
                serde::Content::Str(self.severity.as_str().into()),
            ),
            (
                "applicability".into(),
                serde::Content::Str(self.applicability.as_str().into()),
            ),
            ("message".into(), serde::Content::Str(self.message.clone())),
            ("primary".into(), span(&self.primary)),
            (
                "secondary".into(),
                serde::Content::Seq(self.secondary.iter().map(span).collect()),
            ),
        ])
    }
}

/// The diagnostics one [`lint`] run produced, in severity-then-position
/// order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// The diagnostics, most severe first (ties by primary event index,
    /// then rule id).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Returns `true` if no rule fired.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of `Error`-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// The distinct rule ids that fired, sorted.
    pub fn rule_ids(&self) -> Vec<&'static str> {
        let mut ids: Vec<&'static str> = self.diagnostics.iter().map(|d| d.rule).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The first `Error` whose applicability refutes `scope`, if any.
    pub fn first_error_for(&self, scope: LintScope) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error && d.applicability.refutes(scope))
    }
}

impl serde::Serialize for LintReport {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![(
            "diagnostics".into(),
            serde::Content::Seq(
                self.diagnostics
                    .iter()
                    .map(serde::Serialize::to_content)
                    .collect(),
            ),
        )])
    }
}

/// Registry entry describing one lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable identifier, e.g. `DU002`.
    pub id: &'static str,
    /// Short title.
    pub title: &'static str,
    /// One-line description of what firing means.
    pub summary: &'static str,
    /// The paper grounding: which definition or theorem makes an
    /// emission sound, and why (`duop lint --explain`).
    pub paper: &'static str,
    /// A minimal trace (line format) that fires the rule.
    pub example: &'static str,
}

/// The rule registry, in pipeline order.
pub fn rules() -> &'static [RuleInfo] {
    rules::RULES
}

/// Runs every rule over `h` and collects the findings.
///
/// Polynomial in the history size; never searches for a serialization.
pub fn lint(h: &History) -> LintReport {
    let mut diagnostics = rules::run_all(h);
    diagnostics.sort_by(|a, b| {
        (a.severity, a.primary.event, a.rule).cmp(&(b.severity, b.primary.event, b.rule))
    });
    LintReport { diagnostics }
}

/// The search prefilter: lints `h` and converts the first `Error` that
/// refutes `scope` into a [`Violation::LintRefuted`] for `criterion`.
///
/// Sound by the `Error` contract — each such rule is a proven necessary
/// condition for every criterion its applicability names — so a checker
/// returning this violation instead of searching is verdict-equivalent.
pub(crate) fn prelint(h: &History, scope: LintScope, criterion: &str) -> Option<Violation> {
    let report = lint(h);
    report
        .first_error_for(scope)
        .map(|d| Violation::LintRefuted {
            criterion: criterion.to_owned(),
            diagnostic: Box::new(d.clone()),
        })
}
