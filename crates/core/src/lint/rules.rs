//! The lint rules. Each is a polynomial necessary-condition analysis; the
//! soundness argument for every `Error`-severity emission is spelled out
//! in `DESIGN.md` ("Static analysis: the lint pipeline").

use super::context::{AntiDep, LintCtx};
use super::{Applicability, Diagnostic, RuleInfo, Severity, Span};
use crate::bitset::BitSet;
use crate::plan::topo_order;
use crate::spec::Spec;
use duop_history::{CommitCapability, History, Op, Ret, Value};
use std::collections::HashMap;

pub(super) const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "WF001",
        title: "internal read inconsistency",
        summary: "a read after the transaction's own write returned a different value \
                  (well-formedness / sequential specification, Section 2)",
        paper: "Section 2's sequential specification of a t-object requires every read \
                to return the transaction's own latest preceding write to that object. \
                A history violating this inside one transaction has no legal sequential \
                image for that transaction at all, so every criterion built on \
                equivalence to a legal sequential history (Definitions 3-5) is refuted \
                outright — no serialization search is needed.",
        example: "T1 write X0 1\nT1 ok\nT1 read X0\nT1 val 2\nT1 tryc\nT1 commit\n",
    },
    RuleInfo {
        id: "DU002",
        title: "deferred-update axiom",
        summary: "a value was observed before any writer of it committed (dirty read, \
                  Figure 2 shape); Error under du-opacity when no writer had even \
                  invoked tryC before the read's response (Definition 3(3))",
        paper: "Definition 3(3) (deferred update): in a du-opaque history a read may \
                return a transaction's written value only if that writer's tryC was \
                already invoked when the read responded — deferred-update TMs make \
                writes visible no earlier than commit time. Observing the value before \
                any writer even invoked tryC is therefore a refutation of du-opacity \
                (Error); observing it between tryC and commit is the Figure 2 shape, \
                legal but worth a Warning because it pins the writer's commit.",
        example: "T1 write X0 1\nT1 ok\nT2 read X0\nT2 val 1\nT2 tryc\nT2 commit\n\
                  T1 tryc\nT1 commit\n",
    },
    RuleInfo {
        id: "RF003",
        title: "read-from non-existence",
        summary: "a read returned a non-initial value no committable transaction writes",
        paper: "In every serialization each read returns either the initial value or \
                the latest committed write (Section 2). A non-initial value that no \
                committable transaction ever writes has no possible supplier, so no \
                serialization is legal under any of the criteria (Definitions 3-5) — \
                the strongest and cheapest refutation in the pipeline.",
        example: "T1 write X0 1\nT1 ok\nT1 tryc\nT1 commit\nT2 read X0\nT2 val 9\n\
                  T2 tryc\nT2 commit\n",
    },
    RuleInfo {
        id: "CY004",
        title: "must-precede cycle",
        summary: "the real-time, forced read-from, anti-dependency and criterion edges \
                  form a cycle, so no serialization exists (sound, incomplete)",
        paper: "Every serialization must embed the real-time order (Definition 1), \
                place each read after its only possible supplier, and place a reader \
                of an overwritten value before the overwriter. Each such edge is a \
                necessary condition, so a cycle among them proves no serialization \
                exists — sound for every criterion that demands one, incomplete \
                because only forced edges are drawn. The certifying saturation pass \
                (`duop certify`, DESIGN.md \u{00a7}12) extends this analysis and emits a \
                machine-checkable certificate for the cycle.",
        example: "T1 write X0 1\nT1 ok\nT1 tryc\nT1 commit\nT2 read X0\nT2 val 0\n\
                  T2 tryc\nT2 commit\n",
    },
    RuleInfo {
        id: "AN005",
        title: "lost update / write skew",
        summary: "two transactions each read state the other's committed write destroys: \
                  an anti-dependency two-cycle no serialization can order",
        paper: "If T1 read a value that T2's committed write overwrote, any legal \
                serialization puts T1 before T2 (else T1 would have seen T2's write); \
                symmetrically for T2 against T1. Both edges at once — the classic \
                lost-update / write-skew shape — form an anti-dependency two-cycle, \
                so no order satisfies Definitions 3-5. This is the two-transaction \
                core of CY004, reported with both read/write event spans.",
        example: "T1 read X0\nT1 val 0\nT2 read X1\nT2 val 0\nT1 write X1 1\nT1 ok\n\
                  T2 write X0 1\nT2 ok\nT1 tryc\nT1 commit\nT2 tryc\nT2 commit\n",
    },
    RuleInfo {
        id: "RCO006",
        title: "read-commit-order inversion",
        summary: "a reader is forced after the sole writer of a value it read, yet one of \
                  its reads responded before that writer's tryC (Guerraoui\u{2013}Henzinger\u{2013}Singh)",
        paper: "The read-commit-order criterion (Guerraoui\u{2013}Henzinger\u{2013}Singh; Section 4.1) \
                strengthens du-opacity: a reader serialized after a writer must have \
                *all* its reads respond after that writer's tryC. When the reader is \
                forced after the sole possible supplier of some value it read, but \
                another of its reads responded before that supplier's tryC, \
                read-commit-order opacity is refuted (Error scoped to rco).",
        example: "T2 read X1\nT2 val 0\nT1 write X0 1\nT1 ok\nT1 write X1 1\nT1 ok\n\
                  T1 tryc\nT1 commit\nT2 read X0\nT2 val 1\nT2 tryc\nT2 commit\n",
    },
    RuleInfo {
        id: "UW007",
        title: "non-unique writes",
        summary: "several committable writers could supply one read, leaving the \
                  unique-writes regime of Theorem 11",
        paper: "Theorem 11's polynomial decision procedure assumes unique writes: \
                every value is written to each object by at most one committable \
                transaction, so each read's supplier is forced. Two committable \
                writers of the same value to the same object leave that regime — the \
                checker falls back to the exponential search and the degradation \
                ladder's Theorem 11 fast path no longer applies. A note, never a \
                refutation.",
        example: "T1 write X0 5\nT1 ok\nT1 tryc\nT1 commit\nT2 write X0 5\nT2 ok\n\
                  T2 tryc\nT2 commit\nT3 read X0\nT3 val 5\nT3 tryc\nT3 commit\n",
    },
];

pub(super) fn run_all(h: &History) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    match LintCtx::build(h) {
        Some(ctx) => {
            rf003(&ctx, &mut out);
            du002(&ctx, &mut out);
            an005(&ctx, &mut out);
            cy004(&ctx, &mut out);
            rco006(&ctx, &mut out);
            uw007(&ctx, &mut out);
        }
        // Spec construction fails only on internal read inconsistency;
        // WF001 reconstructs the offending pair for the spans. The other
        // rules need the spec, and this Error already refutes everything.
        None => wf001(h, &mut out),
    }
    out
}

/// WF001: a read after the transaction's own write to the same object
/// returned a different value. Sound for every criterion: in any
/// equivalent sequential history the read must return the transaction's
/// own latest preceding write (Section 2's sequential specification), so
/// no serialization is legal. Mirrors the precheck in `Spec::build`.
fn wf001(h: &History, out: &mut Vec<Diagnostic>) {
    for t in h.txns() {
        let mut own: HashMap<duop_history::ObjId, (Value, usize)> = HashMap::new();
        for op in t.ops() {
            match (op.op, op.resp) {
                (Op::Read(x), Some(Ret::Value(got))) => {
                    if let Some(&(expected, w_inv)) = own.get(&x) {
                        if got != expected {
                            let resp = op.resp_index.expect("complete read has response");
                            out.push(Diagnostic {
                                rule: "WF001",
                                severity: Severity::Error,
                                applicability: Applicability::AllCriteria,
                                message: format!(
                                    "{} read {got} from {x} after writing {expected} to it: \
                                     every equivalent sequential history violates the \
                                     sequential specification (Section 2)",
                                    t.id()
                                ),
                                primary: Span::at(h, resp),
                                secondary: vec![Span::at(h, w_inv)],
                            });
                            return;
                        }
                    }
                }
                (Op::Write(x, v), Some(Ret::Ok)) => {
                    own.insert(x, (v, op.inv_index));
                }
                _ => {}
            }
        }
    }
}

/// RF003: a non-initial value with an empty plain supplier set. Sound for
/// every criterion: no committable transaction writes the value, and `T_0`
/// supplies only the initial value, so the read is illegal in every
/// serialization. Promoted out of `plan.rs` (`Violation::MissingWriter`).
fn rf003(ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (slot, r) in ctx.spec.reads.iter().enumerate() {
        if r.value == Value::INITIAL || ctx.base_suppliers[slot].count_ones() > 0 {
            continue;
        }
        out.push(Diagnostic {
            rule: "RF003",
            severity: Severity::Error,
            applicability: Applicability::AllCriteria,
            message: format!(
                "{} read {} from {}, but no transaction capable of committing writes \
                 that value: the read can never be legal (read-from non-existence)",
                ctx.spec.txns[r.txn].id, r.value, ctx.spec.objs[r.obj],
            ),
            primary: Span::at(ctx.h, r.resp_index),
            secondary: Vec::new(),
        });
    }
}

/// DU002, two emissions sharing the rule id:
///
/// * **Warning (all criteria)** — dirty read: the value was observed
///   before any writer of it committed in `H` (Figure 2 shape). Not an
///   error: Figure 2 itself is du-opaque (the completion may commit the
///   pending writer), so this shape alone refutes nothing.
/// * **Error (du-opacity only)** — the du supplier set is empty while the
///   plain one is not: no writer of the value invoked `tryC` before the
///   read's response, so the local serialization `S^{k,X}` of
///   Definition 3(3) contains no writer of the value and the read is
///   illegal in it, whatever the serialization order. Necessary condition
///   for du-opacity; plain criteria are untouched (the plain supplier can
///   still serve).
fn du002(ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (slot, r) in ctx.spec.reads.iter().enumerate() {
        if r.value == Value::INITIAL || ctx.base_suppliers[slot].count_ones() == 0 {
            continue; // RF003 covers the empty-supplier case.
        }
        let reader = ctx.spec.txns[r.txn].id;
        let obj = ctx.spec.objs[r.obj];
        let committed_before = ctx.base_suppliers[slot]
            .iter_ones()
            .any(|j| ctx.commit_resp[j].is_some_and(|resp| resp < r.resp_index));
        if !committed_before {
            let w = ctx.base_suppliers[slot]
                .iter_ones()
                .next()
                .expect("non-empty");
            let mut secondary = Vec::new();
            if let Some(inv) = ctx.final_write_inv(w, r.obj) {
                secondary.push(Span::at(ctx.h, inv));
            }
            if let Some(inv) = ctx.spec.txns[w].try_commit_inv {
                secondary.push(Span::at(ctx.h, inv));
            }
            out.push(Diagnostic {
                rule: "DU002",
                severity: Severity::Warning,
                applicability: Applicability::AllCriteria,
                message: format!(
                    "{reader} observed {} from {obj} before any writer of that value \
                     committed: a deferred-update TM only reveals a write at commit \
                     (Definition 3; the Figure 2 shape)",
                    r.value,
                ),
                primary: Span::at(ctx.h, r.resp_index),
                secondary,
            });
        }
        if ctx.du_suppliers[slot].count_ones() == 0 {
            let w = ctx.base_suppliers[slot]
                .iter_ones()
                .next()
                .expect("non-empty");
            let secondary = ctx
                .final_write_inv(w, r.obj)
                .map(|inv| Span::at(ctx.h, inv))
                .into_iter()
                .collect();
            out.push(Diagnostic {
                rule: "DU002",
                severity: Severity::Error,
                applicability: Applicability::DuOpacityOnly,
                message: format!(
                    "{reader} read {} from {obj}, but no committable writer of that value \
                     invoked tryC before the read's response: the local serialization \
                     S^{{k,X}} of Definition 3(3) has no supplier",
                    r.value,
                ),
                primary: Span::at(ctx.h, r.resp_index),
                secondary,
            });
        }
    }
}

/// Forced read-from edges: a non-initial read with exactly one supplier
/// must be served by it, so the supplier precedes the reader in every
/// satisfying serialization (the planner's singleton-candidate argument).
fn add_forced(preds: &mut [BitSet], suppliers: &[BitSet], spec: &Spec) {
    for (slot, r) in spec.reads.iter().enumerate() {
        if r.value == Value::INITIAL || suppliers[slot].count_ones() != 1 {
            continue;
        }
        let w = suppliers[slot].iter_ones().next().expect("singleton");
        if w != r.txn {
            preds[r.txn].insert(w);
        }
    }
}

/// CY004: polynomial cycle detection over the must-precede relation. The
/// base graph collects edges that hold in every satisfying serialization
/// of *any* criterion: real-time order, forced singleton read-from edges,
/// and anti-dependency edges (see [`LintCtx::anti_deps`]); per-scope
/// graphs add the du-eligible forced edges (Definition 3(3)), the
/// unconditional read-commit-order edges, and the TMS2 commit-order edges.
/// A cycle in a graph refutes exactly the scopes whose constraints it
/// uses. Sound but incomplete: an acyclic graph proves nothing.
fn cy004(ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
    let mut base: Vec<BitSet> = ctx.spec.rt_preds.clone();
    add_forced(&mut base, &ctx.base_suppliers, &ctx.spec);
    for d in &ctx.anti_deps {
        base[d.writer].insert(d.reader);
    }
    if let Err(cyc) = topo_order(&base) {
        out.push(cycle_diag(
            ctx,
            &cyc,
            Applicability::AllCriteria,
            "real-time, forced read-from and anti-dependency edges",
        ));
        // The scope graphs are supersets: they would re-report the same
        // cycle with a narrower applicability.
        return;
    }

    let mut du = base.clone();
    add_forced(&mut du, &ctx.du_suppliers, &ctx.spec);
    if let Err(cyc) = topo_order(&du) {
        out.push(cycle_diag(
            ctx,
            &cyc,
            Applicability::DuOpacityOnly,
            "the base edges plus du-eligible forced read-from edges (Definition 3(3))",
        ));
    }

    // Read-commit-order edges are unconditional only for writers already
    // committed in `H`; for a commit-pending writer the serialization may
    // abort it, voiding the edge.
    let mut rco = base.clone();
    for (reader, writer) in crate::criteria::rco_edges(ctx.h) {
        if let (Some(&ir), Some(&iw)) = (ctx.spec.index.get(&reader), ctx.spec.index.get(&writer)) {
            if ir != iw && ctx.spec.txns[iw].capability == CommitCapability::Committed {
                rco[iw].insert(ir);
            }
        }
    }
    if let Err(cyc) = topo_order(&rco) {
        out.push(cycle_diag(
            ctx,
            &cyc,
            Applicability::ReadCommitOrderOnly,
            "the base edges plus read-commit-order edges (Section 4.2)",
        ));
    }

    // TMS2 edges only relate writers already committed in `H`.
    let mut tms2 = base.clone();
    for (writer, reader) in crate::criteria::tms2_edges(ctx.h) {
        if let (Some(&iw), Some(&ir)) = (ctx.spec.index.get(&writer), ctx.spec.index.get(&reader)) {
            if iw != ir {
                tms2[ir].insert(iw);
            }
        }
    }
    if let Err(cyc) = topo_order(&tms2) {
        out.push(cycle_diag(
            ctx,
            &cyc,
            Applicability::Tms2Only,
            "the base edges plus TMS2 commit-order edges (Section 4.2)",
        ));
    }
}

fn cycle_diag(
    ctx: &LintCtx<'_>,
    cycle: &[usize],
    applicability: Applicability,
    edges: &str,
) -> Diagnostic {
    let names: Vec<String> = cycle
        .iter()
        .map(|&i| ctx.spec.txns[i].id.to_string())
        .collect();
    let spans: Vec<usize> = cycle
        .iter()
        .filter_map(|&i| {
            let id = ctx.spec.txns[i].id;
            ctx.h.txn(id).map(|t| t.first_event_index())
        })
        .collect();
    let (first, rest) = spans.split_first().expect("cycle is non-empty");
    Diagnostic {
        rule: "CY004",
        severity: Severity::Error,
        applicability,
        message: format!(
            "the must-precede relation ({edges}) is cyclic involving {}: every edge is \
             a necessary condition, so no serialization exists",
            names.join(", "),
        ),
        primary: Span::at(ctx.h, *first),
        secondary: rest.iter().take(4).map(|&e| Span::at(ctx.h, e)).collect(),
    }
}

/// AN005: an anti-dependency two-cycle — each transaction read state the
/// other's committed write destroys, so each must precede the other.
/// Classified as *lost update* when both reads are on the same object and
/// *write skew* otherwise. Sound for every criterion (both edges are
/// necessary conditions; see [`LintCtx::anti_deps`]); CY004's base graph
/// finds the same two-cycle, AN005 names the anomaly.
fn an005(ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (i, a) in ctx.anti_deps.iter().enumerate() {
        for b in &ctx.anti_deps[i + 1..] {
            if a.reader != b.writer || a.writer != b.reader {
                continue;
            }
            out.push(an005_diag(ctx, a, b));
        }
    }
}

fn an005_diag(ctx: &LintCtx<'_>, a: &AntiDep, b: &AntiDep) -> Diagnostic {
    let (ta, tb) = (ctx.spec.txns[a.reader].id, ctx.spec.txns[b.reader].id);
    let message = if a.obj == b.obj {
        format!(
            "lost update on {}: {ta} and {tb} each read the initial value and committed \
             an overwrite, so each must serialize before the other's write took effect \
             \u{2014} no order satisfies both",
            ctx.spec.objs[a.obj],
        )
    } else {
        format!(
            "write skew between {ta} (read {}) and {tb} (read {}): each read the initial \
             value of the object the other committed a write to, so each must precede \
             the other \u{2014} no order satisfies both",
            ctx.spec.objs[a.obj], ctx.spec.objs[b.obj],
        )
    };
    Diagnostic {
        rule: "AN005",
        severity: Severity::Error,
        applicability: Applicability::AllCriteria,
        message,
        primary: Span::at(ctx.h, ctx.spec.reads[a.slot].resp_index),
        secondary: vec![Span::at(ctx.h, ctx.spec.reads[b.slot].resp_index)],
    }
}

/// RCO006: read-commit-order inversion. When a read has exactly one
/// committable supplier `w` (so `w → reader` is forced in every satisfying
/// serialization) and `w` is committed in `H`, but some read by the same
/// reader of an object `w` writes responded before `tryC_w`, then
/// read-commit-order demands `reader → w` — a contradiction, so the
/// history is not RCO-opaque (Guerraoui–Henzinger–Singh, Section 4.2).
/// Fires on Figure 5 (du-opaque but not RCO-opaque).
fn rco006(ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (slot, r) in ctx.spec.reads.iter().enumerate() {
        if r.value == Value::INITIAL || ctx.base_suppliers[slot].count_ones() != 1 {
            continue;
        }
        let w = ctx.base_suppliers[slot]
            .iter_ones()
            .next()
            .expect("singleton");
        if ctx.spec.txns[w].capability != CommitCapability::Committed {
            continue;
        }
        let Some(w_inv) = ctx.spec.txns[w].try_commit_inv else {
            continue;
        };
        let inverted = ctx.spec.txns[r.txn].external_reads.iter().find(|&&s2| {
            let r2 = &ctx.spec.reads[s2];
            r2.resp_index < w_inv && ctx.spec.txns[w].writes.iter().any(|&(o, _)| o == r2.obj)
        });
        let Some(&s2) = inverted else {
            continue;
        };
        let reader = ctx.spec.txns[r.txn].id;
        let writer = ctx.spec.txns[w].id;
        out.push(Diagnostic {
            rule: "RCO006",
            severity: Severity::Error,
            applicability: Applicability::ReadCommitOrderOnly,
            message: format!(
                "{reader} must follow {writer}, the only committable writer of {} to {}, \
                 yet {reader}'s read of {} responded before tryC of {writer}: \
                 read-commit-order demands {reader} before {writer} (Section 4.2)",
                r.value, ctx.spec.objs[r.obj], ctx.spec.objs[ctx.spec.reads[s2].obj],
            ),
            primary: Span::at(ctx.h, r.resp_index),
            secondary: vec![
                Span::at(ctx.h, ctx.spec.reads[s2].resp_index),
                Span::at(ctx.h, w_inv),
            ],
        });
    }
}

/// UW007 (note): a read whose value has two or more committable writers.
/// The history leaves the unique-writes regime of Theorem 11, under which
/// opacity and du-opacity coincide — criteria may diverge here.
fn uw007(ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (slot, r) in ctx.spec.reads.iter().enumerate() {
        let count = ctx.base_suppliers[slot].count_ones();
        if r.value == Value::INITIAL || count < 2 {
            continue;
        }
        let secondary: Vec<Span> = ctx.base_suppliers[slot]
            .iter_ones()
            .take(2)
            .filter_map(|w| ctx.final_write_inv(w, r.obj))
            .map(|inv| Span::at(ctx.h, inv))
            .collect();
        out.push(Diagnostic {
            rule: "UW007",
            severity: Severity::Note,
            applicability: Applicability::AllCriteria,
            message: format!(
                "{count} committable writers of {} to {} could supply {}'s read: outside \
                 the unique-writes regime of Theorem 11, opacity and du-opacity may \
                 diverge",
                r.value, ctx.spec.objs[r.obj], ctx.spec.txns[r.txn].id,
            ),
            primary: Span::at(ctx.h, r.resp_index),
            secondary,
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::lint::{lint, rules, Applicability, LintScope, Severity};
    use duop_history::{HistoryBuilder, ObjId, TxnId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn y() -> ObjId {
        ObjId::new(1)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn registry_ids_are_unique_and_stable() {
        let ids: Vec<&str> = rules().iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec!["WF001", "DU002", "RF003", "CY004", "AN005", "RCO006", "UW007"]
        );
    }

    #[test]
    fn registry_examples_parse_and_fire_their_rule() {
        // The `--explain` examples are load-bearing documentation: each
        // must be a well-formed trace whose lint report includes its own
        // rule, with non-empty grounding text.
        for rule in rules() {
            assert!(!rule.paper.is_empty(), "{}: empty paper grounding", rule.id);
            let h = duop_history::trace::parse_trace(rule.example)
                .unwrap_or_else(|e| panic!("{}: example does not parse: {e}", rule.id));
            let report = lint(&h);
            assert!(
                report.rule_ids().contains(&rule.id),
                "{}: example does not fire the rule (fired: {:?})",
                rule.id,
                report.rule_ids()
            );
        }
    }

    #[test]
    fn wf001_fires_on_internal_inconsistency() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(3))
            .read(t(1), x(), v(4))
            .commit(t(1))
            .build();
        let report = lint(&h);
        assert_eq!(report.rule_ids(), vec!["WF001"]);
        let d = &report.diagnostics()[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.primary.event, 3);
        assert_eq!(d.secondary[0].event, 0);
        assert!(d.applicability.refutes(LintScope::Plain));
    }

    #[test]
    fn rf003_fires_on_orphan_value() {
        let h = HistoryBuilder::new()
            .committed_reader(t(1), x(), v(7))
            .build();
        let report = lint(&h);
        assert_eq!(report.rule_ids(), vec!["RF003"]);
        assert_eq!(report.error_count(), 1);
    }

    #[test]
    fn du002_warns_on_commit_pending_supplier() {
        // Figure 2 shape: du-opaque, so the dirty read must stay a Warning.
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .read(t(2), x(), v(1))
            .commit(t(2))
            .build();
        let report = lint(&h);
        assert_eq!(report.rule_ids(), vec!["DU002"]);
        assert_eq!(report.error_count(), 0);
        let d = &report.diagnostics()[0];
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.primary.event, 4, "anchors the read's response");
        assert!(!d.secondary.is_empty(), "names the writer's events");
    }

    #[test]
    fn du002_error_when_no_writer_invoked_tryc() {
        // Figure 3 shape: T1 commits only after T2's read responded.
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .read(t(2), x(), v(1))
            .commit(t(2))
            .commit(t(1))
            .build();
        let report = lint(&h);
        assert_eq!(report.rule_ids(), vec!["CY004", "DU002", "RCO006"]);
        let err = report.first_error_for(LintScope::Du).expect("du error");
        assert_eq!(err.rule, "DU002");
        assert_eq!(err.applicability, Applicability::DuOpacityOnly);
        // Plain final-state opacity is untouched by the du-only findings.
        assert!(report.first_error_for(LintScope::Plain).is_none());
    }

    #[test]
    fn cy004_catches_stale_read_cycle() {
        // T2 runs entirely after T1 committed 1, yet reads 0: rt edge
        // T1 -> T2 plus anti-dependency T2 -> T1.
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .read(t(2), x(), v(0))
            .commit(t(2))
            .build();
        let report = lint(&h);
        assert_eq!(report.rule_ids(), vec!["CY004"]);
        let d = &report.diagnostics()[0];
        assert_eq!(d.applicability, Applicability::AllCriteria);
        assert!(d.message.contains("T1") && d.message.contains("T2"));
    }

    #[test]
    fn an005_names_lost_update() {
        // Classic lost update: both read X=0 concurrently, both commit
        // an overwrite.
        let h = HistoryBuilder::new()
            .inv_read(t(1), x())
            .inv_read(t(2), x())
            .resp_value(t(1), v(0))
            .resp_value(t(2), v(0))
            .inv_write(t(1), x(), v(1))
            .inv_write(t(2), x(), v(2))
            .resp_ok(t(1))
            .resp_ok(t(2))
            .inv_try_commit(t(1))
            .inv_try_commit(t(2))
            .resp_committed(t(1))
            .resp_committed(t(2))
            .build();
        let report = lint(&h);
        let ids = report.rule_ids();
        assert!(ids.contains(&"AN005"), "ids: {ids:?}");
        assert!(ids.contains(&"CY004"), "ids: {ids:?}");
        let an = report
            .diagnostics()
            .iter()
            .find(|d| d.rule == "AN005")
            .unwrap();
        assert!(an.message.contains("lost update"));
    }

    #[test]
    fn an005_names_write_skew() {
        let h = HistoryBuilder::new()
            .inv_read(t(1), x())
            .inv_read(t(2), y())
            .resp_value(t(1), v(0))
            .resp_value(t(2), v(0))
            .inv_write(t(1), y(), v(1))
            .inv_write(t(2), x(), v(2))
            .resp_ok(t(1))
            .resp_ok(t(2))
            .inv_try_commit(t(1))
            .inv_try_commit(t(2))
            .resp_committed(t(1))
            .resp_committed(t(2))
            .build();
        let an = lint(&h)
            .diagnostics()
            .iter()
            .find(|d| d.rule == "AN005")
            .cloned()
            .expect("write skew detected");
        assert!(an.message.contains("write skew"));
    }

    #[test]
    fn rco006_fires_on_figure5_shape() {
        // Figure 5: T2 reads X=1 from T1, T3 overwrites X and writes Y=1,
        // T2 then reads Y=1 — forced T3 -> T2 but rco demands T2 -> T3.
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .read(t(2), x(), v(1))
            .write(t(3), x(), v(2))
            .write(t(3), y(), v(1))
            .commit(t(3))
            .read(t(2), y(), v(1))
            .build();
        let report = lint(&h);
        let ids = report.rule_ids();
        assert!(ids.contains(&"RCO006"), "ids: {ids:?}");
        // Only rco-scoped errors: the history is du-opaque.
        assert!(report.first_error_for(LintScope::Du).is_none());
        assert!(report.first_error_for(LintScope::Rco).is_some());
    }

    #[test]
    fn uw007_notes_ambiguous_suppliers() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(1))
            .committed_reader(t(3), x(), v(1))
            .build();
        let report = lint(&h);
        assert_eq!(report.rule_ids(), vec!["UW007"]);
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.diagnostics()[0].severity, Severity::Note);
    }

    #[test]
    fn diagnostics_sort_errors_first() {
        // A history with a Note (two suppliers) and an Error (orphan).
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_writer(t(2), x(), v(1))
            .committed_reader(t(3), x(), v(1))
            .committed_reader(t(4), x(), v(9))
            .build();
        let report = lint(&h);
        let severities: Vec<Severity> = report.diagnostics().iter().map(|d| d.severity).collect();
        let mut sorted = severities.clone();
        sorted.sort();
        assert_eq!(severities, sorted);
        assert_eq!(report.diagnostics()[0].severity, Severity::Error);
    }

    #[test]
    fn clean_history_lints_clean() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        assert!(lint(&h).is_empty());
    }

    #[test]
    fn json_form_carries_rule_and_spans() {
        let h = HistoryBuilder::new()
            .committed_reader(t(1), x(), v(7))
            .build();
        let report = lint(&h);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"rule\":\"RF003\""), "json: {json}");
        assert!(json.contains("\"event\":"), "json: {json}");
        assert!(json.contains("\"label\":"), "json: {json}");
    }
}
