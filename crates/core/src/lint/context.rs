//! Shared preprocessing for the lint rules: the indexed [`Spec`] plus
//! per-read supplier sets and the anti-dependency edges only the lint
//! pipeline derives.

use crate::bitset::BitSet;
use crate::plan::supplier_sets;
use crate::spec::Spec;
use duop_history::{CommitCapability, History, Op, Ret, Value};

/// One anti-dependency edge: `reader` must precede `writer` in every
/// satisfying serialization (see [`LintCtx::anti_deps`]).
#[derive(Clone, Copy, Debug)]
pub(super) struct AntiDep {
    /// Index (into [`Spec::txns`]) of the transaction whose read forces
    /// the edge.
    pub reader: usize,
    /// Index of the committed writer the reader must precede.
    pub writer: usize,
    /// Interned object index of the read.
    pub obj: usize,
    /// Slot into [`Spec::reads`] of the forcing read.
    pub slot: usize,
}

/// Everything the rules share: built once per [`super::lint`] run.
pub(super) struct LintCtx<'a> {
    pub h: &'a History,
    pub spec: Spec,
    /// Per transaction (by spec index): the event index of its `C_k`
    /// response, when committed in `H`.
    pub commit_resp: Vec<Option<usize>>,
    /// Du-mode supplier sets per read slot: committable writers of the
    /// read's value whose `tryC` was invoked before the read's response.
    pub du_suppliers: Vec<BitSet>,
    /// Plain supplier sets per read slot: committable writers of the
    /// read's value, regardless of `tryC` timing.
    pub base_suppliers: Vec<BitSet>,
    /// Anti-dependency edges, sound for *every* criterion scope: when an
    /// external read returns the initial value and no committable
    /// transaction other than the reader finally writes the initial value
    /// back ("no restorer"), then once any committed writer of the object
    /// is serialized before the reader, the object's value differs from
    /// the initial value forever — so the reader must precede every
    /// committed writer of the object. Restricted to `Committed` targets
    /// (a pending writer may abort, voiding the edge) and to initial-value
    /// reads (a non-initial value can be re-supplied, so the analogous
    /// generalization would be unsound).
    pub anti_deps: Vec<AntiDep>,
}

impl<'a> LintCtx<'a> {
    /// Builds the context; `None` when [`Spec::build`] itself rejects the
    /// history (internal read inconsistency), which rule `WF001` reports
    /// separately.
    pub(super) fn build(h: &'a History) -> Option<Self> {
        let spec = Spec::build(h).ok()?;
        let (_, du_suppliers) = supplier_sets(&spec, true);
        let (_, base_suppliers) = supplier_sets(&spec, false);

        // Spec::build indexes transactions in h.txns() order, so zipping
        // the two iterations lines up.
        let commit_resp: Vec<Option<usize>> = h
            .txns()
            .map(|t| {
                t.ops()
                    .iter()
                    .find(|o| o.op.is_try_commit() && o.resp == Some(Ret::Committed))
                    .and_then(|o| o.resp_index)
            })
            .collect();

        let mut anti_deps = Vec::new();
        for (slot, r) in spec.reads.iter().enumerate() {
            if r.value != Value::INITIAL {
                continue;
            }
            let restorer = spec.txns.iter().enumerate().any(|(j, t)| {
                j != r.txn
                    && t.capability != CommitCapability::NeverCommitted
                    && t.writes
                        .iter()
                        .any(|&(o, v)| o == r.obj && v == Value::INITIAL)
            });
            if restorer {
                continue;
            }
            for (j, t) in spec.txns.iter().enumerate() {
                if j != r.txn
                    && t.capability == CommitCapability::Committed
                    && t.writes.iter().any(|&(o, _)| o == r.obj)
                {
                    anti_deps.push(AntiDep {
                        reader: r.txn,
                        writer: j,
                        obj: r.obj,
                        slot,
                    });
                }
            }
        }

        Some(LintCtx {
            h,
            spec,
            commit_resp,
            du_suppliers,
            base_suppliers,
            anti_deps,
        })
    }

    /// Event index of transaction `txn_idx`'s final write invocation to
    /// interned object `obj_idx`, if any.
    pub(super) fn final_write_inv(&self, txn_idx: usize, obj_idx: usize) -> Option<usize> {
        let id = self.spec.txns[txn_idx].id;
        let obj = self.spec.objs[obj_idx];
        let t = self.h.txn(id)?;
        t.ops().iter().rev().find_map(|o| match (o.op, o.resp) {
            (Op::Write(x, _), Some(Ret::Ok)) if x == obj => Some(o.inv_index),
            _ => None,
        })
    }
}
