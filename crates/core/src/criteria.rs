//! The correctness criteria of the paper, as checkers.
//!
//! | Type | Paper definition |
//! |------|------------------|
//! | [`FinalStateOpacity`] | Definition 4 (Guerraoui & Kapalka) |
//! | [`Opacity`] | Definition 5: every finite prefix is final-state opaque |
//! | [`DuOpacity`] | Definition 3: opacity + deferred-update local serializations |
//! | [`ReadCommitOrderOpacity`] | Guerraoui–Henzinger–Singh (DISC'08), Section 4.2 |
//! | [`Tms2`] | Doherty–Groves–Luchangco–Moir, as rendered informally in Section 4.2 |
//! | [`StrictSerializability`] | baseline: final-state opacity of the committed projection |

use crate::search::{
    search_serialization, search_serialization_with_stats, Query, SearchConfig, SearchStats,
};
use crate::{Verdict, Violation};
use duop_history::{EventKind, History, TxnId};

/// Which criterion a witness certifies; consumed by
/// [`check_witness`](crate::check_witness).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CriterionKind {
    /// Definition 4.
    FinalStateOpacity,
    /// Definition 3.
    DuOpacity,
    /// The TMS2 rendering of Section 4.2.
    Tms2,
    /// The read-commit-order definition of Section 4.2.
    ReadCommitOrder,
}

/// A decidable transactional-memory correctness criterion.
///
/// Implementations answer membership queries for single histories. All of
/// them attach a [`Witness`](crate::Witness) to positive answers that
/// [`check_witness`](crate::check_witness) can validate independently.
pub trait Criterion {
    /// Human-readable criterion name.
    fn name(&self) -> &'static str;

    /// Decides whether `h` satisfies the criterion.
    fn check(&self, h: &History) -> Verdict;
}

macro_rules! criterion_struct {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Debug, Default)]
        pub struct $name {
            cfg: SearchConfig,
        }

        impl $name {
            /// Creates the checker with default search configuration.
            pub fn new() -> Self {
                Self::default()
            }

            /// Creates the checker with an explicit search configuration.
            pub fn with_config(cfg: SearchConfig) -> Self {
                Self { cfg }
            }
        }
    };
}

criterion_struct! {
    /// Final-state opacity (Definition 4): there is a legal t-complete
    /// t-sequential history, equivalent to a completion of `H`, that
    /// respects the real-time order of `H`.
    ///
    /// Not prefix-closed (Figure 3); see [`Opacity`] for the safety
    /// closure.
    ///
    /// # Examples
    ///
    /// ```
    /// use duop_core::{Criterion, FinalStateOpacity};
    /// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
    ///
    /// let h = HistoryBuilder::new()
    ///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
    ///     .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
    ///     .build();
    /// assert!(FinalStateOpacity::new().check(&h).is_satisfied());
    /// ```
    FinalStateOpacity
}

impl FinalStateOpacity {
    /// As [`Criterion::check`], additionally returning the search
    /// counters.
    pub fn check_with_stats(&self, h: &History) -> (Verdict, SearchStats) {
        search_serialization_with_stats(
            h,
            &Query {
                name: "final-state opacity",
                deferred_update: false,
                extra_edges: Vec::new(),
                commit_edges: Vec::new(),
                lint_scope: crate::lint::LintScope::Plain,
            },
            &self.cfg,
        )
    }
}

impl Criterion for FinalStateOpacity {
    fn name(&self) -> &'static str {
        "final-state opacity"
    }

    fn check(&self, h: &History) -> Verdict {
        self.check_with_stats(h).0
    }
}

criterion_struct! {
    /// Opacity (Definition 5): every finite prefix of the history is
    /// final-state opaque.
    ///
    /// Strictly weaker than [`DuOpacity`] (Theorem 10; Figure 4 separates
    /// them) and equal to it under unique writes (Theorem 11).
    ///
    /// # Examples
    ///
    /// ```
    /// use duop_core::{Criterion, Opacity};
    /// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
    ///
    /// let h = HistoryBuilder::new()
    ///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
    ///     .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
    ///     .build();
    /// assert!(Opacity::new().check(&h).is_satisfied());
    /// ```
    Opacity
}

impl Criterion for Opacity {
    fn name(&self) -> &'static str {
        "opacity"
    }

    fn check(&self, h: &History) -> Verdict {
        // Only prefixes ending in a response event need checking: extending
        // a final-state-opaque prefix by a single *invocation* adds no
        // completed operations and no legality constraints — the incomplete
        // operation is answered `A_k` (or, for `tryC`, may be answered
        // `A_k`) by a completion, reproducing a serialization of the
        // shorter prefix — so final-state opacity is preserved.
        //
        // Fast path: if the full history is final-state opaque, the
        // Lemma 1-style restriction of its witness often already
        // serializes each prefix; validating a candidate is much cheaper
        // than searching. Final-state opacity is NOT prefix-closed
        // (Figure 3), so a failed validation falls back to a real search.
        let fso = FinalStateOpacity::with_config(self.cfg.clone());
        let full = if h.is_empty() {
            Verdict::Satisfied(crate::Witness::new(Vec::new(), Default::default()))
        } else {
            fso.check(h)
        };
        let full_witness = full.witness().cloned();
        for end in 1..=h.len() {
            let is_resp = matches!(h.events()[end - 1].kind, EventKind::Resp(_));
            if !is_resp && end != h.len() {
                continue;
            }
            let prefix = h.prefix(end);
            if let Some(w) = &full_witness {
                let candidate = crate::lemmas::restrict_witness(h, w, end);
                if crate::check_witness(&prefix, &candidate, CriterionKind::FinalStateOpacity)
                    .is_ok()
                {
                    if end == h.len() {
                        return Verdict::Satisfied(candidate);
                    }
                    continue;
                }
            }
            match fso.check(&prefix) {
                Verdict::Satisfied(w) => {
                    if end == h.len() {
                        return Verdict::Satisfied(w);
                    }
                }
                Verdict::Violated(v) => {
                    return Verdict::Violated(Violation::PrefixNotFinalStateOpaque {
                        prefix_len: end,
                        cause: Box::new(v),
                    });
                }
                Verdict::Unknown {
                    explored,
                    reason,
                    partial,
                } => {
                    return Verdict::Unknown {
                        explored,
                        reason,
                        partial,
                    }
                }
            }
        }
        // Empty history: trivially opaque with the empty witness.
        Verdict::Satisfied(crate::Witness::new(Vec::new(), Default::default()))
    }
}

criterion_struct! {
    /// DU-opacity (Definition 3): final-state opacity where, additionally,
    /// every `read_k(X)` is legal in its *local serialization*
    /// `S^{k,X}_H` — the prefix of `S` up to the read's response with all
    /// transactions that had not invoked `tryC` in `H` by then removed.
    ///
    /// This is the paper's contribution: a prefix-closed (Corollary 2)
    /// strengthening of opacity that explicitly enforces deferred-update
    /// semantics — no transaction reads from a transaction that has not
    /// started committing.
    ///
    /// # Examples
    ///
    /// ```
    /// use duop_core::{Criterion, DuOpacity};
    /// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
    ///
    /// let (t1, t2) = (TxnId::new(1), TxnId::new(2));
    /// let x = ObjId::new(0);
    /// // T2 reads T1's write while T1's tryC is still pending: du-opaque,
    /// // with the completion committing T1.
    /// let h = HistoryBuilder::new()
    ///     .write(t1, x, Value::new(1))
    ///     .inv_try_commit(t1)
    ///     .read(t2, x, Value::new(1))
    ///     .commit(t2)
    ///     .build();
    /// let verdict = DuOpacity::new().check(&h);
    /// assert!(verdict.is_satisfied());
    /// assert_eq!(verdict.witness().unwrap().commit_choice(t1), Some(true));
    /// ```
    DuOpacity
}

impl DuOpacity {
    /// As [`Criterion::check`], additionally returning the search
    /// counters — the quantitative basis for the pruning/memoization
    /// ablations.
    pub fn check_with_stats(&self, h: &History) -> (Verdict, SearchStats) {
        search_serialization_with_stats(
            h,
            &Query {
                name: "du-opacity",
                deferred_update: true,
                extra_edges: Vec::new(),
                commit_edges: Vec::new(),
                lint_scope: crate::lint::LintScope::Du,
            },
            &self.cfg,
        )
    }
}

impl Criterion for DuOpacity {
    fn name(&self) -> &'static str {
        "du-opacity"
    }

    fn check(&self, h: &History) -> Verdict {
        self.check_with_stats(h).0
    }
}

criterion_struct! {
    /// The read-commit-order opacity of Guerraoui–Henzinger–Singh
    /// (DISC'08), discussed in Section 4.2: a final-state serialization
    /// must order `T_k` before `T_m` whenever a read of `X` by `T_k`
    /// precedes the `tryC` of a transaction `T_m` that commits on `X`.
    ///
    /// Strictly stronger than [`DuOpacity`]: Figure 5 is du-opaque but not
    /// read-commit-order opaque.
    ReadCommitOrderOpacity
}

impl Criterion for ReadCommitOrderOpacity {
    fn name(&self) -> &'static str {
        "read-commit-order opacity"
    }

    fn check(&self, h: &History) -> Verdict {
        search_serialization(
            h,
            &Query {
                name: "read-commit-order opacity",
                deferred_update: false,
                extra_edges: Vec::new(),
                // The order constraint only binds writers the chosen
                // completion actually *commits* — a commit-pending writer
                // may instead be aborted, making the edge vacuous — so
                // these are commit-conditional.
                commit_edges: rco_edges(h),
                lint_scope: crate::lint::LintScope::Rco,
            },
            &self.cfg,
        )
    }
}

criterion_struct! {
    /// The TMS2 condition as rendered informally in Section 4.2: if
    /// `X ∈ Wset(T_1) ∩ Rset(T_2)`, `T_1` commits, and the `tryC` of `T_1`
    /// precedes the `tryC` of `T_2`, then `T_1` must precede `T_2` in the
    /// final-state serialization.
    ///
    /// The paper conjectures TMS2 ⊆ du-opacity and separates them with
    /// Figure 6 (du-opaque but not TMS2). This is the paper's simplified
    /// rendering, not the full TMS2 I/O automaton.
    Tms2
}

impl Criterion for Tms2 {
    fn name(&self) -> &'static str {
        "TMS2"
    }

    fn check(&self, h: &History) -> Verdict {
        search_serialization(
            h,
            &Query {
                name: "TMS2",
                deferred_update: false,
                extra_edges: tms2_edges(h),
                commit_edges: Vec::new(),
                lint_scope: crate::lint::LintScope::Tms2,
            },
            &self.cfg,
        )
    }
}

criterion_struct! {
    /// Strict serializability of the *committed projection*: aborted
    /// transactions (and transactions that can only abort) are discarded;
    /// the committed transactions — plus any transaction whose `tryC` is
    /// still pending, which a completion may commit, mirroring how
    /// linearizability treats pending operations — must form a legal
    /// sequential history respecting real time.
    ///
    /// This is the database baseline the paper contrasts TM correctness
    /// with: it says nothing about the views of live or aborted
    /// transactions. Every (du-)opaque history is strictly serializable;
    /// the converse fails (a doomed transaction may observe an
    /// inconsistent snapshot).
    ///
    /// The witness covers only the retained (committed or commit-pending)
    /// transactions.
    StrictSerializability
}

impl Criterion for StrictSerializability {
    fn name(&self) -> &'static str {
        "strict serializability"
    }

    fn check(&self, h: &History) -> Verdict {
        let committed: Vec<TxnId> = h
            .txns()
            .filter(|t| t.commit_capability() != duop_history::CommitCapability::NeverCommitted)
            .map(|t| t.id())
            .collect();
        let projection = h.filter_txns(|id| committed.contains(&id));
        search_serialization(
            &projection,
            &Query {
                name: "strict serializability",
                deferred_update: false,
                extra_edges: Vec::new(),
                commit_edges: Vec::new(),
                // Sound for the committed projection: the query runs over
                // `projection`, and Plain rules only use constraints every
                // scope shares.
                lint_scope: crate::lint::LintScope::Plain,
            },
            &self.cfg,
        )
    }
}

/// Commit-conditional precedence edges for [`ReadCommitOrderOpacity`]:
/// `T_k → T_m` whenever a value-returning `read_k(X)` responds before the
/// `tryC_m` invocation of a transaction `T_m` with `X ∈ Wset(T_m)` *that
/// the serialization commits*. Writers whose `tryC` already committed in
/// `H` always qualify; commit-pending writers are constrained exactly when
/// the search chooses the commit fate for them (which is why these edges
/// go through `Query::commit_edges`, not `extra_edges`); writers that can
/// never commit are skipped.
pub(crate) fn rco_edges(h: &History) -> Vec<(TxnId, TxnId)> {
    let mut edges = Vec::new();
    for reader in h.txns() {
        for &x in &reader.read_set() {
            let Some(resp) = h.read_resp_index(reader.id(), x) else {
                continue;
            };
            if reader.read_value(x).is_none() {
                continue; // read returned A_k
            }
            for writer in h.txns() {
                if writer.id() == reader.id()
                    || writer.commit_capability() == duop_history::CommitCapability::NeverCommitted
                {
                    continue;
                }
                if !writer.write_set().contains(&x) {
                    continue;
                }
                if h.try_commit_inv_index(writer.id())
                    .is_some_and(|inv| resp < inv)
                {
                    edges.push((reader.id(), writer.id()));
                }
            }
        }
    }
    edges
}

/// Precedence edges for [`Tms2`]: `T_1 → T_2` whenever
/// `X ∈ Wset(T_1) ∩ Rset(T_2)`, `T_1` is committed and the response of
/// `tryC_1` precedes the invocation of `tryC_2`.
pub(crate) fn tms2_edges(h: &History) -> Vec<(TxnId, TxnId)> {
    let mut edges = Vec::new();
    for writer in h.txns() {
        if !writer.is_committed() {
            continue;
        }
        let Some(w_resp) = writer
            .ops()
            .iter()
            .find(|o| o.op.is_try_commit())
            .and_then(|o| o.resp_index)
        else {
            continue;
        };
        let wset = writer.write_set();
        for reader in h.txns() {
            if reader.id() == writer.id() {
                continue;
            }
            let Some(r_inv) = h.try_commit_inv_index(reader.id()) else {
                continue;
            };
            if w_resp < r_inv && reader.read_set().iter().any(|x| wset.contains(x)) {
                edges.push((writer.id(), reader.id()));
            }
        }
    }
    edges
}

/// Checks `h` against every criterion, returning `(name, verdict)` pairs in
/// a fixed order: final-state opacity, opacity, du-opacity,
/// read-commit-order, TMS2, strict serializability.
///
/// Convenience for experiment tables and exploratory use.
pub fn evaluate_all(h: &History) -> Vec<(&'static str, Verdict)> {
    let checks: Vec<Box<dyn Criterion>> = vec![
        Box::new(FinalStateOpacity::new()),
        Box::new(Opacity::new()),
        Box::new(DuOpacity::new()),
        Box::new(ReadCommitOrderOpacity::new()),
        Box::new(Tms2::new()),
        Box::new(StrictSerializability::new()),
    ];
    checks.into_iter().map(|c| (c.name(), c.check(h))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::{HistoryBuilder, ObjId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn simple_history_satisfies_everything() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        for (name, verdict) in evaluate_all(&h) {
            assert!(verdict.is_satisfied(), "{name} failed: {verdict}");
        }
    }

    #[test]
    fn du_implies_opacity_on_separating_example() {
        // Figure 4 shape: opaque but not du-opaque. T1's commit attempt
        // spans the whole history and fails at the very end; T3 writes the
        // same value and commits after T2's read responds.
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .read(t(2), x(), v(1))
            .committed_writer(t(3), x(), v(1))
            .resp_aborted(t(1))
            .build();
        assert!(Opacity::new().check(&h).is_satisfied());
        assert!(DuOpacity::new().check(&h).is_violated());
    }

    #[test]
    fn doomed_transaction_breaks_opacity_but_not_strict_serializability() {
        let (y, one) = (ObjId::new(1), v(1));
        // T3 observes X=1, Y=0 although T1 wrote both before committing —
        // T3 aborts, so the committed projection is fine, but opacity
        // fails.
        let h = HistoryBuilder::new()
            .write(t(1), x(), one)
            .write(t(1), y, one)
            .commit(t(1))
            .read(t(3), x(), one)
            .read(t(3), y, v(0))
            .commit_aborted(t(3))
            .build();
        assert!(StrictSerializability::new().check(&h).is_satisfied());
        assert!(FinalStateOpacity::new().check(&h).is_violated());
        assert!(DuOpacity::new().check(&h).is_violated());
    }

    #[test]
    fn final_state_opaque_history_with_non_opaque_prefix() {
        // Figure 3: sequential history whose prefix is not final-state
        // opaque.
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_value(t(2), v(1))
            .commit(t(2))
            .resp_ok(t(1))
            .commit(t(1))
            .build();
        assert!(FinalStateOpacity::new().check(&h).is_satisfied());
        let verdict = Opacity::new().check(&h);
        assert!(matches!(
            verdict.violation(),
            Some(Violation::PrefixNotFinalStateOpaque { .. })
        ));
    }

    #[test]
    fn empty_history_is_opaque() {
        let h = duop_history::History::empty();
        assert!(Opacity::new().check(&h).is_satisfied());
        assert!(DuOpacity::new().check(&h).is_satisfied());
    }

    #[test]
    fn rco_edges_computed() {
        // Reader's read responds before writer's tryC invocation.
        let h = HistoryBuilder::new()
            .read(t(1), x(), v(0))
            .committed_writer(t(2), x(), v(1))
            .commit(t(1))
            .build();
        assert_eq!(rco_edges(&h), vec![(t(1), t(2))]);
    }

    #[test]
    fn rco_edges_cover_commit_pending_writers() {
        // The writer's tryC never responds: the completion may commit it,
        // and then the read-commit-order constraint must bind. The edge is
        // emitted (conditionally) rather than skipped.
        let h = HistoryBuilder::new()
            .read(t(1), x(), v(0))
            .write(t(2), x(), v(1))
            .inv_try_commit(t(2))
            .commit(t(1))
            .build();
        assert_eq!(rco_edges(&h), vec![(t(1), t(2))]);
    }

    #[test]
    fn rco_binds_commit_pending_writer_a_reader_depends_on() {
        // T2's write of 1 is commit-pending with its tryC invoked *after*
        // T4's read of 1 responds. Serializing T4's read requires
        // committing T2 before T4; read-commit-order then demands T4
        // before T2 (T4's read responded before tryC_2) — contradiction,
        // so the history is not RCO-opaque. It is du-opaque? No — the
        // tryC_2 invocation follows the read response, so the read is not
        // even du-eligible; plain final-state opacity accepts it though.
        let h = HistoryBuilder::new()
            .inv_read(t(4), x())
            .write(t(2), x(), v(1))
            .resp_value(t(4), v(1))
            .inv_try_commit(t(2))
            .commit(t(4))
            .build();
        assert!(FinalStateOpacity::new().check(&h).is_satisfied());
        assert!(ReadCommitOrderOpacity::new().check(&h).is_violated());
    }

    #[test]
    fn tms2_edges_computed() {
        // Writer commits X before reader's tryC; reader read X.
        let h = HistoryBuilder::new()
            .inv_read(t(2), x())
            .resp_value(t(2), v(0))
            .committed_writer(t(1), x(), v(1))
            .commit(t(2))
            .build();
        assert_eq!(tms2_edges(&h), vec![(t(1), t(2))]);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FinalStateOpacity::new().name(), "final-state opacity");
        assert_eq!(Opacity::new().name(), "opacity");
        assert_eq!(DuOpacity::new().name(), "du-opacity");
        assert_eq!(
            ReadCommitOrderOpacity::new().name(),
            "read-commit-order opacity"
        );
        assert_eq!(Tms2::new().name(), "TMS2");
        assert_eq!(
            StrictSerializability::new().name(),
            "strict serializability"
        );
    }
}
