//! The Firefox/rustc multiplicative hasher, specialized for the search
//! engine's memo keys (`Vec<u64>`).
//!
//! Memo lookups are the hottest operation of the serialization search;
//! SipHash's per-write overhead shows up directly in `checker_scaling`.
//! FxHash is not collision-resistant against adversarial keys, which is
//! fine here: keys are derived from the history being checked, and a
//! collision costs a probe, not a wrong answer.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-shot hasher state. Use through [`FxBuildHasher`].
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashSet`/`HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Incremental 128-bit hash used for the search engine's fixed-width memo
/// keys: two independent multiplicative accumulators with a
/// splitmix64-style finalizer per lane.
///
/// Replacing the exact `Vec<u64>` key with its 128-bit hash makes memo
/// probes allocation-free. The memo becomes *probabilistically* sound: two
/// distinct states could collide, but at 128 bits the collision
/// probability over any feasible search is negligible (< 2⁻⁸⁰ for 10⁷
/// states) — the standard trade-off of hash-compacted model checking.
#[derive(Debug)]
pub(crate) struct Hash128 {
    h1: u64,
    h2: u64,
}

const SEED2: u64 = 0xb5_29_7a_4d_3f_83_11_c5;

impl Hash128 {
    pub(crate) fn new() -> Self {
        // Distinct non-zero initial states so empty and near-empty inputs
        // spread; the lanes stay decorrelated through different multipliers.
        Hash128 {
            h1: 0x9e37_79b9_7f4a_7c15,
            h2: 0x6a09_e667_f3bc_c908,
        }
    }

    #[inline]
    pub(crate) fn write(&mut self, word: u64) {
        self.h1 = (self.h1.rotate_left(5) ^ word).wrapping_mul(SEED);
        self.h2 = (self.h2.rotate_left(7) ^ word).wrapping_mul(SEED2);
    }

    #[inline]
    fn finalize_lane(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    pub(crate) fn finish(&self) -> u128 {
        let a = Self::finalize_lane(self.h1) as u128;
        let b = Self::finalize_lane(self.h2) as u128;
        (a << 64) | b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_and_spreading() {
        let h = |words: &[u64]| {
            let mut s = FxHasher::default();
            for &w in words {
                s.write_u64(w);
            }
            s.finish()
        };
        let a = h(&[1, 2, 3]);
        assert_eq!(a, h(&[1, 2, 3]));
        assert_ne!(a, h(&[3, 2, 1]));
        assert_ne!(h(&[5]), h(&[5, 1]));
    }

    #[test]
    fn works_as_set_hasher() {
        let mut set: HashSet<Vec<u64>, FxBuildHasher> = HashSet::default();
        assert!(set.insert(vec![1, 2]));
        assert!(!set.insert(vec![1, 2]));
        assert!(set.contains([1u64, 2].as_slice()));
    }

    #[test]
    fn hash128_deterministic_and_order_sensitive() {
        let h = |words: &[u64]| {
            let mut s = Hash128::new();
            for &w in words {
                s.write(w);
            }
            s.finish()
        };
        assert_eq!(h(&[1, 2, 3]), h(&[1, 2, 3]));
        assert_ne!(h(&[1, 2, 3]), h(&[3, 2, 1]));
        assert_ne!(h(&[5]), h(&[5, 0]));
        assert_ne!(h(&[]), h(&[0]));
        // Lanes are decorrelated: the two halves differ.
        let v = h(&[42, 7]);
        assert_ne!((v >> 64) as u64, v as u64);
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut h = FxHasher::default();
        h.write(b"0123456789"); // 8-byte chunk + 2-byte remainder
        let ten = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(b"01234567");
        assert_ne!(ten, h2.finish());
    }
}
