//! The Firefox/rustc multiplicative hasher, specialized for the search
//! engine's memo keys (`Vec<u64>`).
//!
//! Memo lookups are the hottest operation of the serialization search;
//! SipHash's per-write overhead shows up directly in `checker_scaling`.
//! FxHash is not collision-resistant against adversarial keys, which is
//! fine here: keys are derived from the history being checked, and a
//! collision costs a probe, not a wrong answer.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-shot hasher state. Use through [`FxBuildHasher`].
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashSet`/`HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hashes one memo key without going through the `Hash` trait; used by the
/// sharded memo to pick a shard consistently with set placement being
/// irrelevant (any deterministic function of the key works).
pub(crate) fn hash_words(words: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &w in words {
        h.add(w);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_and_spreading() {
        let a = hash_words(&[1, 2, 3]);
        assert_eq!(a, hash_words(&[1, 2, 3]));
        assert_ne!(a, hash_words(&[3, 2, 1]));
        assert_ne!(hash_words(&[5]), hash_words(&[5, 1]));
    }

    #[test]
    fn works_as_set_hasher() {
        let mut set: HashSet<Vec<u64>, FxBuildHasher> = HashSet::default();
        assert!(set.insert(vec![1, 2]));
        assert!(!set.insert(vec![1, 2]));
        assert!(set.contains([1u64, 2].as_slice()));
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut h = FxHasher::default();
        h.write(b"0123456789"); // 8-byte chunk + 2-byte remainder
        let ten = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(b"01234567");
        assert_ne!(ten, h2.finish());
    }
}
