//! Differential soundness testing of the lint pipeline: for every
//! generated history, an `Error`-severity diagnostic refuting a criterion
//! scope must imply the full (prefilter-off) checker's verdict for that
//! criterion is `Violated`; and turning the prefilter on must change no
//! `is_satisfied` answer — the contract that makes
//! [`SearchConfig::prelint`] verdict-equivalent.

use duop_core::lint::{lint, LintScope};
use duop_core::{Criterion, DuOpacity, ReadCommitOrderOpacity, SearchConfig, Tms2};
use duop_gen::{HistoryGen, HistoryGenConfig};

fn cfg(prelint: bool) -> SearchConfig {
    SearchConfig {
        prelint,
        ..SearchConfig::default()
    }
}

/// The three scoped criteria the prefilter serves, fresh checkers per call
/// (checkers hold no state, but the prelint flag lives in the config).
fn checkers(prelint: bool) -> [(LintScope, Box<dyn Criterion>); 3] {
    [
        (
            LintScope::Du,
            Box::new(DuOpacity::with_config(cfg(prelint))),
        ),
        (
            LintScope::Rco,
            Box::new(ReadCommitOrderOpacity::with_config(cfg(prelint))),
        ),
        (LintScope::Tms2, Box::new(Tms2::with_config(cfg(prelint)))),
    ]
}

fn run_corpus(config: HistoryGenConfig, seeds: u64) -> (u64, u64) {
    let mut refutations = 0u64;
    let mut checks = 0u64;
    for seed in 0..seeds {
        let h = HistoryGen::new(config.clone(), seed).generate();
        let report = lint(&h);
        for ((scope, off), (_, on)) in checkers(false).into_iter().zip(checkers(true)) {
            checks += 1;
            let off_verdict = off.check(&h);
            let on_verdict = on.check(&h);
            // Prefilter never changes the answer.
            assert_eq!(
                off_verdict.is_satisfied(),
                on_verdict.is_satisfied(),
                "prelint changed the verdict at seed {seed} ({scope:?}):\n{h}\n\
                 off: {off_verdict}\non: {on_verdict}"
            );
            // Error-severity lint for the scope => full checker violated.
            if let Some(d) = report.first_error_for(scope) {
                refutations += 1;
                assert!(
                    off_verdict.is_violated(),
                    "unsound lint at seed {seed}: {d} claims to refute {scope:?} \
                     but the search says {off_verdict}:\n{h}"
                );
            }
            // Contrapositive sanity: a satisfied checker means no Error
            // for its scope (implied by the assert above, but cheap).
            if off_verdict.is_satisfied() {
                assert!(report.first_error_for(scope).is_none());
            }
        }
    }
    (refutations, checks)
}

#[test]
fn adversarial_corpus_lints_soundly_and_prelint_is_verdict_equivalent() {
    let (refutations, checks) = run_corpus(HistoryGenConfig::small_adversarial(), 120);
    // The corpus must actually exercise the prefilter.
    assert!(
        refutations > 20,
        "only {refutations}/{checks} checks lint-refuted"
    );
}

#[test]
fn simulated_corpus_lints_clean_at_error_severity() {
    // Simulated histories are du-opaque by construction: no Error may
    // refute the du scope (warnings and notes are fine).
    for seed in 0..80 {
        let h = HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate();
        let report = lint(&h);
        assert!(
            report.first_error_for(LintScope::Du).is_none(),
            "du-opaque-by-construction history lint-refuted at seed {seed}: {:?}\n{h}",
            report.rule_ids()
        );
    }
}
