//! Differential testing: the parallel search engine vs the sequential one,
//! across a generated corpus, for every criterion and several thread counts.
//!
//! The contract (see DESIGN.md, "Parallel search"): verdicts are
//! equivalent and the witness is deterministic — identical to the
//! sequential engine's first-found witness, regardless of thread count.
//! The only permitted divergence is the `explored` counter embedded in
//! violations and unknowns: memo races mean parallel workers may expand a
//! state another worker is about to memoize, so totals can differ while
//! the verdict cannot.

use duop_core::{
    Criterion, DuOpacity, FinalStateOpacity, Opacity, ReadCommitOrderOpacity, SearchConfig, Tms2,
    Verdict, Violation,
};
use duop_gen::{HistoryGen, HistoryGenConfig};

/// Zeroes every `explored` counter in a violation so that structurally
/// identical violations compare equal across engines.
fn normalize_violation(v: &Violation) -> Violation {
    match v {
        Violation::NoSerialization { criterion, .. } => Violation::NoSerialization {
            criterion: criterion.clone(),
            explored: 0,
        },
        Violation::PrefixNotFinalStateOpaque { prefix_len, cause } => {
            Violation::PrefixNotFinalStateOpaque {
                prefix_len: *prefix_len,
                cause: Box::new(normalize_violation(cause)),
            }
        }
        other => other.clone(),
    }
}

fn normalize(v: &Verdict) -> Verdict {
    match v {
        Verdict::Violated(violation) => Verdict::Violated(normalize_violation(violation)),
        Verdict::Unknown { .. } => Verdict::Unknown {
            explored: 0,
            reason: duop_core::UnknownReason::StateBudget,
            partial: None,
        },
        satisfied => satisfied.clone(),
    }
}

fn criteria(cfg: SearchConfig) -> [(&'static str, Box<dyn Criterion>); 5] {
    [
        (
            "final-state opacity",
            Box::new(FinalStateOpacity::with_config(cfg.clone())),
        ),
        ("opacity", Box::new(Opacity::with_config(cfg.clone()))),
        ("du-opacity", Box::new(DuOpacity::with_config(cfg.clone()))),
        (
            "rco",
            Box::new(ReadCommitOrderOpacity::with_config(cfg.clone())),
        ),
        ("tms2", Box::new(Tms2::with_config(cfg))),
    ]
}

fn corpus() -> Vec<(u64, duop_history::History)> {
    let mut out = Vec::new();
    for seed in 0..120 {
        out.push((
            seed,
            HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate(),
        ));
    }
    for seed in 0..60 {
        out.push((
            1_000 + seed,
            HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate(),
        ));
    }
    out
}

#[test]
fn parallel_verdicts_and_witnesses_match_sequential() {
    let mut satisfied = 0usize;
    let mut violated = 0usize;
    for (tag, h) in corpus() {
        let sequential: Vec<Verdict> = criteria(SearchConfig::default())
            .iter()
            .map(|(_, c)| c.check(&h))
            .collect();
        for threads in [1usize, 2, 8] {
            let cfg = SearchConfig {
                threads: Some(threads),
                ..SearchConfig::default()
            };
            for ((name, checker), seq) in criteria(cfg).iter().zip(&sequential) {
                let par = checker.check(&h);
                assert_eq!(
                    normalize(&par),
                    normalize(seq),
                    "{name} diverges at {threads} threads, corpus tag {tag}:\n{h}\nseq: {seq}\npar: {par}"
                );
                if let (Some(pw), Some(sw)) = (par.witness(), seq.witness()) {
                    assert_eq!(
                        pw, sw,
                        "{name} witness differs at {threads} threads, corpus tag {tag}"
                    );
                }
            }
        }
        if sequential[2].is_satisfied() {
            satisfied += 1;
        } else {
            violated += 1;
        }
    }
    // The corpus must exercise both outcomes.
    assert!(satisfied > 20, "only {satisfied} satisfied histories");
    assert!(violated > 20, "only {violated} violated histories");
}

#[test]
fn global_budget_is_consistent_across_thread_counts() {
    // A budget tight enough to trip on some histories. The parallel engine
    // shares one global counter across workers, so a budgeted run may
    // return Unknown — but it must never contradict another run: one
    // thread count saying Satisfied while another says Violated would mean
    // the budget changed an answer rather than withholding one.
    // Prelint, saturation and the degradation ladder off: all three
    // decide most of this corpus without searching, and this test needs
    // the budget to actually trip.
    let budget = SearchConfig {
        max_states: Some(4),
        prelint: false,
        saturate: false,
        ladder: false,
        ..SearchConfig::default()
    };
    let mut unknowns = 0usize;
    for seed in 0..150 {
        let h = HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate();
        let verdicts: Vec<Verdict> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                DuOpacity::with_config(SearchConfig {
                    threads: Some(threads),
                    ..budget.clone()
                })
                .check(&h)
            })
            .collect();
        let any_satisfied = verdicts.iter().any(|v| v.is_satisfied());
        let any_violated = verdicts.iter().any(|v| v.is_violated());
        assert!(
            !(any_satisfied && any_violated),
            "budgeted runs contradict each other at seed {seed}:\n{h}\n{verdicts:?}"
        );
        unknowns += verdicts
            .iter()
            .filter(|v| matches!(v, Verdict::Unknown { .. }))
            .count();
        // A definite answer under budget must match the unbudgeted truth.
        if any_satisfied || any_violated {
            let truth = DuOpacity::new().check(&h);
            for v in &verdicts {
                if !matches!(v, Verdict::Unknown { .. }) {
                    assert_eq!(v.is_satisfied(), truth.is_satisfied(), "seed {seed}");
                }
            }
        }
    }
    assert!(unknowns > 0, "budget of 4 states never tripped");
}
