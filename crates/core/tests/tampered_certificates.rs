//! Tampered-certificate corpus: harvest real certificates from the
//! saturation engine over generated histories, then mutate every field —
//! edge endpoints, rule payloads (objects, values, event spans), premise
//! indices, cycle contents — and assert [`check_certificate`] rejects
//! each mutant with a structured [`CertificateError`], never a panic.
//!
//! Only mutations that are *guaranteed* invalid are asserted rejected
//! (e.g. reversing a real-time edge, pointing an event span at an event
//! the named transaction does not own, or making a premise reference
//! non-well-founded). Mutations that could accidentally produce a
//! different-but-true derivation are excluded by construction: object and
//! value bumps use offsets far outside the generators' ranges.
//!
//! At the CLI boundary a rejected certificate surfaces as an `Err` from
//! `duop check --certify` / `duop certify`, which `run()` maps to exit
//! code 2 (covered by the cli `exit_codes` suite).

use duop_core::certificate::{Certificate, CertificateError, Rule, Step};
use duop_core::{check_certificate, saturate, PlanCriterion, SaturationOutcome};
use duop_gen::{HistoryGen, HistoryGenConfig};
use duop_history::{History, ObjId, TxnId, Value};

const CRITERIA: [PlanCriterion; 5] = [
    PlanCriterion::FinalState,
    PlanCriterion::Du,
    PlanCriterion::Rco,
    PlanCriterion::Tms2,
    PlanCriterion::Strict,
];

/// A transaction id no generated history contains.
const GHOST: TxnId = TxnId::new(41_999);
/// Offsets far outside the generators' object/value/event ranges.
const OBJ_BUMP: u32 = 57;
const VALUE_BUMP: u64 = 9_001;
const EVENT_FAR: usize = usize::MAX / 2;

/// Harvests `(prepared history, certificate)` pairs from the saturation
/// engine over both generator modes and all criteria. Every certificate
/// is validated before being admitted to the corpus.
fn harvest(seeds: u64) -> Vec<(History, Certificate)> {
    let mut corpus = Vec::new();
    for cfg in [
        HistoryGenConfig::small_adversarial(),
        HistoryGenConfig::small_simulated(),
    ] {
        for seed in 0..seeds {
            let h = HistoryGen::new(cfg.clone(), seed).generate();
            for criterion in CRITERIA {
                if let SaturationOutcome::Refuted(cert) = saturate(&h, criterion) {
                    let prepared = criterion.prepare(&h);
                    let hh = prepared.unwrap_or_else(|| h.clone());
                    assert_eq!(
                        check_certificate(&hh, &cert),
                        Ok(()),
                        "harvested certificate is invalid at seed {seed}: {cert}"
                    );
                    corpus.push((hh, cert));
                }
            }
        }
    }
    corpus
}

/// All guaranteed-invalid single-field mutations of `cert`. Each entry is
/// a label (for failure messages) plus the mutant.
fn mutations(cert: &Certificate) -> Vec<(String, Certificate)> {
    let mut out: Vec<(String, Certificate)> = Vec::new();
    let mut push = |label: String, mutant: Certificate| out.push((label, mutant));

    for (i, step) in cert.steps.iter().enumerate() {
        // Endpoint tampering: ghost transactions, self edges, reversal.
        let mut m = cert.clone();
        m.steps[i].from = GHOST;
        push(format!("step {i}: from -> ghost txn"), m);

        let mut m = cert.clone();
        m.steps[i].to = GHOST;
        push(format!("step {i}: to -> ghost txn"), m);

        let mut m = cert.clone();
        m.steps[i].from = step.to;
        push(format!("step {i}: from == to (self edge)"), m);

        // Reversal: every rule pins at least one event span or premise
        // endpoint to the original orientation, so the reverse edge can
        // never re-derive.
        let mut m = cert.clone();
        m.steps[i].from = step.to;
        m.steps[i].to = step.from;
        push(format!("step {i}: reversed edge"), m);

        // Rule-payload tampering, per variant.
        match step.rule {
            Rule::RealTime => {}
            Rule::ReadFrom { obj, value, read } => {
                let mut m = cert.clone();
                m.steps[i].rule = Rule::ReadFrom {
                    obj: ObjId::new(obj.index() + OBJ_BUMP),
                    value,
                    read,
                };
                push(format!("step {i}: read-from obj bumped"), m);

                let mut m = cert.clone();
                m.steps[i].rule = Rule::ReadFrom {
                    obj,
                    value: Value::new(value.get() + VALUE_BUMP),
                    read,
                };
                push(format!("step {i}: read-from value bumped"), m);

                let mut m = cert.clone();
                m.steps[i].rule = Rule::ReadFrom {
                    obj,
                    value: Value::INITIAL,
                    read,
                };
                push(format!("step {i}: read-from value -> initial"), m);

                let mut m = cert.clone();
                m.steps[i].rule = Rule::ReadFrom {
                    obj,
                    value,
                    read: EVENT_FAR,
                };
                push(format!("step {i}: read-from span out of range"), m);
            }
            Rule::AntiDependency { obj, read } => {
                let mut m = cert.clone();
                m.steps[i].rule = Rule::AntiDependency {
                    obj: ObjId::new(obj.index() + OBJ_BUMP),
                    read,
                };
                push(format!("step {i}: anti-dependency obj bumped"), m);

                let mut m = cert.clone();
                m.steps[i].rule = Rule::AntiDependency {
                    obj,
                    read: EVENT_FAR,
                };
                push(format!("step {i}: anti-dependency span out of range"), m);
            }
            Rule::ReadCommitOrder { obj, read, tryc } => {
                let mut m = cert.clone();
                m.steps[i].rule = Rule::ReadCommitOrder {
                    obj: ObjId::new(obj.index() + OBJ_BUMP),
                    read,
                    tryc,
                };
                push(format!("step {i}: rco obj bumped"), m);

                let mut m = cert.clone();
                m.steps[i].rule = Rule::ReadCommitOrder {
                    obj,
                    read: EVENT_FAR,
                    tryc,
                };
                push(format!("step {i}: rco read span out of range"), m);

                let mut m = cert.clone();
                m.steps[i].rule = Rule::ReadCommitOrder {
                    obj,
                    read,
                    tryc: EVENT_FAR,
                };
                push(format!("step {i}: rco tryc span out of range"), m);
            }
            Rule::Tms2CommitOrder { obj, resp, tryc } => {
                let mut m = cert.clone();
                m.steps[i].rule = Rule::Tms2CommitOrder {
                    obj: ObjId::new(obj.index() + OBJ_BUMP),
                    resp,
                    tryc,
                };
                push(format!("step {i}: tms2 obj bumped"), m);

                let mut m = cert.clone();
                m.steps[i].rule = Rule::Tms2CommitOrder {
                    obj,
                    resp: EVENT_FAR,
                    tryc,
                };
                push(format!("step {i}: tms2 resp span out of range"), m);

                let mut m = cert.clone();
                m.steps[i].rule = Rule::Tms2CommitOrder {
                    obj,
                    resp,
                    tryc: EVENT_FAR,
                };
                push(format!("step {i}: tms2 tryc span out of range"), m);
            }
            Rule::Transitive { first, second } => {
                let mut m = cert.clone();
                m.steps[i].rule = Rule::Transitive { first: i, second };
                push(format!("step {i}: transitive first premise not earlier"), m);

                let mut m = cert.clone();
                m.steps[i].rule = Rule::Transitive { first, second: i };
                push(
                    format!("step {i}: transitive second premise not earlier"),
                    m,
                );
            }
            Rule::InterferenceAfter { read_from, before } => {
                let mut m = cert.clone();
                m.steps[i].rule = Rule::InterferenceAfter {
                    read_from: i,
                    before,
                };
                push(
                    format!("step {i}: interference-after rf premise not earlier"),
                    m,
                );

                let mut m = cert.clone();
                m.steps[i].rule = Rule::InterferenceAfter {
                    read_from,
                    before: i,
                };
                push(
                    format!("step {i}: interference-after before premise not earlier"),
                    m,
                );
            }
            Rule::InterferenceBefore { read_from, after } => {
                let mut m = cert.clone();
                m.steps[i].rule = Rule::InterferenceBefore {
                    read_from: i,
                    after,
                };
                push(
                    format!("step {i}: interference-before rf premise not earlier"),
                    m,
                );

                let mut m = cert.clone();
                m.steps[i].rule = Rule::InterferenceBefore {
                    read_from,
                    after: i,
                };
                push(
                    format!("step {i}: interference-before after premise not earlier"),
                    m,
                );
            }
        }

        // Scope tampering: smuggle a scope-gated rule into a certificate
        // whose criterion does not admit it.
        if cert.criterion != PlanCriterion::Rco {
            let mut m = cert.clone();
            m.steps[i].rule = Rule::ReadCommitOrder {
                obj: ObjId::new(0),
                read: 0,
                tryc: 1,
            };
            push(format!("step {i}: rco rule outside rco scope"), m);
        }
        if cert.criterion != PlanCriterion::Tms2 {
            let mut m = cert.clone();
            m.steps[i].rule = Rule::Tms2CommitOrder {
                obj: ObjId::new(0),
                resp: 0,
                tryc: 1,
            };
            push(format!("step {i}: tms2 rule outside tms2 scope"), m);
        }
    }

    // Cycle tampering.
    let mut m = cert.clone();
    m.cycle.clear();
    push("cycle emptied".into(), m);

    let mut m = cert.clone();
    m.cycle.push(cert.steps.len() + 7);
    push("cycle index out of range".into(), m);

    if let Some(&head) = cert.cycle.first() {
        // Duplicating the head breaks the chain: a valid step is never a
        // self edge, so `steps[head].to != steps[head].from`.
        let mut m = cert.clone();
        m.cycle.insert(0, head);
        push("cycle head duplicated".into(), m);
    }

    // Dropping the last edge of a simple cycle leaves the chain open.
    let txns = cert.cycle_txns();
    let simple = {
        let mut seen = txns.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len() == txns.len()
    };
    if simple && cert.cycle.len() >= 2 {
        let mut m = cert.clone();
        m.cycle.pop();
        push("cycle last edge dropped".into(), m);
    }

    // Truncating the step list strands every cycle reference to the tail.
    if let Some(&max) = cert.cycle.iter().max() {
        if max > 0 {
            let mut m = cert.clone();
            m.steps.truncate(max);
            push("steps truncated below cycle".into(), m);
        }
    }

    out
}

#[test]
fn every_tampered_certificate_is_rejected_with_a_structured_error() {
    let corpus = harvest(120);
    assert!(
        corpus.len() >= 40,
        "corpus too small: only {} certificates harvested",
        corpus.len()
    );

    // The corpus must exercise a healthy slice of the rule vocabulary,
    // or the mutation sweep proves less than it claims.
    let mut tags: Vec<&str> = corpus
        .iter()
        .flat_map(|(_, c)| c.steps.iter().map(|s| s.rule.tag()))
        .collect();
    tags.sort_unstable();
    tags.dedup();
    assert!(
        tags.len() >= 4,
        "only rule tags {tags:?} appear in the harvested corpus"
    );

    let mut mutants = 0usize;
    for (h, cert) in &corpus {
        for (label, mutant) in mutations(cert) {
            // `check_certificate` must reject — and must not panic. The
            // error's Display form is the structured message the CLI
            // prints before exiting 2.
            let err = check_certificate(h, &mutant)
                .expect_err(&format!("mutant accepted: {label}\n{cert}"));
            assert!(
                !err.to_string().is_empty(),
                "empty error rendering for: {label}"
            );
            mutants += 1;
        }
    }
    assert!(mutants > 500, "only {mutants} mutants exercised");
}

#[test]
fn hand_built_cross_criterion_scope_confusion_is_rejected() {
    // A certificate harvested under one criterion must not validate under
    // a scope that gates its rules: an RCO commit-order edge is only
    // sound where read-commit-order is actually required. Relabeling to
    // final-state keeps every other rule's semantics identical (both run
    // with the non-du supplier conditions), so the first defect the
    // validator can find is precisely the scope violation.
    let mut found = false;
    for seed in 0..200u64 {
        let h = HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate();
        if let SaturationOutcome::Refuted(cert) = saturate(&h, PlanCriterion::Rco) {
            if cert
                .steps
                .iter()
                .any(|s| matches!(s.rule, Rule::ReadCommitOrder { .. }))
            {
                let mut relabeled = cert.clone();
                relabeled.criterion = PlanCriterion::FinalState;
                let prepared = PlanCriterion::Rco.prepare(&h);
                let hh = prepared.unwrap_or_else(|| h.clone());
                assert!(
                    matches!(
                        check_certificate(&hh, &relabeled),
                        Err(CertificateError::WrongScope { .. })
                    ),
                    "relabeled rco certificate was not scope-rejected"
                );
                found = true;
                break;
            }
        }
    }
    assert!(
        found,
        "no rco certificate with a read-commit-order step found in 200 seeds"
    );
}

#[test]
fn fabricated_real_time_cycle_is_rejected_on_every_history() {
    // Real-time order is a strict partial order, so a two-step real-time
    // cycle can never re-derive — on any history whatsoever. A forger
    // cannot manufacture a refutation out of the cheapest axiom.
    let mut checked = 0usize;
    for seed in 0..200u64 {
        let h = HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate();
        if h.txn_count() < 2 {
            continue;
        }
        let ids: Vec<TxnId> = h.txn_ids().take(2).collect();
        let cert = Certificate {
            criterion: PlanCriterion::FinalState,
            steps: vec![
                Step {
                    from: ids[0],
                    to: ids[1],
                    rule: Rule::RealTime,
                },
                Step {
                    from: ids[1],
                    to: ids[0],
                    rule: Rule::RealTime,
                },
            ],
            cycle: vec![0, 1],
        };
        assert!(
            check_certificate(&h, &cert).is_err(),
            "fabricated real-time 2-cycle accepted at seed {seed}:\n{h}"
        );
        checked += 1;
    }
    assert!(checked > 20, "only {checked} clean histories exercised");
}
