//! Regression fixtures for bugs found (and fixed) during development.
//! Each test pins the minimal history that exposed the bug.

use duop_core::unique::{check_unique_writes_fast, has_unique_writes};
use duop_core::{Criterion, DuOpacity, FinalStateOpacity};
use duop_history::{HistoryBuilder, ObjId, TxnId, Value};

fn t(k: u32) -> TxnId {
    TxnId::new(k)
}
fn x() -> ObjId {
    ObjId::new(0)
}
fn v(n: u64) -> Value {
    Value::new(n)
}

/// Regression: the TL2 engine once skipped commit-time validation for
/// read-set entries that were also in the write set. Under load it then
/// emitted histories of this shape — a transaction committing although the
/// object it read was overwritten between its read and its commit. The
/// checker must reject the shape (it did; the engine was the bug).
#[test]
fn tl2_write_set_validation_shape_is_rejected() {
    // T2 reads X = 0; T1 commits X = 1; T3 (strictly after T1) commits
    // Y = 7, which T2 then reads before committing its own write to X.
    // The Y-read pins T2 after T3 (and hence after T1), so the X-read is
    // stale at every admissible serialization point — exactly what the
    // unvalidated write-set read let through.
    let y = ObjId::new(1);
    let h = HistoryBuilder::new()
        .inv_read(t(2), x())
        .resp_value(t(2), v(0))
        .committed_writer(t(1), x(), v(1))
        .committed_writer(t(3), y, v(7))
        .read(t(2), y, v(7))
        .write(t(2), x(), v(2))
        .commit(t(2))
        .build();
    assert!(
        FinalStateOpacity::new().check(&h).is_violated(),
        "write-set shadowed stale read must not serialize"
    );
    assert!(DuOpacity::new().check(&h).is_violated());
}

/// Regression: the unique-writes fast path once treated a transaction's
/// *intermediate* (overwritten) writes as readable sources, accepting
/// reads that no serialization can serve. Only the last write per object
/// is observable.
#[test]
fn fast_path_rejects_intermediate_value_reads() {
    let h = HistoryBuilder::new()
        .write(t(1), x(), v(1))
        .write(t(1), x(), v(2))
        .commit(t(1))
        .committed_reader(t(2), x(), v(1))
        .build();
    assert!(has_unique_writes(&h));
    let (fast, _) = check_unique_writes_fast(&h);
    assert!(fast.is_violated(), "intermediate value must be unreadable");
    assert!(DuOpacity::new().check(&h).is_violated());
}

/// Regression: the transitive-closure helper in the fast path once
/// panicked on self-reachable rows (`i == k` during the in-place
/// Floyd–Warshall union). This history drives the fast path through the
/// propagation loop with anti-dependency disjunctions.
#[test]
fn fast_path_closure_handles_dense_constraints() {
    let y = ObjId::new(1);
    // Two writers to X and an overlapping reader of each value, plus a
    // T0-reader forcing reader-before-writer edges: enough structure to
    // exercise propagation without panicking.
    let h = HistoryBuilder::new()
        .inv_read(t(4), x())
        .resp_value(t(4), v(0))
        .committed_writer(t(1), x(), v(1))
        .read(t(3), x(), v(1))
        .write(t(3), y, v(3))
        .commit(t(3))
        .committed_writer(t(2), x(), v(2))
        .committed_reader(t(5), x(), v(2))
        .commit(t(4))
        .build();
    if has_unique_writes(&h) {
        let (fast, _) = check_unique_writes_fast(&h);
        let general = DuOpacity::new().check(&h);
        assert_eq!(fast.is_satisfied(), general.is_satisfied());
    }
}

/// Regression: the NOrec-style value-validated generator was once claimed
/// du-opaque by construction; the ABA pattern disproves it. Pin the
/// minimal ABA separation so the distinction never silently regresses.
#[test]
fn aba_pattern_stays_opaque_but_not_du() {
    use duop_core::Opacity;
    let h = duop_experiments_litmus_aba();
    assert!(Opacity::new().check(&h).is_satisfied());
    assert!(DuOpacity::new().check(&h).is_violated());
}

/// The `aba-value-coincidence` litmus shape, reconstructed locally to keep
/// this crate's dev-dependencies minimal.
fn duop_experiments_litmus_aba() -> duop_history::History {
    let (t1, t2, t3, t4) = (t(1), t(2), t(3), t(4));
    let y = ObjId::new(1);
    HistoryBuilder::new()
        .committed_writer(t1, x(), v(1))
        .inv_write(t3, x(), v(2))
        .resp_ok(t3)
        .inv_try_commit(t3)
        .read(t2, x(), v(1))
        .resp_committed(t3)
        .write(t4, x(), v(1))
        .write(t4, y, v(5))
        .commit(t4)
        .read(t2, y, v(5))
        .commit(t2)
        .build()
}
