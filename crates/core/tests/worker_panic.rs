//! Panic isolation in the parallel subtree engine: a worker whose subtree
//! panics must not hang or abort the whole search — siblings cancel
//! cooperatively and the verdict degrades to `Unknown(worker-panic)`.
//!
//! Lives in its own integration-test binary because it arms the global
//! `PANIC_ON_TASK` injection hook, which any concurrently running parallel
//! search in the same process could otherwise consume.

use duop_core::parallel::PANIC_ON_TASK;
use duop_core::{Criterion, DuOpacity, SearchConfig, UnknownReason, Verdict};
use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
use std::sync::atomic::Ordering;

/// A config that forces the subtree-parallel engine: several workers, no
/// conflict-graph decomposition (component fan-out would bypass subtree
/// tasks), no prelint (a refutation would bypass the search entirely).
fn par_cfg() -> SearchConfig {
    SearchConfig {
        threads: Some(4),
        decompose: false,
        prelint: false,
        // The degradation ladder would soundly decide the poisoned
        // history after the injected panic; this test is about panic
        // containment surfacing as Unknown(worker-panic).
        ladder: false,
        ..SearchConfig::default()
    }
}

/// A history that (a) violates du-opacity only deep in the search — T6
/// and T7 each write *both* `y` and `z` (so after any placement the two
/// objects always hold matching values), while T13 reads the mixed pair
/// `y` from T6 and `z` from T7; each read individually has an admissible
/// writer, so the per-read precheck passes, but no serialization can ever
/// place T13 — and (b) is bushy enough (five fully concurrent independent
/// clusters) that the subtree splitter produces many viable prefix tasks
/// instead of collapsing to one.
fn violated_bushy_history() -> duop_history::History {
    let t = TxnId::new;
    let v = Value::new;
    let y = ObjId::new(0);
    let z = ObjId::new(6);
    let mut b = HistoryBuilder::new();
    // Cluster writers T1..T5 on x1..x5, plus the pair-writers T6/T7; all
    // stay commit-pending (tryC invoked, never answered) so nothing
    // completes and no real-time edges constrain the tree.
    for k in 1..=5u32 {
        b = b
            .inv_write(t(k), ObjId::new(k), v(u64::from(k)))
            .resp_ok(t(k));
    }
    b = b.inv_write(t(6), y, v(100)).resp_ok(t(6));
    b = b.inv_write(t(6), z, v(100)).resp_ok(t(6));
    b = b.inv_write(t(7), y, v(200)).resp_ok(t(7));
    b = b.inv_write(t(7), z, v(200)).resp_ok(t(7));
    for k in 1..=7u32 {
        b = b.inv_try_commit(t(k));
    }
    // Cluster readers T8..T12, each reading its writer's pending value.
    for k in 1..=5u32 {
        b = b
            .inv_read(t(7 + k), ObjId::new(k))
            .resp_value(t(7 + k), v(u64::from(k)));
    }
    // The poison pill: a mixed snapshot no serial order can produce.
    b = b
        .inv_read(t(13), y)
        .resp_value(t(13), v(100))
        .inv_read(t(13), z)
        .resp_value(t(13), v(200));
    for k in 8..=13u32 {
        b = b.commit(t(k));
    }
    b.build()
}

#[test]
fn injected_worker_panic_yields_unknown_and_no_hang() {
    let h = violated_bushy_history();

    // Baseline: violated (so no witness can outrank the panic in the
    // reduction) and genuinely split into several subtree tasks.
    let (baseline, stats) = DuOpacity::with_config(par_cfg()).check_with_stats(&h);
    assert!(baseline.is_violated(), "baseline: {baseline:?}");
    assert!(stats.subtree_tasks >= 2, "no subtree split: {stats:?}");

    // Arm the hook: the worker that claims subtree task 0 panics. The
    // check must still return (no hang) with the panic contained.
    PANIC_ON_TASK.store(0, Ordering::SeqCst);
    let verdict = DuOpacity::with_config(par_cfg()).check(&h);
    assert_eq!(
        PANIC_ON_TASK.load(Ordering::SeqCst),
        u64::MAX,
        "hook must have fired and disarmed itself"
    );
    match verdict {
        Verdict::Unknown { reason, .. } => assert_eq!(reason, UnknownReason::WorkerPanic),
        other => panic!("expected Unknown(worker-panic), got {other:?}"),
    }

    // The same check re-run without the hook is unaffected (the engine
    // fully recovered; no poisoned global state).
    assert!(DuOpacity::with_config(par_cfg()).check(&h).is_violated());
}

#[test]
fn par_map_resurfaces_item_panic_after_draining() {
    let items: Vec<u32> = (0..64).collect();
    let result = std::panic::catch_unwind(|| {
        duop_core::par_map(&items, 4, |&i| {
            if i == 13 {
                panic!("boom on item 13");
            }
            i * 2
        })
    });
    let payload = result.expect_err("panic must resurface on the caller thread");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("boom on item 13"), "payload: {msg}");
}
