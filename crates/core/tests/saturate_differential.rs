//! Three-way differential harness: the certifying saturation pass vs the
//! backtracking search vs the full TMS2 automaton.
//!
//! The agreement contract (mirrored by experiment E20):
//!
//! 1. Whenever saturation is decisive for a criterion, the backtracking
//!    search — run with both prefilters *disabled*, so the comparison is
//!    genuinely independent — reaches the same verdict.
//! 2. Every saturation refutation carries a certificate the independent
//!    validator accepts against the criterion-prepared history; every
//!    saturation-decided satisfaction carries a witness `check_witness`
//!    accepts.
//! 3. For TMS2, a saturation refutation of the Section 4.2 rendering must
//!    also be rejected by the full automaton: the automaton accepts at
//!    most what the rendering accepts (the known divergence runs the
//!    other way — the rendering admits histories the automaton rejects),
//!    so a sound rendering refutation can never meet an automaton accept.

use duop_core::tms2_automaton::check_tms2_automaton;
use duop_core::{
    check_certificate, check_witness, saturate, Criterion, CriterionKind, DuOpacity,
    FinalStateOpacity, PlanCriterion, ReadCommitOrderOpacity, SaturationOutcome, SearchConfig,
    StrictSerializability, Tms2,
};
use duop_gen::{HistoryGen, HistoryGenConfig};
use duop_history::History;

/// The saturable criteria with their search-side checker and the witness
/// kind the positive validator expects.
fn checkers() -> Vec<(PlanCriterion, Box<dyn Criterion>, CriterionKind)> {
    let cfg = || SearchConfig {
        prelint: false,
        saturate: false,
        ..SearchConfig::default()
    };
    vec![
        (
            PlanCriterion::FinalState,
            Box::new(FinalStateOpacity::with_config(cfg())) as Box<dyn Criterion>,
            CriterionKind::FinalStateOpacity,
        ),
        (
            PlanCriterion::Du,
            Box::new(DuOpacity::with_config(cfg())),
            CriterionKind::DuOpacity,
        ),
        (
            PlanCriterion::Rco,
            Box::new(ReadCommitOrderOpacity::with_config(cfg())),
            CriterionKind::ReadCommitOrder,
        ),
        (
            PlanCriterion::Tms2,
            Box::new(Tms2::with_config(cfg())),
            CriterionKind::Tms2,
        ),
        // Strict serializability runs over the committed projection; its
        // witnesses validate as final-state opacity of that projection.
        (
            PlanCriterion::Strict,
            Box::new(StrictSerializability::with_config(cfg())),
            CriterionKind::FinalStateOpacity,
        ),
    ]
}

/// Runs the two-way (saturation vs search) leg over one history,
/// returning `(decided, refuted)` counts.
fn agree_on(h: &History, seed: u64) -> (usize, usize) {
    let mut decided = 0;
    let mut refuted = 0;
    for (criterion, checker, kind) in checkers() {
        let outcome = saturate(h, criterion);
        let prepared = criterion.prepare(h);
        let hh = prepared.as_ref().unwrap_or(h);
        match outcome {
            SaturationOutcome::Refuted(cert) => {
                assert_eq!(
                    check_certificate(hh, &cert),
                    Ok(()),
                    "invalid certificate for {criterion:?} at seed {seed}:\n{h}"
                );
                let search = checker.check(h);
                assert!(
                    search.is_violated(),
                    "saturation refutes {criterion:?} at seed {seed} but search \
                     satisfies:\n{h}\nsearch: {search}"
                );
                refuted += 1;
            }
            SaturationOutcome::Decided(w) => {
                assert_eq!(
                    check_witness(hh, &w, kind),
                    Ok(()),
                    "invalid saturation witness for {criterion:?} at seed {seed}:\n{h}"
                );
                let search = checker.check(h);
                assert!(
                    search.is_satisfied(),
                    "saturation decides {criterion:?} satisfied at seed {seed} but \
                     search violates:\n{h}\nsearch: {search}"
                );
                decided += 1;
            }
            SaturationOutcome::Inconclusive => {}
        }
    }
    (decided, refuted)
}

#[test]
fn saturation_agrees_with_search_on_adversarial_corpora() {
    let mut decided = 0usize;
    let mut refuted = 0usize;
    for seed in 0..300 {
        let h = HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate();
        let (d, r) = agree_on(&h, seed);
        decided += d;
        refuted += r;
    }
    // The harness only proves something if saturation is decisive often.
    assert!(decided > 60, "only {decided} decided cases");
    assert!(refuted > 60, "only {refuted} refuted cases");
}

#[test]
fn saturation_agrees_with_search_on_simulated_corpora() {
    let mut decisive = 0usize;
    for seed in 0..200 {
        let h = HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate();
        let (d, r) = agree_on(&h, seed);
        decisive += d + r;
    }
    assert!(decisive > 50, "only {decisive} decisive cases");
}

#[test]
fn du_refutations_agree_with_the_full_automaton() {
    // Three-way leg, routed through the Section 4.2 inclusion that E11
    // validates: every history the full TMS2 automaton accepts is
    // du-opaque. Contrapositive: a certified saturation refutation of
    // du-opacity must never meet an automaton accept. (The *rendering*
    // and the automaton are incomparable — the rendering's commit-order
    // condition also binds aborted readers, which TMS2 proper lets read
    // older snapshots — so the rendering leg is covered against the
    // search above, not against the automaton.) The automaton's budget
    // can expire (Unknown); those runs prove nothing and are skipped,
    // but must stay rare enough for the sweep to bind.
    // Du-certified refutations are rare in the corpora (a few percent of
    // adversarial seeds; the simulated generator produces none), so the
    // sweep is wide and the floor is sized to the observed rate.
    let mut cross_checked = 0usize;
    for seed in 0..1_000u64 {
        let h = HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate();
        let SaturationOutcome::Refuted(cert) = saturate(&h, PlanCriterion::Du) else {
            continue;
        };
        assert_eq!(check_certificate(&h, &cert), Ok(()), "seed {seed}:\n{h}");
        let automaton = check_tms2_automaton(&h, Some(2_000_000));
        assert!(
            !automaton.is_accepted(),
            "saturation refutes du-opacity at seed {seed} but the automaton \
             accepts:\n{h}\ncertificate: {cert}"
        );
        cross_checked += 1;
    }
    assert!(
        cross_checked > 20,
        "only {cross_checked} refutations cross-checked"
    );
}

#[test]
fn anomaly_catalogue_is_refuted_by_all_three_paths() {
    use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
    let t = TxnId::new;
    let x = ObjId::new;
    let v = Value::new;

    // Classic anomalies, each a guaranteed violation of every saturable
    // criterion: the three decision paths must concur on all of them.
    let lost_initial = HistoryBuilder::new()
        .committed_writer(t(1), x(0), v(1))
        .committed_reader(t(2), x(0), v(0))
        .build();
    let phantom_value = HistoryBuilder::new()
        .committed_reader(t(1), x(0), v(9))
        .build();
    let catalogue = [
        ("lost-initial", lost_initial),
        ("phantom-value", phantom_value),
    ];

    for (name, h) in &catalogue {
        for (criterion, checker, _) in checkers() {
            let outcome = saturate(h, criterion);
            let refuted_by_saturation = matches!(outcome, SaturationOutcome::Refuted(_));
            let search = checker.check(h);
            assert!(
                search.is_violated(),
                "{name}: search satisfies {criterion:?}"
            );
            // Saturation may abstain (phantom reads are the lint/spec
            // layer's job) but must never contradict the search.
            assert!(
                !matches!(outcome, SaturationOutcome::Decided(_)),
                "{name}: saturation decides {criterion:?} satisfied"
            );
            if criterion == PlanCriterion::Du && refuted_by_saturation {
                assert!(
                    !check_tms2_automaton(h, None).is_accepted(),
                    "{name}: automaton accepts a saturation-refuted history"
                );
            }
        }
    }
}
