//! Exhaustive small-scope testing: every interleaving of fixed transaction
//! scripts is checked, so nothing in the schedule space escapes.

use duop_core::reference::check_by_enumeration;
use duop_core::{Criterion, CriterionKind, DuOpacity, FinalStateOpacity, Opacity};
use duop_gen::schedule::{interleavings, reader_script, writer_script};
use duop_history::{Event, EventKind, History, ObjId, Op, Ret, TxnId, Value};

fn t(k: u32) -> TxnId {
    TxnId::new(k)
}
fn x() -> ObjId {
    ObjId::new(0)
}
fn v(n: u64) -> Value {
    Value::new(n)
}

/// Index of the first event satisfying the predicate.
fn find(h: &History, pred: impl Fn(&Event) -> bool) -> usize {
    h.events().iter().position(pred).expect("event present")
}

/// Across *all* interleavings of a committed writer and a committed reader
/// of the written value, du-opacity holds **exactly** when the writer's
/// `tryC` invocation precedes the read's response — the deferred-update
/// condition, characterized exhaustively.
#[test]
fn du_characterization_writer_reader_all_interleavings() {
    let s1 = writer_script(t(1), x(), v(1));
    let s2 = reader_script(t(2), x(), v(1));
    let all = interleavings(&[s1, s2], 100);
    assert_eq!(all.len(), 70);
    for h in &all {
        let tryc_inv = find(h, |e| {
            e.txn == t(1) && matches!(e.kind, EventKind::Inv(Op::TryCommit))
        });
        let read_resp = find(h, |e| {
            e.txn == t(2) && matches!(e.kind, EventKind::Resp(Ret::Value(_)))
        });
        let expected = tryc_inv < read_resp;
        let actual = DuOpacity::new().check(h).is_satisfied();
        assert_eq!(
            actual, expected,
            "deferred-update characterization failed for:\n{h}"
        );
    }
}

/// Every interleaving, every criterion: the search engine agrees with the
/// brute-force oracle on the complete schedule space of two conflicting
/// writers plus a reader.
#[test]
fn differential_on_complete_schedule_space() {
    let s1 = writer_script(t(1), x(), v(1));
    let s2 = writer_script(t(2), x(), v(2));
    // A short reader (no commit) of T2's value.
    let s3 = vec![
        Event::inv(t(3), Op::Read(x())),
        Event::resp(t(3), Ret::Value(v(2))),
    ];
    let all = interleavings(&[s1, s2, s3], 5_000);
    assert_eq!(all.len(), 3150);
    let mut satisfied = 0;
    for h in &all {
        for kind in [CriterionKind::DuOpacity, CriterionKind::FinalStateOpacity] {
            let fast = match kind {
                CriterionKind::DuOpacity => DuOpacity::new().check(h),
                _ => FinalStateOpacity::new().check(h),
            };
            let slow = check_by_enumeration(h, kind);
            assert_eq!(
                fast.is_satisfied(),
                slow.is_satisfied(),
                "divergence ({kind:?}) on:\n{h}"
            );
            if fast.is_satisfied() {
                satisfied += 1;
            }
        }
    }
    assert!(
        satisfied > 0,
        "schedule space must contain satisfiable schedules"
    );
    assert!(
        satisfied < 2 * all.len(),
        "schedule space must contain violating schedules"
    );
}

/// Prefix closure holds at every event of every interleaving (Corollary 2,
/// exhaustively): once a prefix is du-opaque, all shorter prefixes are.
#[test]
fn prefix_closure_exhaustive_on_schedule_space() {
    let s1 = writer_script(t(1), x(), v(1));
    let s2 = reader_script(t(2), x(), v(0));
    for h in interleavings(&[s1, s2], 100) {
        let mut seen_violation = false;
        for i in 0..=h.len() {
            let verdict = DuOpacity::new().check(&h.prefix(i));
            if seen_violation {
                assert!(
                    verdict.is_violated(),
                    "extension of a violating prefix cannot be du-opaque:\n{h}"
                );
            }
            seen_violation = verdict.is_violated();
        }
    }
}

/// Opacity equals "every prefix final-state opaque" by definition; verify
/// the optimized prefix-skipping implementation against the naive one on
/// the complete schedule space.
#[test]
fn opacity_prefix_optimization_is_sound() {
    let s1 = writer_script(t(1), x(), v(1));
    let s2 = reader_script(t(2), x(), v(1));
    for h in interleavings(&[s1, s2], 100) {
        let optimized = Opacity::new().check(&h).is_satisfied();
        let naive =
            (1..=h.len()).all(|i| FinalStateOpacity::new().check(&h.prefix(i)).is_satisfied());
        assert_eq!(optimized, naive, "opacity optimization diverged on:\n{h}");
    }
}
