//! Differential testing for the anytime machinery: the degradation
//! ladder and the partial-progress payload.
//!
//! The ladder's contract (DESIGN.md §9): every tier is *sound* — it may
//! turn an `Unknown` into a decided verdict, but it must never
//! contradict the exact search on a history the search can decide, and
//! toggling it must never flip a decided verdict. The payload's
//! contract: a budget-starved `Unknown` always says how far it got.

use duop_core::{
    Criterion, DuOpacity, FinalStateOpacity, ReadCommitOrderOpacity, SearchConfig, Tms2, Verdict,
};
use duop_gen::{HistoryGen, HistoryGenConfig};

fn criteria(cfg: SearchConfig) -> [(&'static str, Box<dyn Criterion>); 4] {
    [
        (
            "final-state",
            Box::new(FinalStateOpacity::with_config(cfg.clone())),
        ),
        ("du-opacity", Box::new(DuOpacity::with_config(cfg.clone()))),
        (
            "rco",
            Box::new(ReadCommitOrderOpacity::with_config(cfg.clone())),
        ),
        ("tms2", Box::new(Tms2::with_config(cfg))),
    ]
}

fn corpus() -> Vec<(u64, duop_history::History)> {
    let mut out = Vec::new();
    for seed in 0..80 {
        out.push((
            seed,
            HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate(),
        ));
    }
    for seed in 0..40 {
        out.push((
            1_000 + seed,
            HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate(),
        ));
    }
    out
}

/// On unbudgeted runs the search decides everything, so the ladder never
/// fires — and toggling it must change no verdict at all.
#[test]
fn ladder_toggle_never_changes_decided_verdicts() {
    for (tag, h) in corpus() {
        let on = SearchConfig {
            ladder: true,
            ..SearchConfig::default()
        };
        let off = SearchConfig {
            ladder: false,
            ..SearchConfig::default()
        };
        for ((name, with), (_, without)) in criteria(on).iter().zip(criteria(off).iter()) {
            let v_on = with.check(&h);
            let v_off = without.check(&h);
            assert!(
                !matches!(v_off, Verdict::Unknown { .. }),
                "{name}: unbudgeted run must decide, corpus tag {tag}"
            );
            assert_eq!(
                v_on.is_satisfied(),
                v_off.is_satisfied(),
                "{name}: ladder toggle flipped a verdict at corpus tag {tag}:\n{h}"
            );
        }
    }
}

/// Under a starvation budget the ladder may rescue a verdict — but a
/// rescued verdict must agree with the unbudgeted exact search, and an
/// unrescued `Unknown` must carry a non-empty partial payload naming the
/// tiers that ran.
#[test]
fn ladder_rescues_agree_with_exact_search_and_unknowns_carry_partial() {
    let mut rescued = 0usize;
    let mut unknowns = 0usize;
    for (tag, h) in corpus() {
        let starved = SearchConfig {
            max_states: Some(2),
            prelint: false,
            ladder: true,
            ..SearchConfig::default()
        };
        let exact_cfg = SearchConfig {
            prelint: false,
            ladder: false,
            ..SearchConfig::default()
        };
        for ((name, budgeted), (_, exact)) in
            criteria(starved).iter().zip(criteria(exact_cfg).iter())
        {
            let v = budgeted.check(&h);
            match v {
                Verdict::Unknown { partial, .. } => {
                    unknowns += 1;
                    let p = partial.unwrap_or_else(|| {
                        panic!("{name}: budget-starved Unknown without partial, corpus tag {tag}")
                    });
                    assert!(
                        !p.tiers.is_empty(),
                        "{name}: partial payload must name the tiers that ran, corpus tag {tag}"
                    );
                    assert!(
                        p.components_decided <= p.components_total,
                        "{name}: malformed component counts, corpus tag {tag}"
                    );
                }
                decided => {
                    let truth = exact.check(&h);
                    // A decided budgeted verdict — whether the search
                    // finished under budget or the ladder rescued it —
                    // must match the exact search.
                    assert_eq!(
                        decided.is_satisfied(),
                        truth.is_satisfied(),
                        "{name}: budgeted/ladder verdict contradicts exact search at corpus tag {tag}:\n{h}"
                    );
                    rescued += 1;
                }
            }
        }
    }
    // The corpus must actually exercise both paths.
    assert!(rescued > 10, "only {rescued} decided under starvation");
    assert!(unknowns > 10, "only {unknowns} unknowns under starvation");
}
