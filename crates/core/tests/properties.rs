//! Property-based tests of the paper's theorems over randomly generated
//! histories.

use duop_core::lemmas::{live_set_reorder, restrict_witness};
use duop_core::online::OnlineChecker;
use duop_core::unique::{check_unique_writes_fast, has_unique_writes};
use duop_core::{
    check_witness, Criterion, CriterionKind, DuOpacity, Opacity, StrictSerializability,
};
use duop_gen::{arb_history, GenMode, HistoryGen, HistoryGenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The simulated-mode generator drives a deferred-update TM, so its
    /// histories must be du-opaque (and therefore opaque — Theorem 10).
    #[test]
    fn simulated_histories_are_du_opaque(h in arb_history(HistoryGenConfig::medium_simulated())) {
        let verdict = DuOpacity::new().check(&h);
        prop_assert!(verdict.is_satisfied(), "history:\n{h}\nverdict: {verdict}");
        let w = verdict.witness().unwrap();
        prop_assert_eq!(check_witness(&h, w, CriterionKind::DuOpacity), Ok(()));
    }

    /// Corollary 2 (prefix-closure): every prefix of a du-opaque history is
    /// du-opaque, and Lemma 1's witness restriction certifies it directly.
    #[test]
    fn du_opacity_is_prefix_closed(h in arb_history(HistoryGenConfig::small_simulated())) {
        let verdict = DuOpacity::new().check(&h);
        prop_assume!(verdict.is_satisfied());
        let w = verdict.witness().unwrap();
        for i in 0..=h.len() {
            let prefix = h.prefix(i);
            // Direct check.
            prop_assert!(
                DuOpacity::new().check(&prefix).is_satisfied(),
                "prefix {i} of du-opaque history not du-opaque:\n{h}"
            );
            // Lemma 1 construction.
            let restricted = restrict_witness(&h, w, i);
            prop_assert_eq!(
                check_witness(&prefix, &restricted, CriterionKind::DuOpacity),
                Ok(()),
                "Lemma 1 witness fails at prefix {}", i
            );
        }
    }

    /// Theorem 10 (one direction): du-opaque implies opaque.
    #[test]
    fn du_opaque_implies_opaque(h in arb_history(HistoryGenConfig::small_adversarial())) {
        if DuOpacity::new().check(&h).is_satisfied() {
            prop_assert!(Opacity::new().check(&h).is_satisfied(), "history:\n{h}");
        }
    }

    /// Opaque implies strictly serializable (committed projection).
    #[test]
    fn opaque_implies_strictly_serializable(h in arb_history(HistoryGenConfig::small_adversarial())) {
        if Opacity::new().check(&h).is_satisfied() {
            prop_assert!(
                StrictSerializability::new().check(&h).is_satisfied(),
                "history:\n{h}"
            );
        }
    }

    /// Theorem 11: under unique writes, opacity and du-opacity coincide.
    #[test]
    fn theorem_11_unique_writes_equivalence(seed in any::<u64>()) {
        let cfg = HistoryGenConfig {
            unique_writes: true,
            mode: GenMode::Adversarial,
            ..HistoryGenConfig::small_adversarial()
        };
        let h = HistoryGen::new(cfg, seed).generate();
        prop_assume!(has_unique_writes(&h));
        let opaque = Opacity::new().check(&h).is_satisfied();
        let du = DuOpacity::new().check(&h).is_satisfied();
        prop_assert_eq!(opaque, du, "Theorem 11 violated on:\n{}", h);
    }

    /// The unique-writes fast path agrees with the general search.
    #[test]
    fn fast_path_agrees_with_search(seed in any::<u64>()) {
        let cfg = HistoryGenConfig {
            unique_writes: true,
            mode: GenMode::Adversarial,
            ..HistoryGenConfig::small_adversarial()
        };
        let h = HistoryGen::new(cfg, seed).generate();
        prop_assume!(has_unique_writes(&h));
        let (fast, _) = check_unique_writes_fast(&h);
        let general = DuOpacity::new().check(&h);
        prop_assert_eq!(fast.is_satisfied(), general.is_satisfied(), "history:\n{}", h);
        if let Some(w) = fast.witness() {
            prop_assert_eq!(check_witness(&h, w, CriterionKind::DuOpacity), Ok(()));
        }
    }

    /// Lemma 4: on complete histories, the live-set reorder of a witness is
    /// still a witness and respects `≺LS`.
    #[test]
    fn lemma_4_reorder_preserves_witness(seed in any::<u64>()) {
        let cfg = HistoryGenConfig {
            stall_prob: 0.0,
            ..HistoryGenConfig::small_simulated()
        };
        let h = HistoryGen::new(cfg, seed).generate();
        prop_assume!(h.is_complete());
        let verdict = DuOpacity::new().check(&h);
        prop_assume!(verdict.is_satisfied());
        let w = verdict.witness().unwrap();
        let reordered = live_set_reorder(&h, w);
        prop_assert_eq!(
            check_witness(&h, &reordered, CriterionKind::DuOpacity),
            Ok(()),
            "reordered witness invalid for:\n{}", h
        );
        let ids: Vec<_> = h.txn_ids().collect();
        for &a in &ids {
            for &b in &ids {
                if a != b && h.precedes_ls(a, b) {
                    prop_assert!(
                        reordered.position(a).unwrap() < reordered.position(b).unwrap(),
                        "≺LS violated: {} before {} in:\n{}", a, b, h
                    );
                }
            }
        }
    }

    /// The online monitor agrees with the batch checker on every prefix.
    #[test]
    fn online_matches_batch(h in arb_history(HistoryGenConfig::small_adversarial())) {
        let mut mon = OnlineChecker::new();
        for (i, ev) in h.events().iter().enumerate() {
            let online = mon.push(*ev).expect("prefix well-formed");
            let batch = DuOpacity::new().check(&h.prefix(i + 1));
            prop_assert_eq!(
                online.is_satisfied(),
                batch.is_satisfied(),
                "divergence at prefix {} of:\n{}", i + 1, h
            );
        }
    }

    /// Mutating a read value in a correct history is always detected by
    /// legality-sensitive criteria whenever the oracle detects it.
    #[test]
    fn corrupted_reads_verdicts_stay_differential(seed in any::<u64>()) {
        use rand::SeedableRng;
        let h = HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xDEAD);
        if let Some(m) = duop_gen::mutate::corrupt_read_value(&h, &mut rng) {
            let fast = DuOpacity::new().check(&m);
            let slow = duop_core::reference::check_by_enumeration(&m, CriterionKind::DuOpacity);
            prop_assert_eq!(fast.is_satisfied(), slow.is_satisfied(), "mutant:\n{}", m);
        }
    }
}

#[test]
fn medium_histories_check_quickly() {
    // Smoke-scale guard: STM-trace-sized simulated histories decide fast.
    use std::time::Instant;
    let start = Instant::now();
    for seed in 0..20 {
        let h = HistoryGen::new(
            HistoryGenConfig::medium_simulated()
                .with_txns(60)
                .with_concurrency(6),
            seed,
        )
        .generate();
        assert!(DuOpacity::new().check(&h).is_satisfied(), "seed {seed}");
    }
    assert!(
        start.elapsed().as_secs() < 30,
        "checker too slow: {:?}",
        start.elapsed()
    );
}

/// A NOrec-style TM with *value-based* validation admits ABA: an object
/// rewritten to the value a transaction previously read still validates.
/// The resulting histories are always opaque, but the ABA pattern makes
/// some of them non-du-opaque — a live instance of the Theorem 10
/// separation arising from a realistic implementation.
#[test]
fn value_validated_tm_is_opaque_but_not_always_du_opaque() {
    let cfg = HistoryGenConfig {
        txns: 30,
        objs: 2,
        ops_per_txn: (1, 3),
        read_ratio: 0.5,
        concurrency: 5,
        commit_prob: 0.95,
        stall_prob: 0.0,
        drop_prob: 0.0,
        unique_writes: false,
        barrier_every: 0,
        mode: GenMode::ValueValidated,
        key_dist: duop_gen::KeyDist::Uniform,
    };
    let mut du_violations = 0usize;
    for seed in 0..40 {
        let h = HistoryGen::new(cfg.clone(), seed).generate();
        assert!(
            Opacity::new().check(&h).is_satisfied(),
            "value-validated history not opaque at seed {seed}:\n{h}"
        );
        if DuOpacity::new().check(&h).is_violated() {
            du_violations += 1;
        }
    }
    assert!(
        du_violations > 0,
        "expected at least one ABA-induced du-opacity violation in 40 runs"
    );
}

/// Mutation differential: flipping a commit to an abort, or delaying a
/// tryC to the end of the history, produces histories on which the search
/// engine still agrees with the brute-force oracle.
#[test]
fn mutation_differential_flip_and_delay() {
    use duop_core::reference::check_by_enumeration;
    use rand::SeedableRng;
    let mut checked = 0;
    for seed in 0..120u64 {
        let h = HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
        for mutant in [
            duop_gen::mutate::flip_commit_to_abort(&h, &mut rng),
            duop_gen::mutate::delay_try_commit(&h, &mut rng),
        ]
        .into_iter()
        .flatten()
        {
            let fast = DuOpacity::new().check(&mutant);
            let slow = check_by_enumeration(&mutant, CriterionKind::DuOpacity);
            assert_eq!(
                fast.is_satisfied(),
                slow.is_satisfied(),
                "mutation divergence on:\n{mutant}"
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "only {checked} mutants exercised");
}

/// Delaying a tryC specifically attacks the deferred-update condition:
/// measure that it flips some du-opaque histories to violated while the
/// checker never diverges from the oracle (covered above). This pins the
/// Theorem 10 separation as a *reachable* mutation.
#[test]
fn delayed_try_commit_can_break_du_only() {
    use duop_core::{FinalStateOpacity, Opacity};
    use rand::SeedableRng;
    let mut du_broken = 0;
    let mut fso_kept = 0;
    for seed in 0..200u64 {
        let h = HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate();
        if !DuOpacity::new().check(&h).is_satisfied() {
            continue;
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let Some(mutant) = duop_gen::mutate::delay_try_commit(&h, &mut rng) else {
            continue;
        };
        if DuOpacity::new().check(&mutant).is_violated() {
            du_broken += 1;
            if FinalStateOpacity::new().check(&mutant).is_satisfied() {
                fso_kept += 1;
                // An opaque-but-not-du mutant is a fresh Theorem 10
                // separation witness; sanity-check opacity too.
                let _ = Opacity::new().check(&mutant);
            }
        }
    }
    assert!(
        du_broken > 0,
        "delaying tryC should break du-opacity sometimes"
    );
    assert!(
        fso_kept > 0,
        "some mutants should stay final-state opaque (the Theorem 10 gap)"
    );
}
