//! Differential testing: the search engine vs the brute-force enumeration
//! oracle, across thousands of randomly generated histories.

use duop_core::reference::check_by_enumeration;
use duop_core::{
    check_witness, Criterion, CriterionKind, DuOpacity, FinalStateOpacity, ReadCommitOrderOpacity,
    Tms2,
};
use duop_gen::{GenMode, HistoryGen, HistoryGenConfig};

fn kinds() -> [(CriterionKind, Box<dyn Criterion>); 4] {
    [
        (CriterionKind::DuOpacity, Box::new(DuOpacity::new())),
        (
            CriterionKind::FinalStateOpacity,
            Box::new(FinalStateOpacity::new()),
        ),
        (CriterionKind::Tms2, Box::new(Tms2::new())),
        (
            CriterionKind::ReadCommitOrder,
            Box::new(ReadCommitOrderOpacity::new()),
        ),
    ]
}

#[test]
fn search_matches_enumeration_on_adversarial_histories() {
    let mut satisfied = 0usize;
    let mut violated = 0usize;
    for seed in 0..400 {
        let h = HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate();
        for (kind, checker) in kinds() {
            let fast = checker.check(&h);
            let slow = check_by_enumeration(&h, kind);
            assert_eq!(
                fast.is_satisfied(),
                slow.is_satisfied(),
                "divergence for {kind:?} at seed {seed}:\n{h}\nfast: {fast}\nslow: {slow}"
            );
            if let Some(w) = fast.witness() {
                assert_eq!(
                    check_witness(&h, w, kind),
                    Ok(()),
                    "invalid witness for {kind:?} at seed {seed}"
                );
                satisfied += 1;
            } else {
                violated += 1;
            }
        }
    }
    // The adversarial generator must exercise both outcomes heavily.
    assert!(satisfied > 100, "only {satisfied} satisfied cases");
    assert!(violated > 100, "only {violated} violated cases");
}

#[test]
fn search_matches_enumeration_on_simulated_histories() {
    for seed in 0..200 {
        let h = HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate();
        for (kind, checker) in kinds() {
            let fast = checker.check(&h);
            let slow = check_by_enumeration(&h, kind);
            assert_eq!(
                fast.is_satisfied(),
                slow.is_satisfied(),
                "divergence for {kind:?} at seed {seed}:\n{h}"
            );
        }
    }
}

#[test]
fn search_matches_enumeration_with_memo_disabled() {
    use duop_core::SearchConfig;
    for seed in 200..320 {
        let h = HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate();
        let with = DuOpacity::new().check(&h);
        let without = DuOpacity::with_config(SearchConfig {
            memo: false,
            ..SearchConfig::default()
        })
        .check(&h);
        assert_eq!(with.is_satisfied(), without.is_satisfied(), "seed {seed}");
    }
}

#[test]
fn unique_writes_generator_matches_oracle() {
    let cfg = HistoryGenConfig {
        unique_writes: true,
        mode: GenMode::Adversarial,
        ..HistoryGenConfig::small_adversarial()
    };
    for seed in 0..200 {
        let h = HistoryGen::new(cfg.clone(), seed).generate();
        let fast = DuOpacity::new().check(&h);
        let slow = check_by_enumeration(&h, CriterionKind::DuOpacity);
        assert_eq!(
            fast.is_satisfied(),
            slow.is_satisfied(),
            "seed {seed}:\n{h}"
        );
    }
}
