//! Differential testing of the search planner: conflict-graph
//! decomposition on vs off, at 1 and 8 threads, across generated corpora
//! and synthetic multi-component histories.
//!
//! The contract (see DESIGN.md, "Search planner"): decomposition never
//! changes a verdict — it only changes *how* the serialization space is
//! traversed — and every positive verdict's witness independently passes
//! [`check_witness`]. Within one decomposition setting the witness is also
//! thread-count independent; across settings only the verdicts must agree
//! (the planner composes per-component fragments, so it may legitimately
//! find a different — equally valid — serialization than the monolithic
//! engine).

use duop_core::{
    check_witness, Criterion, CriterionKind, DuOpacity, ReadCommitOrderOpacity, SearchConfig, Tms2,
    Verdict, Violation,
};
use duop_gen::{HistoryGen, HistoryGenConfig};
use duop_history::{History, HistoryBuilder, ObjId, TxnId, Value};

/// Zeroes every `explored` counter so structurally identical violations
/// compare equal across engines (the planner explores far fewer states).
fn normalize_violation(v: &Violation) -> Violation {
    match v {
        Violation::NoSerialization { criterion, .. } => Violation::NoSerialization {
            criterion: criterion.clone(),
            explored: 0,
        },
        Violation::PrefixNotFinalStateOpaque { prefix_len, cause } => {
            Violation::PrefixNotFinalStateOpaque {
                prefix_len: *prefix_len,
                cause: Box::new(normalize_violation(cause)),
            }
        }
        other => other.clone(),
    }
}

/// Collapses a verdict to what must agree across engines: the outcome and
/// the (explored-normalized) violation. Witnesses are excluded — the
/// planner composes per-component fragments, so decomposition on and off
/// may find different, equally valid serializations; witness validity is
/// asserted separately via [`check_witness`].
fn normalize(v: &Verdict) -> Verdict {
    match v {
        Verdict::Violated(violation) => Verdict::Violated(normalize_violation(violation)),
        Verdict::Unknown { .. } => Verdict::Unknown {
            explored: 0,
            reason: duop_core::UnknownReason::StateBudget,
            partial: None,
        },
        Verdict::Satisfied(_) => Verdict::Satisfied(duop_core::Witness::new(
            Vec::new(),
            std::collections::BTreeMap::new(),
        )),
    }
}

fn cfg(decompose: bool, threads: usize) -> SearchConfig {
    SearchConfig {
        decompose,
        threads: Some(threads),
        ..SearchConfig::default()
    }
}

fn checkers(cfg: SearchConfig) -> [(CriterionKind, Box<dyn Criterion>); 3] {
    [
        (
            CriterionKind::DuOpacity,
            Box::new(DuOpacity::with_config(cfg.clone())),
        ),
        (
            CriterionKind::ReadCommitOrder,
            Box::new(ReadCommitOrderOpacity::with_config(cfg.clone())),
        ),
        (CriterionKind::Tms2, Box::new(Tms2::with_config(cfg))),
    ]
}

fn generated_corpus() -> Vec<(String, History)> {
    let mut out = Vec::new();
    for seed in 0..80 {
        out.push((
            format!("adversarial-{seed}"),
            HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate(),
        ));
    }
    for seed in 0..40 {
        out.push((
            format!("simulated-{seed}"),
            HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate(),
        ));
    }
    out
}

/// `clusters` disjoint writer/reader pairs on distinct objects, all
/// overlapping in real time (writers stay commit-pending until every
/// transaction has started) so the conflict graph genuinely splits.
fn clustered(clusters: u32, poison_last: bool) -> History {
    let t = TxnId::new;
    let v = Value::new;
    let mut b = HistoryBuilder::new();
    for c in 0..clusters {
        let w = t(c * 2 + 1);
        b = b
            .inv_write(w, ObjId::new(c), v(u64::from(c) + 1))
            .resp_ok(w)
            .inv_try_commit(w);
    }
    for c in 0..clusters {
        let r = t(c * 2 + 2);
        // The poisoned cluster's reader returns a value nobody wrote.
        let seen = if poison_last && c == clusters - 1 {
            v(99)
        } else {
            v(u64::from(c) + 1)
        };
        b = b.inv_read(r, ObjId::new(c)).resp_value(r, seen);
    }
    for c in 0..clusters {
        b = b.commit(t(c * 2 + 2));
    }
    b.build()
}

/// `clusters - 1` satisfiable clusters plus one cluster whose violation is
/// only provable by exhausting its serialization space: the writer commits
/// strictly before the reader begins, yet the reader sees the initial
/// value. The satisfiable clusters' transactions all start before the
/// stale pair completes, so the components stay disjoint. Refuting this
/// history monolithically interleaves the stale pair with every other
/// cluster; the planner exhausts just the two-transaction component.
fn clustered_stale(clusters: u32) -> History {
    let t = TxnId::new;
    let v = Value::new;
    let mut b = HistoryBuilder::new();
    for c in 0..clusters - 1 {
        let w = t(c * 2 + 1);
        b = b
            .inv_write(w, ObjId::new(c), v(u64::from(c) + 1))
            .resp_ok(w)
            .inv_try_commit(w);
    }
    for c in 0..clusters - 1 {
        b = b.inv_read(t(c * 2 + 2), ObjId::new(c));
    }
    let stale_obj = ObjId::new(clusters - 1);
    b = b
        .committed_writer(t(clusters * 2 - 1), stale_obj, v(5))
        .committed_reader(t(clusters * 2), stale_obj, v(0));
    for c in 0..clusters - 1 {
        b = b.resp_value(t(c * 2 + 2), v(u64::from(c) + 1));
    }
    for c in 0..clusters - 1 {
        b = b.commit(t(c * 2 + 2));
    }
    b.build()
}

fn full_corpus() -> Vec<(String, History)> {
    let mut corpus = generated_corpus();
    for k in [2u32, 3, 4, 6] {
        corpus.push((format!("clustered-{k}"), clustered(k, false)));
        corpus.push((format!("clustered-{k}-poisoned"), clustered(k, true)));
        corpus.push((format!("clustered-{k}-stale"), clustered_stale(k)));
    }
    corpus
}

#[test]
fn decomposition_preserves_verdicts_and_witness_validity() {
    let mut satisfied = 0usize;
    let mut violated = 0usize;
    for (tag, h) in full_corpus() {
        for (kind, baseline_checker) in checkers(cfg(true, 1)) {
            let baseline = baseline_checker.check(&h);
            for decompose in [true, false] {
                for threads in [1usize, 8] {
                    let (_, checker) = checkers(cfg(decompose, threads))
                        .into_iter()
                        .find(|(k, _)| *k == kind)
                        .expect("kind present");
                    let verdict = checker.check(&h);
                    assert_eq!(
                        normalize(&verdict),
                        normalize(&baseline),
                        "{kind:?} diverges (decompose={decompose}, threads={threads}) on {tag}:\n{h}"
                    );
                    if let Some(w) = verdict.witness() {
                        check_witness(&h, w, kind).unwrap_or_else(|e| {
                            panic!(
                                "{kind:?} witness invalid (decompose={decompose}, \
                                 threads={threads}) on {tag}: {e}\n{h}"
                            )
                        });
                    }
                }
            }
            if kind == CriterionKind::DuOpacity {
                if baseline.is_satisfied() {
                    satisfied += 1;
                } else {
                    violated += 1;
                }
            }
        }
    }
    // The corpus must exercise both outcomes.
    assert!(satisfied > 15, "only {satisfied} satisfied histories");
    assert!(violated > 15, "only {violated} violated histories");
}

#[test]
fn witness_is_thread_count_independent_per_mode() {
    for (tag, h) in full_corpus() {
        for decompose in [true, false] {
            let one = DuOpacity::with_config(cfg(decompose, 1)).check(&h);
            let eight = DuOpacity::with_config(cfg(decompose, 8)).check(&h);
            assert_eq!(
                one.witness(),
                eight.witness(),
                "witness differs between 1 and 8 threads (decompose={decompose}) on {tag}:\n{h}"
            );
        }
    }
}

#[test]
fn decomposition_explores_fewer_states_on_clustered_histories() {
    let h = clustered_stale(4);
    // Disable the lint and saturation prefilters: this test compares the
    // two *search* engines, and either prefilter refutes this corpus
    // without searching.
    let no_prelint = |decompose| SearchConfig {
        prelint: false,
        saturate: false,
        ..cfg(decompose, 1)
    };
    let (planned_verdict, planned) = DuOpacity::with_config(no_prelint(true)).check_with_stats(&h);
    let (mono_verdict, mono) = DuOpacity::with_config(no_prelint(false)).check_with_stats(&h);
    assert!(planned_verdict.is_violated());
    assert!(mono_verdict.is_violated());
    assert!(
        planned.explored < mono.explored,
        "planned search should explore fewer states: planned {} vs monolithic {}",
        planned.explored,
        mono.explored
    );
}
