//! The coordinator ↔ worker wire protocol.
//!
//! Messages travel as length-prefixed frames reusing the `.duob`
//! primitives from `duop_history::binary` — LEB128 varints for every
//! integer and a CRC-32 guard per frame:
//!
//! ```text
//! frame := type:u8  len:varint  payload:[u8; len]  crc32:u32-le
//! ```
//!
//! The CRC covers the type byte and the payload, so a flipped frame type
//! is caught exactly like flipped payload bytes. Frame types:
//!
//! | type | direction | payload |
//! |------|-----------|---------|
//! | `H`  | both      | `DUOS` magic + version varint (handshake) |
//! | `T`  | coord → worker | task id, attempt, criterion token, flags, budgets, `.duob` sub-history |
//! | `V`  | worker → coord | task id, explored counter, encoded verdict |
//! | `S`  | coord → worker | empty (orderly shutdown) |
//! | `C`  | daemon → coord | magic + version + per-connection nonce (TCP auth challenge) |
//! | `A`  | coord → daemon | keyed SipHash-2-4 tag over the nonce (TCP auth response) |
//! | `P`  | both      | empty (liveness heartbeat on the TCP transport) |
//!
//! A decoder never panics on malformed input: every failure is a
//! structured [`ProtocolError`] the worker turns into exit code 2,
//! mirroring the `.duob` ingestion contract.

use duop_core::certificate::{Certificate, Rule, Step};
use duop_core::lint::{self, Applicability, Diagnostic, Severity, Span};
use duop_core::{PartialProgress, PlanCriterion, UnknownReason, Verdict, Violation, Witness};
use duop_history::binary::{crc32, decode_varint, write_varint, Crc32};
use duop_history::{ObjId, TxnId, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};

/// Handshake magic, distinguishing the shard protocol from a stray
/// `.duob` file (`DUOB`).
pub const MAGIC: &[u8; 4] = b"DUOS";
/// Protocol version sent (and required) in the handshake.
pub const VERSION: u64 = 1;

/// Frame type: handshake.
pub const FRAME_HELLO: u8 = b'H';
/// Frame type: task dispatch.
pub const FRAME_TASK: u8 = b'T';
/// Frame type: verdict reply.
pub const FRAME_VERDICT: u8 = b'V';
/// Frame type: orderly shutdown.
pub const FRAME_SHUTDOWN: u8 = b'S';
/// Frame type: authentication challenge (daemon → coordinator over TCP;
/// payload: magic, version varint, per-connection nonce).
pub const FRAME_CHALLENGE: u8 = b'C';
/// Frame type: authentication response (coordinator → daemon; payload:
/// the keyed tag over the challenge nonce).
pub const FRAME_AUTH: u8 = b'A';
/// Frame type: liveness ping (either direction, empty payload). Workers
/// ignore it; the coordinator timestamps it.
pub const FRAME_HEARTBEAT: u8 = b'P';

/// Hard cap on a frame payload. A task frame wraps a whole `.duob`
/// sub-history (itself internally framed), so this is far above
/// `duop_history::binary::MAX_FRAME_BYTES` — it only exists so a
/// corrupted length cannot drive allocation to the address-space limit.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 30;

/// A structured protocol failure: I/O trouble or malformed bytes.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The bytes do not parse as the frame or message they claim to be.
    Malformed {
        /// What was being decoded.
        context: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol i/o error: {e}"),
            ProtocolError::Malformed { context, detail } => {
                write!(f, "malformed {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

fn malformed(context: &'static str, detail: impl Into<String>) -> ProtocolError {
    ProtocolError::Malformed {
        context,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------------

/// Writes one frame: type byte, varint length, payload, CRC-32 over the
/// type byte and payload.
pub fn write_frame(w: &mut impl Write, ty: u8, payload: &[u8]) -> Result<(), ProtocolError> {
    let mut header = Vec::with_capacity(11);
    header.push(ty);
    write_varint(&mut header, payload.len() as u64);
    w.write_all(&header)?;
    w.write_all(payload)?;
    // The CRC covers [ty] ++ payload; incremental updates avoid
    // gathering a task's whole `.duob` sub-history into a second buffer.
    let mut digest = Crc32::new();
    digest.update(&[ty]);
    digest.update(payload);
    w.write_all(&digest.finish().to_le_bytes())?;
    Ok(())
}

fn read_exact_ctx(
    inner: &mut impl Read,
    out: &mut [u8],
    context: &'static str,
) -> Result<(), ProtocolError> {
    inner.read_exact(out).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            malformed(context, "stream ended mid-frame")
        } else {
            ProtocolError::Io(e)
        }
    })
}

/// Reads frames off a byte stream, reusing one payload buffer across
/// frames.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream.
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
        }
    }

    fn read_exact(&mut self, out: &mut [u8], context: &'static str) -> Result<(), ProtocolError> {
        read_exact_ctx(&mut self.inner, out, context)
    }

    /// Reads a varint byte-by-byte off the stream (the slice decoder
    /// needs the bytes in memory; a frame length is not).
    fn read_varint_stream(&mut self, context: &'static str) -> Result<u64, ProtocolError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        for i in 0..10 {
            let mut byte = [0u8; 1];
            self.read_exact(&mut byte, context)?;
            let b = byte[0];
            if shift == 63 && b > 1 {
                return Err(malformed(context, "varint overflows 64 bits"));
            }
            value |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if i == 9 {
                break;
            }
        }
        Err(malformed(context, "varint longer than 10 bytes"))
    }

    /// Reads the next frame, returning its type and payload, or `None` on
    /// a clean end-of-stream at a frame boundary.
    pub fn read_frame(&mut self) -> Result<Option<(u8, &[u8])>, ProtocolError> {
        let mut ty = [0u8; 1];
        match self.inner.read_exact(&mut ty) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(ProtocolError::Io(e)),
        }
        let len = self.read_varint_stream("frame length")?;
        if len as usize > MAX_PAYLOAD_BYTES {
            return Err(malformed(
                "frame length",
                format!("{len} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte cap"),
            ));
        }
        self.buf.clear();
        self.buf.resize(len as usize + 1, 0);
        self.buf[0] = ty[0];
        read_exact_ctx(&mut self.inner, &mut self.buf[1..], "frame payload")?;
        let mut crc_bytes = [0u8; 4];
        self.read_exact(&mut crc_bytes, "frame checksum")?;
        let expected = u32::from_le_bytes(crc_bytes);
        let actual = crc32(&self.buf);
        if actual != expected {
            return Err(malformed(
                "frame checksum",
                format!("crc mismatch: stored {expected:#010x}, computed {actual:#010x}"),
            ));
        }
        Ok(Some((ty[0], &self.buf[1..])))
    }
}

// ---------------------------------------------------------------------------
// Slice decoding helpers
// ---------------------------------------------------------------------------

fn get_varint(bytes: &[u8], pos: &mut usize, context: &'static str) -> Result<u64, ProtocolError> {
    decode_varint(bytes, pos, 0).map_err(|e| malformed(context, e.to_string()))
}

fn get_u8(bytes: &[u8], pos: &mut usize, context: &'static str) -> Result<u8, ProtocolError> {
    let b = *bytes
        .get(*pos)
        .ok_or_else(|| malformed(context, "payload ends early"))?;
    *pos += 1;
    Ok(b)
}

fn get_bytes<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    context: &'static str,
) -> Result<&'a [u8], ProtocolError> {
    let len = get_varint(bytes, pos, context)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| malformed(context, "length prefix exceeds payload"))?;
    let out = &bytes[*pos..end];
    *pos = end;
    Ok(out)
}

fn get_str(bytes: &[u8], pos: &mut usize, context: &'static str) -> Result<String, ProtocolError> {
    let raw = get_bytes(bytes, pos, context)?;
    String::from_utf8(raw.to_vec()).map_err(|_| malformed(context, "invalid utf-8"))
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn expect_end(bytes: &[u8], pos: usize, context: &'static str) -> Result<(), ProtocolError> {
    if pos == bytes.len() {
        Ok(())
    } else {
        Err(malformed(context, "trailing bytes after message"))
    }
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Encodes the handshake payload.
pub fn encode_hello() -> Vec<u8> {
    let mut out = Vec::with_capacity(6);
    out.extend_from_slice(MAGIC);
    write_varint(&mut out, VERSION);
    out
}

/// Validates a handshake payload.
pub fn decode_hello(payload: &[u8]) -> Result<(), ProtocolError> {
    if payload.len() < 4 || &payload[..4] != MAGIC {
        return Err(malformed("handshake", "bad magic"));
    }
    let mut pos = 4;
    let version = get_varint(payload, &mut pos, "handshake")?;
    if version != VERSION {
        return Err(malformed(
            "handshake",
            format!("version {version}, expected {VERSION}"),
        ));
    }
    expect_end(payload, pos, "handshake")
}

// ---------------------------------------------------------------------------
// Authenticated hello (TCP transport)
// ---------------------------------------------------------------------------

/// Bytes of the per-connection challenge nonce.
pub const NONCE_LEN: usize = 16;
/// Bytes of the keyed authentication tag.
pub const TAG_LEN: usize = 8;

/// SipHash-2-4 over `data` under the 128-bit key `(k0, k1)`. Hand-rolled
/// because the repo carries no external crypto dependency; the reference
/// construction (Aumasson–Bernstein) is small enough to own.
fn sip24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v0 = 0x736f6d6570736575u64 ^ k0;
    let mut v1 = 0x646f72616e646f6du64 ^ k1;
    let mut v2 = 0x6c7967656e657261u64 ^ k0;
    let mut v3 = 0x7465646279746573u64 ^ k1;
    let round = |v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64| {
        *v0 = v0.wrapping_add(*v1);
        *v1 = v1.rotate_left(13) ^ *v0;
        *v0 = v0.rotate_left(32);
        *v2 = v2.wrapping_add(*v3);
        *v3 = v3.rotate_left(16) ^ *v2;
        *v0 = v0.wrapping_add(*v3);
        *v3 = v3.rotate_left(21) ^ *v0;
        *v2 = v2.wrapping_add(*v1);
        *v1 = v1.rotate_left(17) ^ *v2;
        *v2 = v2.rotate_left(32);
    };
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v3 ^= m;
        round(&mut v0, &mut v1, &mut v2, &mut v3);
        round(&mut v0, &mut v1, &mut v2, &mut v3);
        v0 ^= m;
    }
    let rest = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rest.len()].copy_from_slice(rest);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v3 ^= m;
    round(&mut v0, &mut v1, &mut v2, &mut v3);
    round(&mut v0, &mut v1, &mut v2, &mut v3);
    v0 ^= m;
    v2 ^= 0xff;
    for _ in 0..4 {
        round(&mut v0, &mut v1, &mut v2, &mut v3);
    }
    v0 ^ v1 ^ v2 ^ v3
}

/// Derives the 128-bit MAC key from an arbitrary-length shared secret:
/// two SipHash passes under distinct fixed domain-separation keys.
fn derive_key(secret: &[u8]) -> (u64, u64) {
    let k0 = sip24(0x64756f702d736864, 0x6b65792d64657230, secret);
    let k1 = sip24(0x64756f702d736864, 0x6b65792d64657231, secret);
    (k0, k1)
}

/// The authentication tag a coordinator must present for `nonce`:
/// `SipHash-2-4(derive(secret), nonce ‖ "DUOS-hello-v1")`. A tag is
/// bound to its connection's nonce, so a captured handshake replays
/// against a fresh nonce as garbage.
pub fn auth_tag(secret: &[u8], nonce: &[u8; NONCE_LEN]) -> [u8; TAG_LEN] {
    let (k0, k1) = derive_key(secret);
    let mut msg = Vec::with_capacity(NONCE_LEN + 13);
    msg.extend_from_slice(nonce);
    msg.extend_from_slice(b"DUOS-hello-v1");
    sip24(k0, k1, &msg).to_le_bytes()
}

/// Constant-time byte-slice equality: the comparison cost never depends
/// on where the first mismatch sits, so a remote cannot binary-search
/// the tag byte by byte off response timing.
#[must_use]
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Encodes a challenge payload: magic, version, nonce.
pub fn encode_challenge(nonce: &[u8; NONCE_LEN]) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + NONCE_LEN);
    out.extend_from_slice(MAGIC);
    write_varint(&mut out, VERSION);
    put_bytes(&mut out, nonce);
    out
}

/// Decodes and validates a challenge payload, returning the nonce.
pub fn decode_challenge(payload: &[u8]) -> Result<[u8; NONCE_LEN], ProtocolError> {
    if payload.len() < 4 || &payload[..4] != MAGIC {
        return Err(malformed("challenge", "bad magic"));
    }
    let mut pos = 4;
    let version = get_varint(payload, &mut pos, "challenge")?;
    if version != VERSION {
        return Err(malformed(
            "challenge",
            format!("version {version}, expected {VERSION}"),
        ));
    }
    let raw = get_bytes(payload, &mut pos, "challenge")?;
    let nonce: [u8; NONCE_LEN] = raw.try_into().map_err(|_| {
        malformed(
            "challenge",
            format!("nonce is {} bytes, expected {NONCE_LEN}", raw.len()),
        )
    })?;
    expect_end(payload, pos, "challenge")?;
    Ok(nonce)
}

/// Encodes an auth-response payload (the tag alone).
pub fn encode_auth(tag: &[u8; TAG_LEN]) -> Vec<u8> {
    tag.to_vec()
}

/// Decodes an auth-response payload.
pub fn decode_auth(payload: &[u8]) -> Result<[u8; TAG_LEN], ProtocolError> {
    payload.try_into().map_err(|_| {
        malformed(
            "auth response",
            format!("tag is {} bytes, expected {TAG_LEN}", payload.len()),
        )
    })
}

// ---------------------------------------------------------------------------
// Task frames
// ---------------------------------------------------------------------------

/// One unit of work shipped to a worker: a criterion token plus a
/// `.duob`-encoded (sub-)history and the search budgets to apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskMsg {
    /// Coordinator-assigned task id, echoed in the verdict frame.
    pub task_id: u64,
    /// How many workers have already died holding this task (the retry
    /// counter; fault-injection hooks key off attempt 0).
    pub attempt: u64,
    /// Criterion token (`du`, `final-state`, `rco`, `tms2`, `strict`,
    /// `opacity`).
    pub criterion: String,
    /// Run the lint prefilter in the worker (off for component tasks —
    /// the coordinator already linted the whole history).
    pub prelint: bool,
    /// Run the verdict-degradation ladder in the worker (off for
    /// component tasks — the coordinator applies it to the merged
    /// verdict).
    pub ladder: bool,
    /// Run the search planner in the worker (always on for component
    /// tasks; mirrors `--no-decompose` for whole-history tasks).
    pub decompose: bool,
    /// Run the certifying saturation prefilter in the worker (off for
    /// component tasks — the coordinator already saturated the whole
    /// history; mirrors `--no-saturate` for whole-history tasks).
    pub saturate: bool,
    /// State budget, `0` = unlimited.
    pub max_states: u64,
    /// Wall-clock deadline in milliseconds, `0` = none.
    pub deadline_ms: u64,
    /// The `.duob`-encoded history to check.
    pub history: Vec<u8>,
}

/// Encodes a task payload.
pub fn encode_task(msg: &TaskMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(msg.history.len() + 64);
    write_varint(&mut out, msg.task_id);
    write_varint(&mut out, msg.attempt);
    put_bytes(&mut out, msg.criterion.as_bytes());
    out.push(
        u8::from(msg.prelint)
            | (u8::from(msg.ladder) << 1)
            | (u8::from(msg.decompose) << 2)
            | (u8::from(msg.saturate) << 3),
    );
    write_varint(&mut out, msg.max_states);
    write_varint(&mut out, msg.deadline_ms);
    put_bytes(&mut out, &msg.history);
    out
}

/// Decodes a task payload.
pub fn decode_task(payload: &[u8]) -> Result<TaskMsg, ProtocolError> {
    let mut pos = 0;
    let task_id = get_varint(payload, &mut pos, "task")?;
    let attempt = get_varint(payload, &mut pos, "task")?;
    let criterion = get_str(payload, &mut pos, "task criterion")?;
    let flags = get_u8(payload, &mut pos, "task flags")?;
    if flags & !0b1111 != 0 {
        return Err(malformed("task flags", format!("unknown bits {flags:#x}")));
    }
    let max_states = get_varint(payload, &mut pos, "task budget")?;
    let deadline_ms = get_varint(payload, &mut pos, "task deadline")?;
    let history = get_bytes(payload, &mut pos, "task history")?.to_vec();
    expect_end(payload, pos, "task")?;
    Ok(TaskMsg {
        task_id,
        attempt,
        criterion,
        prelint: flags & 0b0001 != 0,
        ladder: flags & 0b0010 != 0,
        decompose: flags & 0b0100 != 0,
        saturate: flags & 0b1000 != 0,
        max_states,
        deadline_ms,
        history,
    })
}

// ---------------------------------------------------------------------------
// Verdict frames
// ---------------------------------------------------------------------------

/// A worker's answer for one task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerdictMsg {
    /// The task this answers.
    pub task_id: u64,
    /// Explored-state counter of the worker's search (also embedded in
    /// violated/unknown verdicts; carried separately so satisfied tasks
    /// contribute to the coordinator's cumulative counts too).
    pub explored: u64,
    /// The verdict itself.
    pub verdict: Verdict,
}

const VERDICT_SATISFIED: u8 = 0;
const VERDICT_VIOLATED: u8 = 1;
const VERDICT_UNKNOWN: u8 = 2;

const VIOLATION_INTERNAL_READ: u8 = 0;
const VIOLATION_MISSING_WRITER: u8 = 1;
const VIOLATION_CONSTRAINT_CYCLE: u8 = 2;
const VIOLATION_NO_SERIALIZATION: u8 = 3;
const VIOLATION_PREFIX: u8 = 4;
const VIOLATION_LINT_REFUTED: u8 = 5;
const VIOLATION_CERTIFIED: u8 = 6;

const RULE_REAL_TIME: u8 = 0;
const RULE_READ_FROM: u8 = 1;
const RULE_ANTI_DEPENDENCY: u8 = 2;
const RULE_READ_COMMIT_ORDER: u8 = 3;
const RULE_TMS2_COMMIT_ORDER: u8 = 4;
const RULE_TRANSITIVE: u8 = 5;
const RULE_INTERFERENCE_AFTER: u8 = 6;
const RULE_INTERFERENCE_BEFORE: u8 = 7;

const SEVERITY_TAGS: [(Severity, u8); 3] = [
    (Severity::Error, 0),
    (Severity::Warning, 1),
    (Severity::Note, 2),
];

const APPLICABILITY_TAGS: [(Applicability, u8); 4] = [
    (Applicability::AllCriteria, 0),
    (Applicability::DuOpacityOnly, 1),
    (Applicability::ReadCommitOrderOnly, 2),
    (Applicability::Tms2Only, 3),
];

const REASON_TAGS: [(UnknownReason, u8); 5] = [
    (UnknownReason::StateBudget, 0),
    (UnknownReason::Deadline, 1),
    (UnknownReason::WorkerPanic, 2),
    (UnknownReason::Interrupted, 3),
    (UnknownReason::WorkerDeath, 4),
];

/// The ladder tiers a partial-progress payload may name. Tiers are
/// `&'static str` in core, so decoding maps bytes back to this closed
/// set.
const KNOWN_TIERS: [&str; 3] = ["exact-search", "lint", "unique-writes"];

fn put_violation(out: &mut Vec<u8>, v: &Violation) -> Result<(), ProtocolError> {
    match v {
        Violation::InternalReadInconsistency {
            txn,
            obj,
            got,
            expected,
        } => {
            out.push(VIOLATION_INTERNAL_READ);
            write_varint(out, u64::from(txn.index()));
            write_varint(out, u64::from(obj.index()));
            write_varint(out, got.get());
            write_varint(out, expected.get());
        }
        Violation::MissingWriter { txn, obj, value } => {
            out.push(VIOLATION_MISSING_WRITER);
            write_varint(out, u64::from(txn.index()));
            write_varint(out, u64::from(obj.index()));
            write_varint(out, value.get());
        }
        Violation::ConstraintCycle { txns } => {
            out.push(VIOLATION_CONSTRAINT_CYCLE);
            write_varint(out, txns.len() as u64);
            for t in txns {
                write_varint(out, u64::from(t.index()));
            }
        }
        Violation::NoSerialization {
            criterion,
            explored,
        } => {
            out.push(VIOLATION_NO_SERIALIZATION);
            put_bytes(out, criterion.as_bytes());
            write_varint(out, *explored);
        }
        Violation::PrefixNotFinalStateOpaque { prefix_len, cause } => {
            out.push(VIOLATION_PREFIX);
            write_varint(out, *prefix_len as u64);
            put_violation(out, cause)?;
        }
        // Component tasks never produce this (their prelint runs in the
        // coordinator), but whole-history tasks do — opacity in
        // particular embeds lint refutations inside prefix causes.
        Violation::LintRefuted {
            criterion,
            diagnostic,
        } => {
            out.push(VIOLATION_LINT_REFUTED);
            put_bytes(out, criterion.as_bytes());
            put_diagnostic(out, diagnostic);
        }
        // Saturation refutations travel with their full certificate so the
        // coordinator's verdict is byte-identical to a local run's and the
        // user can re-validate it with `check_certificate`.
        Violation::Certified {
            criterion,
            certificate,
        } => {
            out.push(VIOLATION_CERTIFIED);
            put_bytes(out, criterion.as_bytes());
            put_certificate(out, certificate);
        }
    }
    Ok(())
}

fn put_rule(out: &mut Vec<u8>, rule: &Rule) {
    match *rule {
        Rule::RealTime => out.push(RULE_REAL_TIME),
        Rule::ReadFrom { obj, value, read } => {
            out.push(RULE_READ_FROM);
            write_varint(out, u64::from(obj.index()));
            write_varint(out, value.get());
            write_varint(out, read as u64);
        }
        Rule::AntiDependency { obj, read } => {
            out.push(RULE_ANTI_DEPENDENCY);
            write_varint(out, u64::from(obj.index()));
            write_varint(out, read as u64);
        }
        Rule::ReadCommitOrder { obj, read, tryc } => {
            out.push(RULE_READ_COMMIT_ORDER);
            write_varint(out, u64::from(obj.index()));
            write_varint(out, read as u64);
            write_varint(out, tryc as u64);
        }
        Rule::Tms2CommitOrder { obj, resp, tryc } => {
            out.push(RULE_TMS2_COMMIT_ORDER);
            write_varint(out, u64::from(obj.index()));
            write_varint(out, resp as u64);
            write_varint(out, tryc as u64);
        }
        Rule::Transitive { first, second } => {
            out.push(RULE_TRANSITIVE);
            write_varint(out, first as u64);
            write_varint(out, second as u64);
        }
        Rule::InterferenceAfter { read_from, before } => {
            out.push(RULE_INTERFERENCE_AFTER);
            write_varint(out, read_from as u64);
            write_varint(out, before as u64);
        }
        Rule::InterferenceBefore { read_from, after } => {
            out.push(RULE_INTERFERENCE_BEFORE);
            write_varint(out, read_from as u64);
            write_varint(out, after as u64);
        }
    }
}

fn put_certificate(out: &mut Vec<u8>, cert: &Certificate) {
    put_bytes(out, cert.criterion.token().as_bytes());
    write_varint(out, cert.steps.len() as u64);
    for step in &cert.steps {
        write_varint(out, u64::from(step.from.index()));
        write_varint(out, u64::from(step.to.index()));
        put_rule(out, &step.rule);
    }
    write_varint(out, cert.cycle.len() as u64);
    for &s in &cert.cycle {
        write_varint(out, s as u64);
    }
}

fn put_span(out: &mut Vec<u8>, span: &Span) {
    write_varint(out, span.event as u64);
    put_bytes(out, span.label.as_bytes());
}

fn put_diagnostic(out: &mut Vec<u8>, d: &Diagnostic) {
    put_bytes(out, d.rule.as_bytes());
    let severity = SEVERITY_TAGS
        .iter()
        .find(|(s, _)| *s == d.severity)
        .map(|&(_, t)| t)
        .expect("every severity is in the table");
    out.push(severity);
    let applicability = APPLICABILITY_TAGS
        .iter()
        .find(|(a, _)| *a == d.applicability)
        .map(|&(_, t)| t)
        .expect("every applicability is in the table");
    out.push(applicability);
    put_bytes(out, d.message.as_bytes());
    put_span(out, &d.primary);
    write_varint(out, d.secondary.len() as u64);
    for span in &d.secondary {
        put_span(out, span);
    }
}

fn get_span(bytes: &[u8], pos: &mut usize) -> Result<Span, ProtocolError> {
    Ok(Span {
        event: get_varint(bytes, pos, "span event")? as usize,
        label: get_str(bytes, pos, "span label")?,
    })
}

fn get_diagnostic(bytes: &[u8], pos: &mut usize) -> Result<Diagnostic, ProtocolError> {
    let rule_raw = get_str(bytes, pos, "diagnostic rule")?;
    // Rule ids are `&'static str` in core: map back through the registry.
    let rule = lint::rules()
        .iter()
        .find(|r| r.id == rule_raw)
        .map(|r| r.id)
        .ok_or_else(|| malformed("diagnostic rule", format!("unknown rule {rule_raw:?}")))?;
    let severity_tag = get_u8(bytes, pos, "diagnostic severity")?;
    let severity = SEVERITY_TAGS
        .iter()
        .find(|&&(_, t)| t == severity_tag)
        .map(|&(s, _)| s)
        .ok_or_else(|| malformed("diagnostic severity", format!("unknown tag {severity_tag}")))?;
    let applicability_tag = get_u8(bytes, pos, "diagnostic applicability")?;
    let applicability = APPLICABILITY_TAGS
        .iter()
        .find(|&&(_, t)| t == applicability_tag)
        .map(|&(a, _)| a)
        .ok_or_else(|| {
            malformed(
                "diagnostic applicability",
                format!("unknown tag {applicability_tag}"),
            )
        })?;
    let message = get_str(bytes, pos, "diagnostic message")?;
    let primary = get_span(bytes, pos)?;
    let n = get_varint(bytes, pos, "diagnostic secondary")? as usize;
    if n > bytes.len() {
        return Err(malformed("diagnostic secondary", "count exceeds payload"));
    }
    let mut secondary = Vec::with_capacity(n);
    for _ in 0..n {
        secondary.push(get_span(bytes, pos)?);
    }
    Ok(Diagnostic {
        rule,
        severity,
        applicability,
        message,
        primary,
        secondary,
    })
}

fn get_violation(bytes: &[u8], pos: &mut usize, depth: u8) -> Result<Violation, ProtocolError> {
    if depth > 32 {
        return Err(malformed("violation", "nesting too deep"));
    }
    let tag = get_u8(bytes, pos, "violation tag")?;
    Ok(match tag {
        VIOLATION_INTERNAL_READ => Violation::InternalReadInconsistency {
            txn: txn_id(get_varint(bytes, pos, "violation txn")?)?,
            obj: obj_id(get_varint(bytes, pos, "violation obj")?)?,
            got: Value::new(get_varint(bytes, pos, "violation value")?),
            expected: Value::new(get_varint(bytes, pos, "violation value")?),
        },
        VIOLATION_MISSING_WRITER => Violation::MissingWriter {
            txn: txn_id(get_varint(bytes, pos, "violation txn")?)?,
            obj: obj_id(get_varint(bytes, pos, "violation obj")?)?,
            value: Value::new(get_varint(bytes, pos, "violation value")?),
        },
        VIOLATION_CONSTRAINT_CYCLE => {
            let n = get_varint(bytes, pos, "violation cycle")? as usize;
            if n > bytes.len() {
                return Err(malformed("violation cycle", "count exceeds payload"));
            }
            let mut txns = Vec::with_capacity(n);
            for _ in 0..n {
                txns.push(txn_id(get_varint(bytes, pos, "violation txn")?)?);
            }
            Violation::ConstraintCycle { txns }
        }
        VIOLATION_NO_SERIALIZATION => Violation::NoSerialization {
            criterion: get_str(bytes, pos, "violation criterion")?,
            explored: get_varint(bytes, pos, "violation explored")?,
        },
        VIOLATION_PREFIX => Violation::PrefixNotFinalStateOpaque {
            prefix_len: get_varint(bytes, pos, "violation prefix")? as usize,
            cause: Box::new(get_violation(bytes, pos, depth + 1)?),
        },
        VIOLATION_LINT_REFUTED => Violation::LintRefuted {
            criterion: get_str(bytes, pos, "violation criterion")?,
            diagnostic: Box::new(get_diagnostic(bytes, pos)?),
        },
        VIOLATION_CERTIFIED => Violation::Certified {
            criterion: get_str(bytes, pos, "violation criterion")?,
            certificate: Box::new(get_certificate(bytes, pos)?),
        },
        other => return Err(malformed("violation tag", format!("unknown tag {other}"))),
    })
}

fn event_index(raw: u64, context: &'static str) -> Result<usize, ProtocolError> {
    usize::try_from(raw).map_err(|_| malformed(context, format!("{raw} exceeds usize")))
}

fn get_rule(bytes: &[u8], pos: &mut usize) -> Result<Rule, ProtocolError> {
    let tag = get_u8(bytes, pos, "rule tag")?;
    Ok(match tag {
        RULE_REAL_TIME => Rule::RealTime,
        RULE_READ_FROM => Rule::ReadFrom {
            obj: obj_id(get_varint(bytes, pos, "rule obj")?)?,
            value: Value::new(get_varint(bytes, pos, "rule value")?),
            read: event_index(get_varint(bytes, pos, "rule read")?, "rule read")?,
        },
        RULE_ANTI_DEPENDENCY => Rule::AntiDependency {
            obj: obj_id(get_varint(bytes, pos, "rule obj")?)?,
            read: event_index(get_varint(bytes, pos, "rule read")?, "rule read")?,
        },
        RULE_READ_COMMIT_ORDER => Rule::ReadCommitOrder {
            obj: obj_id(get_varint(bytes, pos, "rule obj")?)?,
            read: event_index(get_varint(bytes, pos, "rule read")?, "rule read")?,
            tryc: event_index(get_varint(bytes, pos, "rule tryc")?, "rule tryc")?,
        },
        RULE_TMS2_COMMIT_ORDER => Rule::Tms2CommitOrder {
            obj: obj_id(get_varint(bytes, pos, "rule obj")?)?,
            resp: event_index(get_varint(bytes, pos, "rule resp")?, "rule resp")?,
            tryc: event_index(get_varint(bytes, pos, "rule tryc")?, "rule tryc")?,
        },
        RULE_TRANSITIVE => Rule::Transitive {
            first: event_index(get_varint(bytes, pos, "rule premise")?, "rule premise")?,
            second: event_index(get_varint(bytes, pos, "rule premise")?, "rule premise")?,
        },
        RULE_INTERFERENCE_AFTER => Rule::InterferenceAfter {
            read_from: event_index(get_varint(bytes, pos, "rule premise")?, "rule premise")?,
            before: event_index(get_varint(bytes, pos, "rule premise")?, "rule premise")?,
        },
        RULE_INTERFERENCE_BEFORE => Rule::InterferenceBefore {
            read_from: event_index(get_varint(bytes, pos, "rule premise")?, "rule premise")?,
            after: event_index(get_varint(bytes, pos, "rule premise")?, "rule premise")?,
        },
        other => return Err(malformed("rule tag", format!("unknown tag {other}"))),
    })
}

fn get_certificate(bytes: &[u8], pos: &mut usize) -> Result<Certificate, ProtocolError> {
    let token = get_str(bytes, pos, "certificate criterion")?;
    let criterion = PlanCriterion::parse(&token)
        .ok_or_else(|| malformed("certificate criterion", format!("unknown token {token:?}")))?;
    let n = get_varint(bytes, pos, "certificate steps")? as usize;
    if n > bytes.len() {
        return Err(malformed("certificate steps", "count exceeds payload"));
    }
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        let from = txn_id(get_varint(bytes, pos, "step txn")?)?;
        let to = txn_id(get_varint(bytes, pos, "step txn")?)?;
        let rule = get_rule(bytes, pos)?;
        steps.push(Step { from, to, rule });
    }
    let k = get_varint(bytes, pos, "certificate cycle")? as usize;
    if k > bytes.len() {
        return Err(malformed("certificate cycle", "count exceeds payload"));
    }
    let mut cycle = Vec::with_capacity(k);
    for _ in 0..k {
        cycle.push(event_index(
            get_varint(bytes, pos, "cycle step")?,
            "cycle step",
        )?);
    }
    Ok(Certificate {
        criterion,
        steps,
        cycle,
    })
}

fn txn_id(raw: u64) -> Result<TxnId, ProtocolError> {
    u32::try_from(raw)
        .map(TxnId::new)
        .map_err(|_| malformed("transaction id", format!("{raw} exceeds u32")))
}

fn obj_id(raw: u64) -> Result<ObjId, ProtocolError> {
    u32::try_from(raw)
        .map(ObjId::new)
        .map_err(|_| malformed("object id", format!("{raw} exceeds u32")))
}

/// Encodes a verdict payload.
pub fn encode_verdict_msg(msg: &VerdictMsg) -> Result<Vec<u8>, ProtocolError> {
    let mut out = Vec::with_capacity(64);
    write_varint(&mut out, msg.task_id);
    write_varint(&mut out, msg.explored);
    match &msg.verdict {
        Verdict::Satisfied(w) => {
            out.push(VERDICT_SATISFIED);
            write_varint(&mut out, w.order().len() as u64);
            for t in w.order() {
                write_varint(&mut out, u64::from(t.index()));
            }
            write_varint(&mut out, w.commit_choices().len() as u64);
            for (t, &committed) in w.commit_choices() {
                write_varint(&mut out, u64::from(t.index()));
                out.push(u8::from(committed));
            }
        }
        Verdict::Violated(v) => {
            out.push(VERDICT_VIOLATED);
            put_violation(&mut out, v)?;
        }
        Verdict::Unknown {
            explored,
            reason,
            partial,
        } => {
            out.push(VERDICT_UNKNOWN);
            write_varint(&mut out, *explored);
            let tag = REASON_TAGS
                .iter()
                .find(|(r, _)| r == reason)
                .map(|&(_, t)| t)
                .expect("every reason is in the table");
            out.push(tag);
            match partial {
                None => out.push(0),
                Some(p) => {
                    out.push(1);
                    write_varint(&mut out, p.components_decided);
                    write_varint(&mut out, p.components_total);
                    write_varint(&mut out, p.tiers.len() as u64);
                    for t in &p.tiers {
                        put_bytes(&mut out, t.as_bytes());
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Decodes a verdict payload.
pub fn decode_verdict_msg(payload: &[u8]) -> Result<VerdictMsg, ProtocolError> {
    let mut pos = 0;
    let task_id = get_varint(payload, &mut pos, "verdict")?;
    let explored = get_varint(payload, &mut pos, "verdict")?;
    let tag = get_u8(payload, &mut pos, "verdict tag")?;
    let verdict = match tag {
        VERDICT_SATISFIED => {
            let n = get_varint(payload, &mut pos, "witness order")? as usize;
            if n > payload.len() {
                return Err(malformed("witness order", "count exceeds payload"));
            }
            let mut order = Vec::with_capacity(n);
            for _ in 0..n {
                order.push(txn_id(get_varint(payload, &mut pos, "witness txn")?)?);
            }
            let m = get_varint(payload, &mut pos, "witness choices")? as usize;
            if m > payload.len() {
                return Err(malformed("witness choices", "count exceeds payload"));
            }
            let mut choices = BTreeMap::new();
            for _ in 0..m {
                let t = txn_id(get_varint(payload, &mut pos, "witness txn")?)?;
                let c = get_u8(payload, &mut pos, "witness choice")?;
                if c > 1 {
                    return Err(malformed("witness choice", format!("bool byte {c}")));
                }
                choices.insert(t, c == 1);
            }
            Verdict::Satisfied(Witness::new(order, choices))
        }
        VERDICT_VIOLATED => Verdict::Violated(get_violation(payload, &mut pos, 0)?),
        VERDICT_UNKNOWN => {
            let explored = get_varint(payload, &mut pos, "unknown explored")?;
            let reason_tag = get_u8(payload, &mut pos, "unknown reason")?;
            let reason = REASON_TAGS
                .iter()
                .find(|&&(_, t)| t == reason_tag)
                .map(|&(r, _)| r)
                .ok_or_else(|| malformed("unknown reason", format!("unknown tag {reason_tag}")))?;
            let partial = match get_u8(payload, &mut pos, "unknown partial")? {
                0 => None,
                1 => {
                    let decided = get_varint(payload, &mut pos, "partial decided")?;
                    let total = get_varint(payload, &mut pos, "partial total")?;
                    let k = get_varint(payload, &mut pos, "partial tiers")? as usize;
                    if k > payload.len() {
                        return Err(malformed("partial tiers", "count exceeds payload"));
                    }
                    let mut p = PartialProgress::components(decided, total);
                    for _ in 0..k {
                        let raw = get_bytes(payload, &mut pos, "partial tier")?;
                        let tier = KNOWN_TIERS
                            .iter()
                            .find(|t| t.as_bytes() == raw)
                            .copied()
                            .ok_or_else(|| {
                                malformed(
                                    "partial tier",
                                    format!("unknown tier {:?}", String::from_utf8_lossy(raw)),
                                )
                            })?;
                        p.tiers.push(tier);
                    }
                    Some(p)
                }
                other => return Err(malformed("unknown partial", format!("flag byte {other}"))),
            };
            Verdict::Unknown {
                explored,
                reason,
                partial,
            }
        }
        other => return Err(malformed("verdict tag", format!("unknown tag {other}"))),
    };
    expect_end(payload, pos, "verdict")?;
    Ok(VerdictMsg {
        task_id,
        explored,
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }

    fn round_trip_frame(ty: u8, payload: &[u8]) -> (u8, Vec<u8>) {
        let mut wire = Vec::new();
        write_frame(&mut wire, ty, payload).unwrap();
        let mut rd = FrameReader::new(&wire[..]);
        let (got_ty, got) = rd.read_frame().unwrap().expect("one frame");
        let out = (got_ty, got.to_vec());
        assert!(rd.read_frame().unwrap().is_none(), "clean eof after frame");
        out
    }

    #[test]
    fn frame_round_trips() {
        let (ty, payload) = round_trip_frame(FRAME_TASK, b"hello frames");
        assert_eq!(ty, FRAME_TASK);
        assert_eq!(payload, b"hello frames");
        let (ty, payload) = round_trip_frame(FRAME_SHUTDOWN, b"");
        assert_eq!(ty, FRAME_SHUTDOWN);
        assert!(payload.is_empty());
    }

    #[test]
    fn corrupt_byte_is_caught_by_crc() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_TASK, b"payload under guard").unwrap();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            let mut rd = FrameReader::new(&bad[..]);
            // Every single-byte corruption must surface as a structured
            // error or a clean EOF — never a wrong payload or a panic.
            if let Ok(Some((ty, payload))) = rd.read_frame() {
                assert!(
                    ty == FRAME_TASK && payload == b"payload under guard",
                    "corruption at {i} silently altered the frame"
                );
            }
        }
    }

    #[test]
    fn truncation_at_every_offset_is_structured() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_VERDICT, b"0123456789abcdef").unwrap();
        for cut in 0..wire.len() {
            let mut rd = FrameReader::new(&wire[..cut]);
            match rd.read_frame() {
                Ok(None) => assert_eq!(cut, 0, "only an empty stream is a clean eof"),
                Ok(Some(_)) => panic!("truncated frame at {cut} decoded"),
                Err(ProtocolError::Malformed { .. }) => {}
                Err(ProtocolError::Io(e)) => panic!("io error at {cut}: {e}"),
            }
        }
    }

    #[test]
    fn hello_round_trips_and_rejects_bad_version() {
        decode_hello(&encode_hello()).unwrap();
        let mut bad = encode_hello();
        bad[4] = 99;
        assert!(decode_hello(&bad).is_err());
        assert!(decode_hello(b"DUOB\x01").is_err());
    }

    #[test]
    fn task_round_trips() {
        let msg = TaskMsg {
            task_id: 42,
            attempt: 1,
            criterion: "du".to_owned(),
            prelint: false,
            ladder: true,
            decompose: true,
            saturate: true,
            max_states: 10_000,
            deadline_ms: 0,
            history: vec![1, 2, 3, 4, 5],
        };
        assert_eq!(decode_task(&encode_task(&msg)).unwrap(), msg);
    }

    #[test]
    fn verdict_round_trips_all_shapes() {
        let mut choices = BTreeMap::new();
        choices.insert(t(3), true);
        choices.insert(t(9), false);
        let shapes = vec![
            Verdict::Satisfied(Witness::new(vec![t(1), t(3), t(2)], choices)),
            Verdict::Violated(Violation::MissingWriter {
                txn: t(4),
                obj: ObjId::new(7),
                value: Value::new(19),
            }),
            Verdict::Violated(Violation::InternalReadInconsistency {
                txn: t(1),
                obj: ObjId::new(0),
                got: Value::new(2),
                expected: Value::new(3),
            }),
            Verdict::Violated(Violation::ConstraintCycle {
                txns: vec![t(1), t(2), t(3)],
            }),
            Verdict::Violated(Violation::NoSerialization {
                criterion: "du-opacity".to_owned(),
                explored: 12345,
            }),
            Verdict::Violated(Violation::PrefixNotFinalStateOpaque {
                prefix_len: 9,
                cause: Box::new(Violation::NoSerialization {
                    criterion: "final-state opacity".to_owned(),
                    explored: 7,
                }),
            }),
            Verdict::Violated(Violation::PrefixNotFinalStateOpaque {
                prefix_len: 3,
                cause: Box::new(Violation::LintRefuted {
                    criterion: "final-state opacity".to_owned(),
                    diagnostic: Box::new(Diagnostic {
                        rule: lint::rules()[0].id,
                        severity: Severity::Error,
                        applicability: Applicability::AllCriteria,
                        message: "a read can never be legal".to_owned(),
                        primary: Span {
                            event: 29,
                            label: "T4->2".to_owned(),
                        },
                        secondary: vec![Span {
                            event: 3,
                            label: "T1:W(X0,1)".to_owned(),
                        }],
                    }),
                }),
            }),
            Verdict::Violated(Violation::Certified {
                criterion: "du-opacity".to_owned(),
                certificate: Box::new(Certificate {
                    criterion: PlanCriterion::Du,
                    steps: vec![
                        Step {
                            from: t(1),
                            to: t(2),
                            rule: Rule::RealTime,
                        },
                        Step {
                            from: t(1),
                            to: t(2),
                            rule: Rule::ReadFrom {
                                obj: ObjId::new(3),
                                value: Value::new(7),
                                read: 11,
                            },
                        },
                        Step {
                            from: t(2),
                            to: t(1),
                            rule: Rule::AntiDependency {
                                obj: ObjId::new(3),
                                read: 5,
                            },
                        },
                        Step {
                            from: t(3),
                            to: t(2),
                            rule: Rule::InterferenceBefore {
                                read_from: 1,
                                after: 0,
                            },
                        },
                        Step {
                            from: t(1),
                            to: t(1),
                            rule: Rule::Transitive {
                                first: 0,
                                second: 2,
                            },
                        },
                    ],
                    cycle: vec![0, 2],
                }),
            }),
            Verdict::Violated(Violation::Certified {
                criterion: "TMS2".to_owned(),
                certificate: Box::new(Certificate {
                    criterion: PlanCriterion::Tms2,
                    steps: vec![
                        Step {
                            from: t(4),
                            to: t(5),
                            rule: Rule::Tms2CommitOrder {
                                obj: ObjId::new(0),
                                resp: 9,
                                tryc: 12,
                            },
                        },
                        Step {
                            from: t(5),
                            to: t(4),
                            rule: Rule::ReadCommitOrder {
                                obj: ObjId::new(1),
                                read: 2,
                                tryc: 8,
                            },
                        },
                        Step {
                            from: t(6),
                            to: t(5),
                            rule: Rule::InterferenceAfter {
                                read_from: 0,
                                before: 1,
                            },
                        },
                    ],
                    cycle: vec![0, 1],
                }),
            }),
            Verdict::Unknown {
                explored: 99,
                reason: UnknownReason::Deadline,
                partial: None,
            },
            Verdict::Unknown {
                explored: 1,
                reason: UnknownReason::WorkerDeath,
                partial: Some({
                    let mut p = PartialProgress::components(2, 5);
                    p.tiers = vec!["exact-search", "lint"];
                    p
                }),
            },
        ];
        for verdict in shapes {
            let msg = VerdictMsg {
                task_id: 7,
                explored: 1234,
                verdict,
            };
            let wire = encode_verdict_msg(&msg).unwrap();
            assert_eq!(decode_verdict_msg(&wire).unwrap(), msg, "shape: {msg:?}");
        }
    }

    #[test]
    fn verdict_fuzz_decode_never_panics() {
        // Deterministic xorshift byte soup: the decoder must always return
        // a structured result on arbitrary input.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for len in 0..256usize {
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                bytes.push(state as u8);
            }
            let _ = decode_verdict_msg(&bytes);
            let _ = decode_task(&bytes);
            let _ = decode_hello(&bytes);
            let _ = decode_challenge(&bytes);
            let _ = decode_auth(&bytes);
        }
    }

    #[test]
    fn challenge_round_trips() {
        let nonce = [7u8; NONCE_LEN];
        let wire = encode_challenge(&nonce);
        assert_eq!(decode_challenge(&wire).unwrap(), nonce);
        assert!(decode_challenge(b"DUOB").is_err(), "wrong magic");
        assert!(
            decode_challenge(&wire[..wire.len() - 1]).is_err(),
            "truncated nonce"
        );
    }

    #[test]
    fn auth_tag_binds_secret_and_nonce() {
        let nonce_a = [1u8; NONCE_LEN];
        let nonce_b = [2u8; NONCE_LEN];
        let tag = auth_tag(b"hunter2", &nonce_a);
        assert_eq!(tag, auth_tag(b"hunter2", &nonce_a), "deterministic");
        assert_ne!(
            tag,
            auth_tag(b"hunter2", &nonce_b),
            "a replayed tag must not verify against a fresh nonce"
        );
        assert_ne!(
            tag,
            auth_tag(b"hunter3", &nonce_a),
            "a wrong secret must not produce the right tag"
        );
        let wire = encode_auth(&tag);
        assert_eq!(decode_auth(&wire).unwrap(), tag);
        assert!(decode_auth(&wire[..TAG_LEN - 1]).is_err());
    }

    #[test]
    fn constant_time_eq_agrees_with_plain_equality() {
        assert!(constant_time_eq(b"abcd", b"abcd"));
        assert!(!constant_time_eq(b"abcd", b"abce"));
        assert!(!constant_time_eq(b"abcd", b"abc"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn siphash_reference_vector() {
        // The reference SipHash-2-4 test vector (Aumasson–Bernstein,
        // appendix A): key 000102…0f, message 000102…0e.
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let msg: Vec<u8> = (0u8..15).collect();
        assert_eq!(sip24(k0, k1, &msg), 0xa129ca6149be45e5);
    }
}
