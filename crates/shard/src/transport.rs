//! The TCP transport: a worker daemon (`duop shard-serve`) and the
//! coordinator-side connector that lets `duop shard --connect HOST:PORT`
//! drive worker pools on other hosts.
//!
//! # Wire authentication
//!
//! Nothing on the stdin/stdout path needs authenticating — the
//! coordinator spawned the worker. A TCP listener accepts bytes from
//! anyone, so every connection starts with a challenge–response hello:
//! the daemon sends a fresh per-connection nonce
//! ([`crate::protocol::FRAME_CHALLENGE`]), the coordinator answers with
//! a keyed SipHash-2-4 tag over it ([`crate::protocol::FRAME_AUTH`]),
//! and the daemon verifies in constant time. A wrong secret, a replayed
//! tag from an earlier connection (the nonce is fresh), or any malformed
//! frame closes the connection *before a single task frame is read*.
//! Only after that gate does the connection enter the ordinary worker
//! loop ([`crate::run_worker_io`]) — the same loop, byte for byte, that
//! serves a local pipe.
//!
//! # Liveness
//!
//! Each authenticated connection gets a daemon-side heartbeat thread
//! writing [`crate::protocol::FRAME_HEARTBEAT`] once a second — crucially
//! *independent of the worker loop*, so a worker grinding minutes on one
//! component still proves its host is alive. The coordinator timestamps
//! every received frame and declares a remote dead after
//! [`net_timeout`] of silence; reconnection uses capped exponential
//! [`Backoff`] with jitter.

use crate::protocol::{
    auth_tag, constant_time_eq, decode_auth, decode_challenge, encode_auth, encode_challenge,
    write_frame, FrameReader, ProtocolError, FRAME_AUTH, FRAME_CHALLENGE, FRAME_HEARTBEAT,
    NONCE_LEN,
};
use crate::worker::run_worker_io;
use duop_serve::listener::{bind_nonblocking, poll_accept, Accepted};
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// `DUOP_SHARD_NET_DROP_CONN=N` (daemon): close the Nth accepted
/// connection right after its handshake succeeds — a deterministic
/// mid-run connection drop the coordinator must absorb by re-queueing
/// and reconnecting.
pub const NET_DROP_CONN_ENV: &str = "DUOP_SHARD_NET_DROP_CONN";
/// `DUOP_SHARD_NET_STALL=N` (daemon): after the Nth connection's
/// handshake, go silent — never send hello, heartbeats, or verdicts —
/// until the daemon shuts down. Simulates a partitioned-away host; the
/// coordinator's net timeout must fire.
pub const NET_STALL_ENV: &str = "DUOP_SHARD_NET_STALL";
/// `DUOP_SHARD_NET_BAD_HELLO=N` (coordinator): present a deliberately
/// wrong auth tag on the Nth outbound handshake. The daemon must reject
/// it before reading a task frame; the coordinator treats the rejection
/// as a failed connect and retries with the real tag.
pub const NET_BAD_HELLO_ENV: &str = "DUOP_SHARD_NET_BAD_HELLO";
/// `DUOP_SHARD_NET_TIMEOUT_MS` (coordinator): override for how long a
/// remote worker may stay silent before it is declared dead (default
/// [`DEFAULT_NET_TIMEOUT_MS`]).
pub const NET_TIMEOUT_ENV: &str = "DUOP_SHARD_NET_TIMEOUT_MS";

/// Default silence budget for a remote worker, in milliseconds. The
/// daemon heartbeats once a second, so ten missed beats means the host
/// or path is gone, not slow.
pub const DEFAULT_NET_TIMEOUT_MS: u64 = 10_000;

/// Daemon-side heartbeat cadence.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_secs(1);

/// How long the daemon waits for the auth response before giving up on
/// a connection that dialed in and went mute.
const AUTH_READ_TIMEOUT: Duration = Duration::from_secs(5);

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The coordinator's silence budget for remote workers: the env override
/// or the default.
pub fn net_timeout() -> Duration {
    Duration::from_millis(env_u64(NET_TIMEOUT_ENV).unwrap_or(DEFAULT_NET_TIMEOUT_MS))
}

/// Reads a shared-secret file, trimming trailing ASCII whitespace (the
/// newline every editor appends must not change the key).
///
/// # Errors
///
/// The file's own read failure, or an error for an empty secret.
pub fn load_secret(path: &str) -> io::Result<Vec<u8>> {
    let mut bytes = std::fs::read(path)?;
    while bytes.last().is_some_and(|b| b.is_ascii_whitespace()) {
        bytes.pop();
    }
    if bytes.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{path}: secret file is empty"),
        ));
    }
    Ok(bytes)
}

/// Process-local entropy for nonces: two independent [`RandomState`]
/// seeds (per-process random) folded with a monotone counter, so nonces
/// never repeat within a process and differ across processes.
fn fresh_nonce() -> [u8; NONCE_LEN] {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static SEEDS: OnceLock<(RandomState, RandomState)> = OnceLock::new();
    let (a, b) = SEEDS.get_or_init(|| (RandomState::new(), RandomState::new()));
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut ha = a.build_hasher();
    ha.write_u64(n);
    let mut hb = b.build_hasher();
    hb.write_u64(!n);
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..8].copy_from_slice(&ha.finish().to_le_bytes());
    nonce[8..].copy_from_slice(&hb.finish().to_le_bytes());
    nonce
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

/// Capped exponential backoff with jitter, shared by the coordinator's
/// reconnect loop and `duop client`'s 429 handling. Each delay is drawn
/// uniformly from `[cur/2, cur)` (full jitter over the upper half, so
/// herds desynchronize but progress is never quicker than half the
/// nominal step), then the nominal step doubles up to `cap`.
#[derive(Debug)]
pub struct Backoff {
    cur_ms: u64,
    cap_ms: u64,
    rng: u64,
}

impl Backoff {
    /// Starts a schedule at `base_ms`, doubling to at most `cap_ms`.
    #[must_use]
    pub fn new(base_ms: u64, cap_ms: u64) -> Backoff {
        let mut h = RandomState::new().build_hasher();
        h.write_u64(0x0062_6163_6b6f_6666); // "backoff"
        Backoff {
            cur_ms: base_ms.max(1),
            cap_ms: cap_ms.max(base_ms.max(1)),
            rng: h.finish() | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64: plenty for jitter.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    /// The next delay in the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let cur = self.cur_ms;
        let half = (cur / 2).max(1);
        let jittered = half + self.next_u64() % half.max(1);
        self.cur_ms = (cur * 2).min(self.cap_ms);
        Duration::from_millis(jittered.min(cur))
    }

    /// The next delay, floored by a server-mandated minimum (an HTTP
    /// `Retry-After`, in milliseconds).
    pub fn next_delay_at_least(&mut self, floor_ms: u64) -> Duration {
        self.next_delay().max(Duration::from_millis(floor_ms))
    }
}

// ---------------------------------------------------------------------------
// Coordinator side: connect + authenticate
// ---------------------------------------------------------------------------

fn bad_hello_counter() -> &'static AtomicU64 {
    static N: OnceLock<AtomicU64> = OnceLock::new();
    N.get_or_init(|| AtomicU64::new(0))
}

/// Dials a worker daemon and completes the authenticated hello: read the
/// challenge, answer with the keyed tag. On success the stream is ready
/// for the ordinary worker-protocol exchange (the caller sends its
/// `FRAME_HELLO` next).
///
/// # Errors
///
/// Connection failure, a malformed challenge, or the daemon hanging up
/// (wrong secret / rejected tag) — all as [`ProtocolError`].
pub fn connect_remote(addr: &str, secret: &[u8]) -> Result<TcpStream, ProtocolError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(AUTH_READ_TIMEOUT)).ok();
    let mut reader = FrameReader::new(stream.try_clone()?);
    let challenge = match reader.read_frame()? {
        Some((FRAME_CHALLENGE, payload)) => decode_challenge(payload)?,
        Some((ty, _)) => {
            return Err(ProtocolError::Malformed {
                context: "challenge",
                detail: format!("expected challenge frame, got type {ty:#04x}"),
            })
        }
        None => {
            return Err(ProtocolError::Malformed {
                context: "challenge",
                detail: "daemon hung up before the challenge".to_owned(),
            })
        }
    };
    let mut tag = auth_tag(secret, &challenge);
    if let Some(n) = env_u64(NET_BAD_HELLO_ENV) {
        if bad_hello_counter().fetch_add(1, Ordering::SeqCst) + 1 == n {
            // Fault hook: impostor drill — flip the tag and let the
            // daemon slam the door.
            for b in &mut tag {
                *b = !*b;
            }
        }
    }
    let mut write_half = stream.try_clone()?;
    write_frame(&mut write_half, FRAME_AUTH, &encode_auth(&tag))?;
    write_half.flush()?;
    stream.set_read_timeout(None).ok();
    Ok(stream)
}

// ---------------------------------------------------------------------------
// Daemon side
// ---------------------------------------------------------------------------

/// `duop shard-serve` configuration.
#[derive(Clone, Debug)]
pub struct ShardServeConfig {
    /// Bind address; port `0` picks a free port (printed on startup).
    pub listen: String,
    /// The shared secret coordinators must prove knowledge of.
    pub secret: Vec<u8>,
    /// Fault hook: close the Nth accepted connection post-handshake.
    pub drop_conn: Option<u64>,
    /// Fault hook: go silent on the Nth connection post-handshake.
    pub stall_conn: Option<u64>,
}

impl ShardServeConfig {
    /// A config for `listen`/`secret` with the fault hooks read from the
    /// environment (`DUOP_SHARD_NET_DROP_CONN`, `DUOP_SHARD_NET_STALL`)
    /// — the CLI entry path.
    #[must_use]
    pub fn from_env(listen: String, secret: Vec<u8>) -> ShardServeConfig {
        ShardServeConfig {
            listen,
            secret,
            drop_conn: env_u64(NET_DROP_CONN_ENV),
            stall_conn: env_u64(NET_STALL_ENV),
        }
    }
}

/// A cloneable handle that asks a running daemon to drain and stop (the
/// in-process equivalent of SIGTERM).
#[derive(Clone, Debug)]
pub struct ShardServeHandle {
    flag: Arc<AtomicBool>,
}

impl ShardServeHandle {
    /// Requests a graceful stop.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

/// The worker daemon: accepts authenticated coordinator connections and
/// runs one worker loop per connection.
pub struct ShardServer {
    listener: std::net::TcpListener,
    cfg: ShardServeConfig,
    shutdown: Arc<AtomicBool>,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("addr", &self.listener.local_addr().ok())
            .finish()
    }
}

impl ShardServer {
    /// Binds the listen socket.
    ///
    /// # Errors
    ///
    /// The bind failure.
    pub fn bind(cfg: ShardServeConfig) -> io::Result<ShardServer> {
        let listener = bind_nonblocking(&cfg.listen)?;
        Ok(ShardServer {
            listener,
            cfg,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (with the OS-assigned port when `listen` ended
    /// in `:0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket's own failure to report its address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that triggers the same graceful stop as SIGTERM.
    pub fn shutdown_handle(&self) -> ShardServeHandle {
        ShardServeHandle {
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// Runs the accept loop until SIGINT/SIGTERM or the
    /// [`ShardServeHandle`] asks for a stop, then drains: open
    /// connections notice the flag and wind down after their current
    /// task.
    ///
    /// # Errors
    ///
    /// A non-transient accept failure.
    pub fn run(self, out: &mut dyn Write) -> io::Result<()> {
        let addr = self.local_addr()?;
        writeln!(out, "listening on {addr}")?;
        out.flush().ok();
        let mut conns = 0u64;
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            match poll_accept(&self.listener, &self.shutdown)? {
                Accepted::Shutdown => break,
                Accepted::Idle => {}
                Accepted::Conn(stream, peer) => {
                    conns += 1;
                    let n = conns;
                    let cfg = self.cfg.clone();
                    let stop = Arc::clone(&self.shutdown);
                    workers.push(std::thread::spawn(move || {
                        serve_connection(stream, peer, &cfg, n, &stop);
                    }));
                }
            }
            workers.retain(|w| !w.is_finished());
        }
        self.shutdown.store(true, Ordering::SeqCst);
        for w in workers {
            w.join().ok();
        }
        writeln!(out, "drained")?;
        Ok(())
    }
}

fn log_line(message: &str) {
    eprintln!("duop shard-serve: {message}");
}

/// Runs the daemon side of the authenticated hello. `Ok(())` means the
/// peer proved knowledge of the secret; any other outcome closes the
/// connection before a single worker-protocol frame is read.
fn authenticate(stream: &TcpStream, secret: &[u8]) -> Result<(), ProtocolError> {
    let nonce = fresh_nonce();
    let mut write_half = stream.try_clone()?;
    write_frame(&mut write_half, FRAME_CHALLENGE, &encode_challenge(&nonce))?;
    write_half.flush()?;
    stream.set_read_timeout(Some(AUTH_READ_TIMEOUT)).ok();
    let mut reader = FrameReader::new(stream.try_clone()?);
    let tag = match reader.read_frame()? {
        Some((FRAME_AUTH, payload)) => decode_auth(payload)?,
        Some((ty, _)) => {
            return Err(ProtocolError::Malformed {
                context: "auth response",
                detail: format!("expected auth frame, got type {ty:#04x}"),
            })
        }
        None => {
            return Err(ProtocolError::Malformed {
                context: "auth response",
                detail: "peer hung up before authenticating".to_owned(),
            })
        }
    };
    let expected = auth_tag(secret, &nonce);
    if !constant_time_eq(&tag, &expected) {
        return Err(ProtocolError::Malformed {
            context: "auth response",
            detail: "tag does not verify (wrong secret or replayed hello)".to_owned(),
        });
    }
    stream.set_read_timeout(None).ok();
    Ok(())
}

/// A frame-buffered writer sharing one socket with the heartbeat thread.
/// Writes accumulate in a private buffer; `flush` ships the buffer under
/// the socket mutex in one piece. The worker loop flushes exactly at
/// frame boundaries, so heartbeats never land mid-frame.
struct SharedFrameWriter {
    socket: Arc<Mutex<TcpStream>>,
    buf: Vec<u8>,
}

impl Write for SharedFrameWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        let mut socket = self.socket.lock().unwrap();
        socket.write_all(&self.buf)?;
        socket.flush()?;
        self.buf.clear();
        Ok(())
    }
}

fn serve_connection(
    stream: TcpStream,
    peer: SocketAddr,
    cfg: &ShardServeConfig,
    conn: u64,
    stop: &Arc<AtomicBool>,
) {
    if let Err(e) = authenticate(&stream, &cfg.secret) {
        log_line(&format!("rejected {peer}: {e}"));
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    if cfg.drop_conn == Some(conn) {
        // Fault hook: a freshly-authenticated connection dies on the
        // floor — the coordinator sees an EOF where the hello should be.
        log_line(&format!("fault hook: dropping connection {conn} ({peer})"));
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    if cfg.stall_conn == Some(conn) {
        // Fault hook: the host "partitions" — stays connected, says
        // nothing. Wind down only when the daemon itself stops.
        log_line(&format!("fault hook: stalling connection {conn} ({peer})"));
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    log_line(&format!("coordinator {peer} authenticated"));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let socket = Arc::new(Mutex::new(stream));
    let writer = SharedFrameWriter {
        socket: Arc::clone(&socket),
        buf: Vec::new(),
    };
    let beat_socket = Arc::clone(&socket);
    let beating = Arc::new(AtomicBool::new(true));
    let beating_flag = Arc::clone(&beating);
    let stop_flag = Arc::clone(stop);
    let beater = std::thread::spawn(move || {
        let mut last = Instant::now();
        while beating_flag.load(Ordering::SeqCst) && !stop_flag.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
            if last.elapsed() < HEARTBEAT_INTERVAL {
                continue;
            }
            last = Instant::now();
            let mut socket = beat_socket.lock().unwrap();
            if write_frame(&mut *socket, FRAME_HEARTBEAT, &[]).is_err() || socket.flush().is_err() {
                return;
            }
        }
    });
    let result = run_worker_io(read_half, writer);
    beating.store(false, Ordering::SeqCst);
    if let Ok(socket) = socket.lock() {
        let _ = socket.shutdown(Shutdown::Both);
    }
    beater.join().ok();
    match result {
        Ok(()) => log_line(&format!("coordinator {peer} finished")),
        Err(e) => log_line(&format!("connection {peer} failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_cap_with_bounded_jitter() {
        let mut b = Backoff::new(100, 800);
        let expected_nominal = [100u64, 200, 400, 800, 800, 800];
        for nominal in expected_nominal {
            let d = b.next_delay().as_millis() as u64;
            assert!(
                d >= nominal / 2 && d <= nominal,
                "delay {d}ms outside [{}, {nominal}]",
                nominal / 2
            );
        }
    }

    #[test]
    fn backoff_honors_a_retry_after_floor() {
        let mut b = Backoff::new(10, 20);
        let d = b.next_delay_at_least(5_000);
        assert_eq!(d, Duration::from_millis(5_000));
    }

    #[test]
    fn nonces_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(fresh_nonce()), "nonce repeated");
        }
    }

    #[test]
    fn secret_file_round_trip_trims_trailing_newline() {
        let dir = std::env::temp_dir().join(format!("duop-secret-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("secret");
        std::fs::write(&path, "hunter2\n").unwrap();
        assert_eq!(load_secret(path.to_str().unwrap()).unwrap(), b"hunter2");
        std::fs::write(&path, "\n \n").unwrap();
        assert!(load_secret(path.to_str().unwrap()).is_err(), "empty secret");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn authenticated_round_trip_against_a_live_daemon() {
        let server = ShardServer::bind(ShardServeConfig {
            listen: "127.0.0.1:0".to_owned(),
            secret: b"s3cret".to_vec(),
            drop_conn: None,
            stall_conn: None,
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let daemon = std::thread::spawn(move || {
            let mut out = Vec::new();
            server.run(&mut out).unwrap();
        });

        let stream = connect_remote(&addr.to_string(), b"s3cret").unwrap();
        // The daemon's worker loop sends its hello once we are in.
        let mut reader = FrameReader::new(stream.try_clone().unwrap());
        let frame = reader.read_frame().unwrap().map(|(ty, _)| ty);
        assert_eq!(frame, Some(crate::protocol::FRAME_HELLO));
        drop(reader);
        drop(stream);

        // A wrong secret is turned away before any worker frame.
        let err = connect_and_expect_hello(&addr.to_string(), b"wrong");
        assert!(err.is_err(), "wrong secret must not reach the worker loop");

        handle.shutdown();
        daemon.join().unwrap();
    }

    fn connect_and_expect_hello(addr: &str, secret: &[u8]) -> Result<(), ProtocolError> {
        let stream = connect_remote(addr, secret)?;
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut reader = FrameReader::new(stream);
        match reader.read_frame()? {
            Some((ty, _)) if ty == crate::protocol::FRAME_HELLO => Ok(()),
            Some((ty, _)) => Err(ProtocolError::Malformed {
                context: "handshake",
                detail: format!("unexpected frame {ty:#04x}"),
            }),
            None => Err(ProtocolError::Malformed {
                context: "handshake",
                detail: "hung up".to_owned(),
            }),
        }
    }
}
