//! Sharded multi-process checking: a component-parallel verdict
//! pipeline with a work-stealing coordinator.
//!
//! The planner ([`duop_core::plan_components`]) splits a history's
//! conflict graph into independent components; this crate ships those
//! components (or whole histories, for batch workloads and opacity) to a
//! pool of worker *processes* over a length-prefixed, CRC-guarded binary
//! protocol, then merges the per-component verdicts and witness
//! fragments back into exactly the verdict the in-process path produces.
//! Process isolation buys what in-process threads cannot: a crashing or
//! killed worker costs one component (re-queued, retried, and only after
//! the retry budget degraded to
//! [`duop_core::UnknownReason::WorkerDeath`]), never the run.
//!
//! - [`protocol`]: the wire format (`.duob`-style varints + CRC-32
//!   frames), including the challenge–response authenticated hello used
//!   on TCP.
//! - [`coordinator`]: planning, largest-first scheduling, work stealing,
//!   death handling (local crashes, host deaths, network partitions),
//!   verdict merge.
//! - [`worker`]: the frame loop run by the hidden `shard-worker` mode —
//!   transport-agnostic, so the same loop serves a pipe or a socket.
//! - [`transport`]: the TCP layer — the `duop shard-serve` worker
//!   daemon, the coordinator-side authenticated connector, and the
//!   shared jittered-backoff schedule.

#![warn(missing_docs)]

pub mod coordinator;
pub mod protocol;
pub mod transport;
pub mod worker;

pub use coordinator::{run_sharded, ShardConfig, ShardCriterion, ShardError, ShardJob};
pub use transport::{
    connect_remote, load_secret, Backoff, ShardServeConfig, ShardServeHandle, ShardServer,
    NET_BAD_HELLO_ENV, NET_DROP_CONN_ENV, NET_STALL_ENV, NET_TIMEOUT_ENV,
};
pub use worker::{run_worker_io, worker_main, KILL_AFTER_HELLO_ENV, KILL_TASK_ENV};
