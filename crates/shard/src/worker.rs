//! The worker side of the sharded pipeline: a stdin/stdout frame loop.
//!
//! A worker is the same binary as the coordinator, re-executed in a
//! hidden mode (`duop shard-worker`). It speaks the [`crate::protocol`]
//! over its standard streams: handshake, then task frames in, verdict
//! frames out, until a shutdown frame or end-of-stream.
//!
//! Workers are deliberately dumb: one task at a time, sequential search
//! (`threads = 1`), planner decomposition on, lint prefilter and verdict
//! ladder controlled by the task flags (off for component tasks — the
//! coordinator owns both ends of that pipeline). All scheduling
//! intelligence lives in the coordinator.

use crate::protocol::{
    decode_hello, decode_task, encode_hello, encode_verdict_msg, write_frame, FrameReader,
    ProtocolError, TaskMsg, VerdictMsg, FRAME_HEARTBEAT, FRAME_HELLO, FRAME_SHUTDOWN, FRAME_TASK,
    FRAME_VERDICT,
};
use duop_core::{check_criterion_with_stats, Criterion, Opacity, PlanCriterion, SearchConfig};
use duop_history::binary;
use std::io::{Read, Write};
use std::time::Duration;

/// Environment variable for fault injection in tests: when set to a task
/// id, the worker exits (code 83) instead of answering the *first*
/// dispatch of that task (`attempt == 0`), simulating a crash
/// mid-component. Retries (attempt ≥ 1) are answered normally, so the
/// coordinator's re-queue path is exercised end to end.
pub const KILL_TASK_ENV: &str = "DUOP_SHARD_KILL_TASK";

/// Environment variable for fault injection in tests: when set (to any
/// value), the worker exits (code 83) shortly after sending its
/// handshake, without ever reading a frame — the first task dispatched
/// to it dies unread in the pipe. Unlike [`KILL_TASK_ENV`], the kill is
/// unconditional, so respawned replacements die the same way and the
/// retry budget is what decides the run.
pub const KILL_AFTER_HELLO_ENV: &str = "DUOP_SHARD_KILL_AFTER_HELLO";

/// Exit code of an injected worker death (distinct from real failures).
pub const KILL_EXIT_CODE: i32 = 83;

fn search_config(task: &TaskMsg) -> SearchConfig {
    SearchConfig {
        threads: Some(1),
        decompose: task.decompose,
        prelint: task.prelint,
        ladder: task.ladder,
        saturate: task.saturate,
        max_states: (task.max_states > 0).then_some(task.max_states),
        deadline: (task.deadline_ms > 0).then(|| Duration::from_millis(task.deadline_ms)),
        ..SearchConfig::default()
    }
}

fn decide(task: &TaskMsg) -> Result<VerdictMsg, ProtocolError> {
    let history = binary::decode(&task.history).map_err(|e| ProtocolError::Malformed {
        context: "task history",
        detail: e.to_string(),
    })?;
    let cfg = search_config(task);
    let (verdict, explored) = if task.criterion == "opacity" {
        // Opacity is not prefix-decomposable by connected component (every
        // prefix must be final-state opaque), so it ships whole histories
        // and runs the dedicated prefix checker.
        (Opacity::with_config(cfg).check(&history), 0)
    } else if let Some(criterion) = PlanCriterion::parse(&task.criterion) {
        check_criterion_with_stats(&history, criterion, &cfg)
    } else {
        return Err(ProtocolError::Malformed {
            context: "task criterion",
            detail: format!("unknown token {:?}", task.criterion),
        });
    };
    Ok(VerdictMsg {
        task_id: task.task_id,
        explored,
        verdict,
    })
}

/// Runs the worker loop over arbitrary streams (testable without
/// spawning a process). Returns `Ok(())` on orderly shutdown (shutdown
/// frame or clean end-of-stream) and a [`ProtocolError`] on malformed
/// input or stream failure.
pub fn run_worker_io(input: impl Read, mut output: impl Write) -> Result<(), ProtocolError> {
    let mut reader = FrameReader::new(input);
    write_frame(&mut output, FRAME_HELLO, &encode_hello())?;
    output.flush()?;
    if std::env::var_os(KILL_AFTER_HELLO_ENV).is_some() {
        // Injected crash between handshake and first task (see
        // KILL_AFTER_HELLO_ENV). Linger long enough for the handshake
        // and the first dispatch to land, then die without answering.
        std::thread::sleep(Duration::from_millis(100));
        std::process::exit(KILL_EXIT_CODE);
    }
    let kill_task: Option<u64> = std::env::var(KILL_TASK_ENV)
        .ok()
        .and_then(|v| v.parse().ok());

    let mut shook_hands = false;
    loop {
        let Some((ty, payload)) = reader.read_frame()? else {
            // Coordinator closed the pipe: treat like shutdown.
            return Ok(());
        };
        if ty == FRAME_HEARTBEAT {
            // Liveness ping from the coordinator (TCP transport): not an
            // answerable frame, and legal at any point in the stream.
            continue;
        }
        if !shook_hands {
            if ty != FRAME_HELLO {
                return Err(ProtocolError::Malformed {
                    context: "handshake",
                    detail: format!("expected hello frame, got type {ty:#04x}"),
                });
            }
            decode_hello(payload)?;
            shook_hands = true;
            continue;
        }
        match ty {
            FRAME_TASK => {
                let task = decode_task(payload)?;
                if kill_task == Some(task.task_id) && task.attempt == 0 {
                    // Injected crash: die without answering (see
                    // KILL_TASK_ENV). Exiting here, not panicking, keeps
                    // stderr clean for the coordinator's diagnostics.
                    std::process::exit(KILL_EXIT_CODE);
                }
                let msg = decide(&task)?;
                let encoded = encode_verdict_msg(&msg)?;
                write_frame(&mut output, FRAME_VERDICT, &encoded)?;
                output.flush()?;
            }
            FRAME_SHUTDOWN => return Ok(()),
            other => {
                return Err(ProtocolError::Malformed {
                    context: "frame type",
                    detail: format!("unexpected type {other:#04x}"),
                })
            }
        }
    }
}

/// Process entry point for the hidden worker mode: runs the loop over
/// stdin/stdout and converts the outcome to an exit code (0 = orderly,
/// 2 = malformed input or broken stream — never a panic).
pub fn worker_main() -> i32 {
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout().lock();
    match run_worker_io(stdin, stdout) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("duop shard-worker: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_verdict_msg, encode_task};
    use duop_core::Verdict;
    use duop_gen::{HistoryGen, HistoryGenConfig};

    type Frames = Vec<(u8, Vec<u8>)>;

    fn run(frames: &[(u8, Vec<u8>)]) -> (Result<(), ProtocolError>, Frames) {
        let mut input = Vec::new();
        write_frame(&mut input, FRAME_HELLO, &encode_hello()).unwrap();
        for (ty, payload) in frames {
            write_frame(&mut input, *ty, payload).unwrap();
        }
        let mut output = Vec::new();
        let result = run_worker_io(&input[..], &mut output);
        let mut reader = FrameReader::new(&output[..]);
        let mut replies = Vec::new();
        while let Ok(Some((ty, payload))) = reader.read_frame() {
            replies.push((ty, payload.to_vec()));
        }
        (result, replies)
    }

    #[test]
    fn answers_task_then_shuts_down() {
        let h = HistoryGen::new(
            HistoryGenConfig::small_simulated()
                .with_txns(8)
                .with_objs(3),
            5,
        )
        .generate();
        let task = TaskMsg {
            task_id: 11,
            attempt: 0,
            criterion: "du".to_owned(),
            prelint: false,
            ladder: false,
            decompose: true,
            saturate: false,
            max_states: 0,
            deadline_ms: 0,
            history: binary::encode(&h),
        };
        let (result, replies) = run(&[
            (FRAME_TASK, encode_task(&task)),
            (FRAME_SHUTDOWN, Vec::new()),
        ]);
        result.unwrap();
        assert_eq!(replies.len(), 2, "hello + one verdict");
        assert_eq!(replies[0].0, FRAME_HELLO);
        assert_eq!(replies[1].0, FRAME_VERDICT);
        let msg = decode_verdict_msg(&replies[1].1).unwrap();
        assert_eq!(msg.task_id, 11);
        assert!(matches!(
            msg.verdict,
            Verdict::Satisfied(_) | Verdict::Violated(_)
        ));
    }

    #[test]
    fn eof_without_shutdown_is_orderly() {
        let (result, replies) = run(&[]);
        result.unwrap();
        assert_eq!(replies.len(), 1, "hello only");
    }

    #[test]
    fn unknown_criterion_is_a_structured_error() {
        let task = TaskMsg {
            task_id: 0,
            attempt: 0,
            criterion: "bogus".to_owned(),
            prelint: false,
            ladder: false,
            decompose: true,
            saturate: false,
            max_states: 0,
            deadline_ms: 0,
            history: binary::encode(&duop_history::History::empty()),
        };
        let (result, _) = run(&[(FRAME_TASK, encode_task(&task))]);
        assert!(matches!(
            result,
            Err(ProtocolError::Malformed {
                context: "task criterion",
                ..
            })
        ));
    }

    #[test]
    fn garbage_history_is_a_structured_error() {
        let task = TaskMsg {
            task_id: 0,
            attempt: 0,
            criterion: "du".to_owned(),
            prelint: false,
            ladder: false,
            decompose: true,
            saturate: false,
            max_states: 0,
            deadline_ms: 0,
            history: vec![0xFF; 32],
        };
        let (result, _) = run(&[(FRAME_TASK, encode_task(&task))]);
        assert!(matches!(result, Err(ProtocolError::Malformed { .. })));
    }
}
