//! The coordinator: plans histories into components, ships them to a
//! pool of worker processes, and merges the per-component verdicts back
//! into exactly the verdict the in-process path produces.
//!
//! # Scheduling
//!
//! Planning streams: a planner thread emits tasks as component
//! extraction produces them, so the first component is on a worker's
//! desk while later histories are still being planned. Tasks queue in a
//! largest-first priority order (by transaction count — the best
//! available proxy for search cost) and workers self-schedule: each
//! worker holds at most one outstanding task and pulls the next when it
//! answers, which is work stealing in its pull form — a fast worker
//! drains the queue while a slow one grinds on a big component. When the
//! queue runs dry and planning is done, idle workers speculatively
//! re-execute the longest-running in-flight task (capped at two copies;
//! first answer wins), so one straggler cannot serialize the tail.
//!
//! # Failure semantics
//!
//! A worker death (crash, kill, broken pipe, malformed reply) re-queues
//! the component it held and respawns a replacement. Each task carries a
//! death budget ([`ShardConfig::retry`]); when it is exhausted the
//! component is recorded as undecided and the job's merged verdict
//! degrades to [`Verdict::Unknown`] with
//! [`UnknownReason::WorkerDeath`] and a partial-progress payload — after
//! running the sound degradation ladder, which may still refute via lint.
//! The coordinator never loses decided components to a crash.

use crate::protocol::{
    decode_hello, decode_verdict_msg, encode_hello, encode_task, write_frame, FrameReader, TaskMsg,
    VerdictMsg, FRAME_HEARTBEAT, FRAME_HELLO, FRAME_SHUTDOWN, FRAME_TASK, FRAME_VERDICT,
};
use crate::transport::{connect_remote, net_timeout, Backoff};
use duop_core::{
    available_threads, ladder_verdict, plan_components, prelint_verdict, saturate_verdict,
    PartialProgress, PlanCriterion, PlanOutcome, PlanScratch, SearchConfig, UnknownReason, Verdict,
    Violation, Witness,
};
use duop_history::{binary, History, TxnId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// What a shard run checks: a component-decomposable criterion, or
/// opacity, which ships whole histories (every prefix must be
/// final-state opaque, so components are not independent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardCriterion {
    /// A criterion the planner can decompose by conflict component.
    Plan(PlanCriterion),
    /// Full opacity (prefix-closed); checked whole per history.
    Opacity,
}

impl ShardCriterion {
    /// Parses a CLI token (`du`, `final-state`, `rco`, `tms2`, `strict`,
    /// `opacity`).
    pub fn parse(token: &str) -> Option<Self> {
        if token == "opacity" {
            Some(ShardCriterion::Opacity)
        } else {
            PlanCriterion::parse(token).map(ShardCriterion::Plan)
        }
    }

    /// The wire/CLI token.
    pub fn token(self) -> &'static str {
        match self {
            ShardCriterion::Plan(c) => c.token(),
            ShardCriterion::Opacity => "opacity",
        }
    }
}

/// Configuration of one sharded run.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Worker processes to keep in the pool.
    pub workers: usize,
    /// Command line to spawn a worker (`argv[0]` + args). The command
    /// must speak the shard protocol on stdin/stdout — normally the
    /// current executable with the hidden `shard-worker` argument.
    pub worker_cmd: Vec<String>,
    /// Extra environment for workers (fault-injection hooks in tests).
    pub worker_env: Vec<(String, String)>,
    /// Decompose histories into components (the point of sharding).
    /// `false` mirrors `--no-decompose`: one whole-history task per job,
    /// monolithic search in the worker.
    pub decompose: bool,
    /// Run the lint prefilter (coordinator-side for decomposed jobs,
    /// worker-side for whole-history tasks).
    pub prelint: bool,
    /// Run the certifying saturation prefilter (coordinator-side for
    /// decomposed jobs, worker-side for whole-history tasks). `false`
    /// mirrors `--no-saturate`.
    pub saturate: bool,
    /// Run the verdict-degradation ladder on merged `Unknown` verdicts.
    pub ladder: bool,
    /// Per-task state budget (`None` = unlimited).
    pub max_states: Option<u64>,
    /// Per-task wall-clock deadline in milliseconds (`None` = none).
    /// Note this is per task, not per job: a sharded run restarts the
    /// clock for every component chunk.
    pub deadline_ms: Option<u64>,
    /// Worker deaths tolerated per task before it is recorded as
    /// undecided ([`UnknownReason::WorkerDeath`]).
    pub retry: u64,
    /// Minimum transactions per dispatched task: consecutive plan-order
    /// components are batched until this floor, amortizing the
    /// per-process protocol overhead over many tiny components.
    pub min_task_txns: usize,
    /// Remote worker daemons (`HOST:PORT` of `duop shard-serve`
    /// instances) to drive alongside the local pool. A remote that dies
    /// or partitions is reconnected with capped exponential backoff and
    /// its task re-queued, exactly like a local worker death.
    pub connect: Vec<String>,
    /// Shared secret for the remote authenticated hello (required when
    /// `connect` is non-empty).
    pub secret: Vec<u8>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            workers: available_threads(),
            worker_cmd: Vec::new(),
            worker_env: Vec::new(),
            decompose: true,
            prelint: true,
            saturate: true,
            ladder: true,
            max_states: None,
            deadline_ms: None,
            retry: 2,
            min_task_txns: 8,
            connect: Vec::new(),
            secret: Vec::new(),
        }
    }
}

/// One history to check under one criterion.
#[derive(Clone, Debug)]
pub struct ShardJob {
    /// The history.
    pub history: History,
    /// What to check it against.
    pub criterion: ShardCriterion,
}

/// A coordinator-level failure (worker pool unusable). Per-task worker
/// deaths are *not* errors — they degrade the affected job's verdict.
#[derive(Debug)]
pub enum ShardError {
    /// A worker process could not be spawned.
    Spawn(String),
    /// Every worker died and tasks remain; no progress is possible.
    AllWorkersDead(String),
    /// The planner thread or event channel failed.
    Internal(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Spawn(d) => write!(f, "cannot spawn shard worker: {d}"),
            ShardError::AllWorkersDead(d) => {
                write!(f, "all shard workers died with tasks outstanding: {d}")
            }
            ShardError::Internal(d) => write!(f, "shard coordinator failure: {d}"),
        }
    }
}

impl std::error::Error for ShardError {}

// ---------------------------------------------------------------------------
// Internal plumbing
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct TaskSpec {
    id: u64,
    job: usize,
    /// Index of this task's first component in the job's plan order;
    /// merging sorts tasks by this key.
    plan_pos: u64,
    /// Components covered by this task (for partial-progress counts).
    components: u64,
    /// Transaction count — the largest-first scheduling weight.
    txns: usize,
    criterion: &'static str,
    prelint: bool,
    ladder: bool,
    decompose: bool,
    saturate: bool,
    /// Whole-history task: its verdict passes through unmerged.
    whole: bool,
    /// `.duob`-encoded (sub-)history.
    payload: Vec<u8>,
}

enum Event {
    /// The planner decided a job without any worker.
    Immediate { job: usize, verdict: Box<Verdict> },
    /// A unit of work, streamed as planning produces it.
    Task(Box<TaskSpec>),
    /// All tasks of `job` have been sent.
    JobPlanned {
        job: usize,
        tasks: u64,
        components_total: u64,
        /// History + criterion for the coordinator-side ladder on merged
        /// `Unknown` verdicts (absent for opacity jobs).
        ladder_ctx: Option<Box<(History, PlanCriterion)>>,
    },
    /// The planner has processed every job.
    PlanDone,
    /// A worker answered a task.
    Verdict { worker: usize, msg: VerdictMsg },
    /// A worker's stream ended or broke.
    WorkerGone { worker: usize, detail: String },
    /// A connector thread completed the authenticated handshake to a
    /// remote daemon (initial connect or reconnect).
    RemoteUp { addr: String, stream: TcpStream },
    /// A connector thread exhausted its attempts on `addr`.
    RemoteGone { addr: String, detail: String },
    /// A liveness frame (or completed hello) from a worker's stream.
    Heartbeat { worker: usize },
}

enum TaskOutcome {
    Answered {
        explored: u64,
        verdict: Verdict,
    },
    /// Retry budget exhausted: the component is undecided.
    Dead,
}

struct TaskState {
    spec: TaskSpec,
    deaths: u64,
    queued: bool,
    assigned: Vec<usize>,
    last_dispatch: Instant,
    outcome: Option<TaskOutcome>,
}

#[derive(Default)]
struct JobState {
    immediate: Option<Verdict>,
    task_ids: Vec<u64>,
    expected: Option<u64>,
    components_total: u64,
    done: u64,
    ladder_ctx: Option<Box<(History, PlanCriterion)>>,
}

/// How the coordinator reaches one worker: a child process on pipes, or
/// an authenticated TCP stream to a `duop shard-serve` host.
enum WorkerLink {
    Local {
        child: Child,
        stdin: Option<ChildStdin>,
    },
    Remote {
        addr: String,
        stream: TcpStream,
    },
}

struct WorkerHandle {
    link: WorkerLink,
    task: Option<u64>,
    alive: bool,
    /// When the worker's stream last produced a frame. Remote workers
    /// heartbeat once a second, so prolonged silence means a dead host
    /// or a partition; local pipes report death via EOF instead and
    /// never time out.
    last_heard: Instant,
}

/// Consecutive connection failures tolerated per remote address before
/// the coordinator stops reconnecting to it.
const MAX_REMOTE_FAILURES: u64 = 5;
/// Reconnect backoff schedule (doubles from base to cap, jittered).
const RECONNECT_BASE_MS: u64 = 100;
const RECONNECT_CAP_MS: u64 = 2_000;
/// TCP-level attempts within one connector thread.
const CONNECT_ATTEMPTS: u32 = 3;

fn spawn_worker(
    cfg: &ShardConfig,
    index: usize,
    tx: &Sender<Event>,
) -> Result<WorkerHandle, ShardError> {
    let program = cfg
        .worker_cmd
        .first()
        .ok_or_else(|| ShardError::Spawn("empty worker command".to_owned()))?;
    let mut child = Command::new(program)
        .args(&cfg.worker_cmd[1..])
        .envs(cfg.worker_env.iter().map(|(k, v)| (k, v)))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| ShardError::Spawn(format!("{program}: {e}")))?;
    let mut stdin = child.stdin.take().expect("stdin was piped");
    let stdout = child.stdout.take().expect("stdout was piped");
    write_frame(&mut stdin, FRAME_HELLO, &encode_hello())
        .and_then(|()| stdin.flush().map_err(Into::into))
        .map_err(|e| ShardError::Spawn(format!("handshake write: {e}")))?;
    let tx = tx.clone();
    std::thread::spawn(move || reader_loop(index, stdout, tx));
    Ok(WorkerHandle {
        link: WorkerLink::Local {
            child,
            stdin: Some(stdin),
        },
        task: None,
        alive: true,
        last_heard: Instant::now(),
    })
}

/// Dials `addr` (with in-thread retries and jittered backoff), completes
/// the authenticated hello plus the protocol handshake, and reports the
/// ready stream — or gives up — via the event channel.
fn spawn_connector(addr: String, secret: Vec<u8>, tx: Sender<Event>, delay_first: bool) {
    std::thread::spawn(move || {
        let mut backoff = Backoff::new(RECONNECT_BASE_MS, RECONNECT_CAP_MS);
        let mut last_err = String::new();
        for attempt in 0..CONNECT_ATTEMPTS {
            if attempt > 0 || delay_first {
                std::thread::sleep(backoff.next_delay());
            }
            let stream = match connect_remote(&addr, &secret) {
                Ok(stream) => stream,
                Err(e) => {
                    last_err = e.to_string();
                    continue;
                }
            };
            let hello = stream
                .try_clone()
                .map_err(|e| e.to_string())
                .and_then(|mut w| {
                    write_frame(&mut w, FRAME_HELLO, &encode_hello())
                        .and_then(|()| w.flush().map_err(Into::into))
                        .map_err(|e| e.to_string())
                });
            match hello {
                Ok(()) => {
                    let _ = tx.send(Event::RemoteUp { addr, stream });
                    return;
                }
                Err(e) => {
                    last_err = e;
                    continue;
                }
            }
        }
        let _ = tx.send(Event::RemoteGone {
            addr,
            detail: format!("{CONNECT_ATTEMPTS} attempts failed; last: {last_err}"),
        });
    });
}

fn reader_loop(worker: usize, input: impl Read, tx: Sender<Event>) {
    let gone = |detail: String| Event::WorkerGone { worker, detail };
    let mut reader = FrameReader::new(input);
    // Hello phase. On the TCP transport the daemon's heartbeat thread
    // races the worker loop's hello, so heartbeats are legal here too.
    loop {
        match reader.read_frame() {
            Ok(Some((FRAME_HEARTBEAT, _))) => {
                let _ = tx.send(Event::Heartbeat { worker });
            }
            Ok(Some((FRAME_HELLO, payload))) => {
                if let Err(e) = decode_hello(payload) {
                    let _ = tx.send(gone(e.to_string()));
                    return;
                }
                break;
            }
            Ok(Some((ty, _))) => {
                let _ = tx.send(gone(format!("expected hello, got frame type {ty:#04x}")));
                return;
            }
            Ok(None) => {
                let _ = tx.send(gone("exited before handshake".to_owned()));
                return;
            }
            Err(e) => {
                let _ = tx.send(gone(e.to_string()));
                return;
            }
        }
    }
    // A completed handshake doubles as the first liveness proof (and
    // resets the remote's consecutive-failure counter).
    let _ = tx.send(Event::Heartbeat { worker });
    loop {
        match reader.read_frame() {
            Ok(Some((FRAME_VERDICT, payload))) => match decode_verdict_msg(payload) {
                Ok(msg) => {
                    if tx.send(Event::Verdict { worker, msg }).is_err() {
                        return;
                    }
                }
                Err(e) => {
                    let _ = tx.send(gone(e.to_string()));
                    return;
                }
            },
            Ok(Some((FRAME_HEARTBEAT, _))) => {
                if tx.send(Event::Heartbeat { worker }).is_err() {
                    return;
                }
            }
            Ok(Some((ty, _))) => {
                let _ = tx.send(gone(format!("unexpected frame type {ty:#04x}")));
                return;
            }
            Ok(None) => {
                let _ = tx.send(gone("stream ended".to_owned()));
                return;
            }
            Err(e) => {
                let _ = tx.send(gone(e.to_string()));
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

fn plan_jobs(jobs: Vec<ShardJob>, cfg: &ShardConfig, tx: &Sender<Event>) {
    let mut scratch = PlanScratch::new();
    let mut next_task = 0u64;
    for (job_index, job) in jobs.into_iter().enumerate() {
        plan_one(job_index, job, cfg, tx, &mut scratch, &mut next_task);
    }
    let _ = tx.send(Event::PlanDone);
}

fn plan_one(
    job_index: usize,
    job: ShardJob,
    cfg: &ShardConfig,
    tx: &Sender<Event>,
    scratch: &mut PlanScratch,
    next_task: &mut u64,
) {
    let immediate = |verdict: Verdict| Event::Immediate {
        job: job_index,
        verdict: Box::new(verdict),
    };
    let mut task_id = || {
        let id = *next_task;
        *next_task += 1;
        id
    };

    let plan_criterion = match job.criterion {
        ShardCriterion::Plan(c) if cfg.decompose => c,
        _ => {
            // Whole-history task: opacity, or decomposition ablated. The
            // worker is the in-process path end to end (prelint, ladder,
            // planner per config), so its verdict passes through.
            let spec = TaskSpec {
                id: task_id(),
                job: job_index,
                plan_pos: 0,
                components: 0,
                txns: job.history.txn_count(),
                criterion: job.criterion.token(),
                prelint: cfg.prelint,
                ladder: cfg.ladder,
                decompose: cfg.decompose,
                saturate: cfg.saturate,
                whole: true,
                payload: binary::encode(&job.history),
            };
            let _ = tx.send(Event::Task(Box::new(spec)));
            let ladder_ctx = match job.criterion {
                ShardCriterion::Plan(c) => Some(Box::new((job.history, c))),
                ShardCriterion::Opacity => None,
            };
            let _ = tx.send(Event::JobPlanned {
                job: job_index,
                tasks: 1,
                components_total: 0,
                ladder_ctx,
            });
            return;
        }
    };

    let prepared = plan_criterion.prepare(&job.history);
    let checked: &History = prepared.as_ref().unwrap_or(&job.history);
    if cfg.prelint {
        if let Some(verdict) = prelint_verdict(checked, plan_criterion) {
            let _ = tx.send(immediate(verdict));
            return;
        }
    }
    // Mirror the in-process pipeline: saturation runs on the whole
    // prepared history after lint and before planning, so a refutation's
    // certificate (or a fully-determined witness) is identical to the
    // local run's — component tasks then skip saturation entirely.
    if cfg.saturate {
        if let Some(verdict) = saturate_verdict(checked, plan_criterion) {
            let _ = tx.send(immediate(verdict));
            return;
        }
    }
    let components = match plan_components(checked, plan_criterion, scratch) {
        PlanOutcome::Decided(verdict) => {
            let _ = tx.send(immediate(verdict));
            return;
        }
        PlanOutcome::Components(components) => components,
    };
    if components.is_empty() {
        let _ = tx.send(immediate(Verdict::Satisfied(Witness::new(
            Vec::new(),
            BTreeMap::new(),
        ))));
        return;
    }
    let components_total = components.len() as u64;

    // Batch consecutive plan-order components into chunks of at least
    // `min_task_txns` transactions. Consecutiveness keeps the merge a
    // plain plan-order concatenation.
    let mut chunks: Vec<(u64, u64, Vec<TxnId>)> = Vec::new();
    let mut first = 0u64;
    let mut count = 0u64;
    let mut members: Vec<TxnId> = Vec::new();
    for (i, component) in components.into_iter().enumerate() {
        if count == 0 {
            first = i as u64;
        }
        count += 1;
        members.extend(component);
        if members.len() >= cfg.min_task_txns {
            chunks.push((first, count, std::mem::take(&mut members)));
            count = 0;
        }
    }
    if count > 0 {
        chunks.push((first, count, members));
    }

    let single = chunks.len() == 1;
    let tasks = chunks.len() as u64;
    for (plan_pos, chunk_components, chunk_members) in chunks {
        let payload = if single {
            // One chunk covers everything: skip the identity projection.
            binary::encode(checked)
        } else {
            let keep: HashSet<TxnId> = chunk_members.iter().copied().collect();
            binary::encode(&checked.filter_txns(|t| keep.contains(&t)))
        };
        let spec = TaskSpec {
            id: task_id(),
            job: job_index,
            plan_pos,
            components: chunk_components,
            txns: chunk_members.len(),
            criterion: plan_criterion.token(),
            // The coordinator already linted and saturated the whole
            // history and owns the ladder for the merged verdict.
            prelint: false,
            ladder: false,
            decompose: true,
            saturate: false,
            whole: false,
            payload,
        };
        let _ = tx.send(Event::Task(Box::new(spec)));
    }
    let _ = tx.send(Event::JobPlanned {
        job: job_index,
        tasks,
        components_total,
        ladder_ctx: Some(Box::new((job.history, plan_criterion))),
    });
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

fn finish_unknown(
    explored: u64,
    reason: UnknownReason,
    partial: Option<PartialProgress>,
    job: &JobState,
    cfg: &ShardConfig,
) -> Verdict {
    if cfg.ladder {
        if let Some(ctx) = &job.ladder_ctx {
            let (history, criterion) = ctx.as_ref();
            let ladder_cfg = SearchConfig {
                prelint: cfg.prelint,
                ..SearchConfig::default()
            };
            return ladder_verdict(history, *criterion, &ladder_cfg, explored, reason, partial);
        }
    }
    Verdict::Unknown {
        explored,
        reason,
        partial,
    }
}

/// Recombines a job's per-task outcomes into the verdict the in-process
/// checker produces: plan-order witness concatenation when everything is
/// satisfied, the earliest plan-order failure otherwise, with cumulative
/// explored-state counts.
fn merge_job(job: &JobState, tasks: &HashMap<u64, TaskState>, cfg: &ShardConfig) -> Verdict {
    if let Some(v) = &job.immediate {
        return v.clone();
    }
    let mut parts: Vec<&TaskState> = job.task_ids.iter().map(|id| &tasks[id]).collect();
    parts.sort_by_key(|t| t.spec.plan_pos);

    if parts.len() == 1 && parts[0].spec.whole {
        return match parts[0].outcome.as_ref().expect("job is complete") {
            TaskOutcome::Answered { verdict, .. } => verdict.clone(),
            TaskOutcome::Dead => finish_unknown(0, UnknownReason::WorkerDeath, None, job, cfg),
        };
    }

    let mut order: Vec<TxnId> = Vec::new();
    let mut choices: BTreeMap<TxnId, bool> = BTreeMap::new();
    let mut explored_before = 0u64;
    let mut decided_before = 0u64;
    for task in parts {
        match task.outcome.as_ref().expect("job is complete") {
            TaskOutcome::Answered { explored, verdict } => match verdict {
                Verdict::Satisfied(w) => {
                    order.extend(w.order().iter().copied());
                    choices.extend(w.commit_choices().iter().map(|(t, c)| (*t, *c)));
                    explored_before += explored;
                    decided_before += task.spec.components;
                }
                Verdict::Violated(violation) => {
                    let merged = match violation.clone() {
                        Violation::NoSerialization {
                            criterion,
                            explored,
                        } => Violation::NoSerialization {
                            criterion,
                            explored: explored_before + explored,
                        },
                        other => other,
                    };
                    return Verdict::Violated(merged);
                }
                Verdict::Unknown {
                    explored,
                    reason,
                    partial,
                } => {
                    let decided =
                        decided_before + partial.as_ref().map_or(0, |p| p.components_decided);
                    return finish_unknown(
                        explored_before + explored,
                        *reason,
                        Some(PartialProgress::components(decided, job.components_total)),
                        job,
                        cfg,
                    );
                }
            },
            TaskOutcome::Dead => {
                return finish_unknown(
                    explored_before,
                    UnknownReason::WorkerDeath,
                    Some(PartialProgress::components(
                        decided_before,
                        job.components_total,
                    )),
                    job,
                    cfg,
                );
            }
        }
    }
    Verdict::Satisfied(Witness::new(order, choices))
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

struct Coordinator<'a> {
    cfg: &'a ShardConfig,
    tx: Sender<Event>,
    workers: Vec<WorkerHandle>,
    idle: Vec<usize>,
    tasks: HashMap<u64, TaskState>,
    /// Max-heap of `(txns, Reverse(task id))`: biggest component chunk
    /// first, ties broken oldest-first.
    pending: BinaryHeap<(usize, Reverse<u64>)>,
    jobs: Vec<JobState>,
    results: Vec<Option<Verdict>>,
    completed: usize,
    plan_done: bool,
    /// Connector threads currently trying to (re)establish a remote.
    /// While positive, an empty pool is "waiting", not "dead".
    reconnecting: usize,
    /// Consecutive handshake-or-stream failures per remote address;
    /// reset by the first frame of a successful handshake.
    remote_failures: HashMap<String, u64>,
    /// Silence budget before a remote worker is declared dead.
    net_timeout: Duration,
    /// Last heartbeat broadcast to remote workers.
    last_ping: Instant,
}

impl Coordinator<'_> {
    fn alive_count(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Detects a wedged run: jobs outstanding, yet nothing left that can
    /// produce another event. Progress needs either the planner (more
    /// tasks coming) or an in-flight task on a live worker (a verdict
    /// coming); anything else is a lost-event stall this converts into a
    /// [`ShardError`] instead of blocking on the event channel forever.
    fn stall_detail(&self, planner_finished: bool) -> Option<String> {
        if !self.plan_done {
            return planner_finished
                .then(|| "planner thread ended before completing the plan".to_owned());
        }
        if self.reconnecting > 0 {
            // A connector thread will deliver RemoteUp or RemoteGone.
            return None;
        }
        let in_flight = self
            .tasks
            .values()
            .any(|t| t.outcome.is_none() && t.assigned.iter().any(|&w| self.workers[w].alive));
        if in_flight {
            return None;
        }
        let queued = self
            .tasks
            .values()
            .filter(|t| t.outcome.is_none() && t.queued)
            .count();
        Some(format!(
            "stalled with jobs outstanding: {queued} queued task(s), none in flight, {} live worker(s)",
            self.alive_count()
        ))
    }

    fn record_job_if_complete(&mut self, job_index: usize) {
        let job = &self.jobs[job_index];
        if self.results[job_index].is_some() {
            return;
        }
        let complete = match (&job.immediate, job.expected) {
            (Some(_), _) => true,
            (None, Some(expected)) => job.done == expected,
            (None, None) => false,
        };
        if complete {
            let verdict = merge_job(job, &self.tasks, self.cfg);
            self.results[job_index] = Some(verdict);
            self.completed += 1;
        }
    }

    fn finish_task(&mut self, task_id: u64, outcome: TaskOutcome) {
        let task = self.tasks.get_mut(&task_id).expect("known task");
        debug_assert!(task.outcome.is_none());
        task.outcome = Some(outcome);
        task.queued = false;
        let job_index = task.spec.job;
        self.jobs[job_index].done += 1;
        self.record_job_if_complete(job_index);
    }

    /// Asks a connector thread to re-establish `addr`, unless the
    /// address has burned through its consecutive-failure budget.
    fn schedule_reconnect(&mut self, addr: String, why: &str) {
        let failures = self.remote_failures.entry(addr.clone()).or_insert(0);
        *failures += 1;
        if *failures > MAX_REMOTE_FAILURES {
            log_line(&format!(
                "giving up on remote {addr} after {failures} consecutive failures ({why})"
            ));
            return;
        }
        log_line(&format!(
            "remote {addr} lost ({why}); reconnecting with backoff (failure {failures})"
        ));
        self.reconnecting += 1;
        spawn_connector(addr, self.cfg.secret.clone(), self.tx.clone(), true);
    }

    fn handle_worker_gone(&mut self, worker: usize, detail: &str) {
        if !self.workers[worker].alive {
            return;
        }
        self.workers[worker].alive = false;
        self.idle.retain(|&w| w != worker);
        // A remote's stream is force-closed so its reader thread (and the
        // daemon's connection thread) unblock promptly; the address then
        // goes back through the backoff reconnect path — whether or not a
        // task was lost, since an idle connection is worth re-having.
        let remote_addr = match &self.workers[worker].link {
            WorkerLink::Remote { addr, stream } => {
                let _ = stream.shutdown(Shutdown::Both);
                Some(addr.clone())
            }
            WorkerLink::Local { .. } => None,
        };
        let lost_task = self.workers[worker].task.take();
        if let Some(addr) = remote_addr.clone() {
            self.schedule_reconnect(addr, detail);
        }
        let Some(task_id) = lost_task else {
            return;
        };
        let task = self.tasks.get_mut(&task_id).expect("known task");
        task.assigned.retain(|&w| w != worker);
        if task.outcome.is_some() || task.queued || !task.assigned.is_empty() {
            return;
        }
        task.deaths += 1;
        if task.deaths > self.cfg.retry {
            log_line(&format!(
                "task {task_id} lost to its {}th worker death ({detail}); retry budget exhausted",
                task.deaths
            ));
            self.finish_task(task_id, TaskOutcome::Dead);
            return;
        }
        log_line(&format!(
            "worker {worker} died holding task {task_id} ({detail}); re-queueing (attempt {})",
            task.deaths
        ));
        task.queued = true;
        self.pending.push((task.spec.txns, Reverse(task_id)));
        if remote_addr.is_some() {
            // The reconnect above is the remote's replacement.
            return;
        }
        // Keep the local pool at strength for the retry.
        match spawn_worker(self.cfg, self.workers.len(), &self.tx) {
            Ok(handle) => {
                self.idle.push(self.workers.len());
                self.workers.push(handle);
            }
            Err(e) => log_line(&format!("respawn failed: {e}")),
        }
    }

    fn dispatch_to(&mut self, worker: usize, task_id: u64) -> Result<(), String> {
        let task = self.tasks.get_mut(&task_id).expect("known task");
        let msg = TaskMsg {
            task_id,
            attempt: task.deaths,
            criterion: task.spec.criterion.to_owned(),
            prelint: task.spec.prelint,
            ladder: task.spec.ladder,
            decompose: task.spec.decompose,
            saturate: task.spec.saturate,
            max_states: self.cfg.max_states.unwrap_or(0),
            deadline_ms: self.cfg.deadline_ms.unwrap_or(0),
            history: task.spec.payload.clone(),
        };
        // Register the assignment before touching the pipe: a failed
        // write then flows through `handle_worker_gone` like any other
        // worker death — the task is re-queued (or retired against its
        // retry budget) and a replacement worker is spawned, instead of
        // being silently lost off the queue.
        task.assigned.push(worker);
        task.queued = false;
        task.last_dispatch = Instant::now();
        let handle = &mut self.workers[worker];
        handle.task = Some(task_id);
        let encoded = encode_task(&msg);
        match &mut handle.link {
            WorkerLink::Local { stdin, .. } => {
                let stdin = stdin.as_mut().expect("live worker has stdin");
                write_frame(stdin, FRAME_TASK, &encoded)
                    .and_then(|()| stdin.flush().map_err(Into::into))
            }
            WorkerLink::Remote { stream, .. } => write_frame(stream, FRAME_TASK, &encoded)
                .and_then(|()| stream.flush().map_err(Into::into)),
        }
        .map_err(|e| e.to_string())
    }

    /// The task `worker` should duplicate when the queue is dry: the
    /// longest-running in-flight task not already duplicated and not
    /// already on this worker's desk.
    fn steal_candidate(&self, worker: usize) -> Option<u64> {
        self.tasks
            .values()
            .filter(|t| {
                t.outcome.is_none()
                    && !t.queued
                    && !t.assigned.is_empty()
                    && t.assigned.len() < 2
                    && !t.assigned.contains(&worker)
            })
            .min_by_key(|t| t.last_dispatch)
            .map(|t| t.spec.id)
    }

    fn dispatch(&mut self) -> Result<(), ShardError> {
        loop {
            // Drop queue entries whose task got answered speculatively or
            // re-queued under a newer entry.
            let next = loop {
                match self.pending.peek() {
                    None => break None,
                    Some(&(_, Reverse(id))) => {
                        let task = &self.tasks[&id];
                        if task.outcome.is_some() || !task.queued {
                            self.pending.pop();
                            continue;
                        }
                        break Some(id);
                    }
                }
            };
            let Some(task_id) = next else {
                // Queue dry: speculate on stragglers once planning is done.
                if !self.plan_done {
                    return Ok(());
                }
                // Pair any idle worker with a candidate it is not
                // already running; one collision must not strand the
                // rest of the idle pool until the next event.
                let pair = self
                    .idle
                    .iter()
                    .enumerate()
                    .rev()
                    .find_map(|(pos, &worker)| self.steal_candidate(worker).map(|c| (pos, c)));
                let Some((pos, candidate)) = pair else {
                    return Ok(());
                };
                let worker = self.idle.remove(pos);
                if let Err(detail) = self.dispatch_to(worker, candidate) {
                    self.handle_worker_gone(worker, &detail);
                }
                continue;
            };
            let Some(worker) = self.idle.pop() else {
                if self.alive_count() == 0 {
                    if self.reconnecting > 0 {
                        // Capacity is on its way back; hold the queue.
                        return Ok(());
                    }
                    if !self.cfg.connect.is_empty() {
                        // Every host is gone past its reconnect budget.
                        // Soundness over availability: undecided tasks
                        // degrade to WorkerDeath so each job still merges
                        // to a sound `Unknown{partial}` — never a wrong
                        // Satisfied/Violation, and never a hang.
                        self.degrade_undecided_tasks();
                        continue;
                    }
                    return Err(ShardError::AllWorkersDead(format!(
                        "task {task_id} is queued with no live worker"
                    )));
                }
                return Ok(());
            };
            self.pending.pop();
            if let Err(detail) = self.dispatch_to(worker, task_id) {
                self.handle_worker_gone(worker, &detail);
            }
        }
    }

    /// Marks every undecided task dead: the terminal degradation when
    /// the whole (remote-inclusive) pool is unrecoverable.
    fn degrade_undecided_tasks(&mut self) {
        let undecided: Vec<u64> = self
            .tasks
            .values()
            .filter(|t| t.outcome.is_none())
            .map(|t| t.spec.id)
            .collect();
        if undecided.is_empty() {
            return;
        }
        log_line(&format!(
            "no live or recoverable workers; degrading {} undecided task(s) to WorkerDeath",
            undecided.len()
        ));
        for task_id in undecided {
            self.finish_task(task_id, TaskOutcome::Dead);
        }
    }

    /// Broadcasts a heartbeat to live remote workers (at most once a
    /// second); a failed write is a death like any other.
    fn ping_remotes(&mut self) {
        if self.last_ping.elapsed() < Duration::from_secs(1) {
            return;
        }
        self.last_ping = Instant::now();
        let mut lost = Vec::new();
        for (index, handle) in self.workers.iter_mut().enumerate() {
            if !handle.alive {
                continue;
            }
            if let WorkerLink::Remote { stream, .. } = &mut handle.link {
                let sent = write_frame(stream, FRAME_HEARTBEAT, &[])
                    .and_then(|()| stream.flush().map_err(Into::into));
                if sent.is_err() {
                    lost.push(index);
                }
            }
        }
        for worker in lost {
            self.handle_worker_gone(worker, "heartbeat write failed");
        }
    }

    /// Declares remotes silent past the net timeout dead. The daemon
    /// heartbeats independently of task computation, so a grinding
    /// worker stays loud while a partitioned one goes quiet.
    fn check_remote_liveness(&mut self) {
        let stale: Vec<(usize, u128)> = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, h)| {
                h.alive
                    && matches!(h.link, WorkerLink::Remote { .. })
                    && h.last_heard.elapsed() > self.net_timeout
            })
            .map(|(i, h)| (i, h.last_heard.elapsed().as_millis()))
            .collect();
        for (worker, silent_ms) in stale {
            self.handle_worker_gone(worker, &format!("silent for {silent_ms}ms (net timeout)"));
        }
    }

    fn handle_event(&mut self, event: Event) {
        match event {
            Event::Immediate { job, verdict } => {
                self.jobs[job].immediate = Some(*verdict);
                self.record_job_if_complete(job);
            }
            Event::Task(spec) => {
                let id = spec.id;
                self.jobs[spec.job].task_ids.push(id);
                self.pending.push((spec.txns, Reverse(id)));
                self.tasks.insert(
                    id,
                    TaskState {
                        spec: *spec,
                        deaths: 0,
                        queued: true,
                        assigned: Vec::new(),
                        last_dispatch: Instant::now(),
                        outcome: None,
                    },
                );
            }
            Event::JobPlanned {
                job,
                tasks,
                components_total,
                ladder_ctx,
            } => {
                let state = &mut self.jobs[job];
                state.expected = Some(tasks);
                state.components_total = components_total;
                state.ladder_ctx = ladder_ctx;
                self.record_job_if_complete(job);
            }
            Event::PlanDone => self.plan_done = true,
            Event::RemoteUp { addr, stream } => {
                self.reconnecting -= 1;
                let read_half = match stream.try_clone() {
                    Ok(half) => half,
                    Err(e) => {
                        // The freshly-made stream is already unusable:
                        // back through the reconnect path.
                        self.schedule_reconnect(addr, &format!("stream clone: {e}"));
                        return;
                    }
                };
                let index = self.workers.len();
                log_line(&format!("remote worker {index} up ({addr})"));
                self.workers.push(WorkerHandle {
                    link: WorkerLink::Remote { addr, stream },
                    task: None,
                    alive: true,
                    last_heard: Instant::now(),
                });
                self.idle.push(index);
                let tx = self.tx.clone();
                std::thread::spawn(move || reader_loop(index, read_half, tx));
            }
            Event::RemoteGone { addr, detail } => {
                self.reconnecting -= 1;
                // Count the whole connector run as one failure and decide
                // whether another round of backoff is worth it.
                self.schedule_reconnect(addr, &detail);
            }
            Event::Heartbeat { worker } => {
                if let Some(handle) = self.workers.get_mut(worker) {
                    handle.last_heard = Instant::now();
                    if let WorkerLink::Remote { addr, .. } = &handle.link {
                        // A talking connection clears the address's
                        // consecutive-failure budget.
                        let addr = addr.clone();
                        self.remote_failures.insert(addr, 0);
                    }
                }
            }
            Event::Verdict { worker, msg } => {
                self.workers[worker].last_heard = Instant::now();
                if self.workers[worker].alive {
                    self.workers[worker].task = None;
                    self.idle.push(worker);
                }
                match self.tasks.get_mut(&msg.task_id) {
                    Some(task) => {
                        task.assigned.retain(|&w| w != worker);
                        if task.outcome.is_none() {
                            self.finish_task(
                                msg.task_id,
                                TaskOutcome::Answered {
                                    explored: msg.explored,
                                    verdict: msg.verdict,
                                },
                            );
                        }
                    }
                    None => {
                        // A verdict for a task that was never dispatched:
                        // the worker is off-protocol.
                        self.handle_worker_gone(worker, "verdict for unknown task");
                    }
                }
            }
            Event::WorkerGone { worker, detail } => self.handle_worker_gone(worker, &detail),
        }
    }

    fn shutdown(mut self) {
        for handle in &mut self.workers {
            let orderly = handle.alive && handle.task.is_none();
            let alive = handle.alive;
            match &mut handle.link {
                WorkerLink::Local { child, stdin } => {
                    if orderly {
                        if let Some(stdin) = stdin.as_mut() {
                            let _ = write_frame(stdin, FRAME_SHUTDOWN, &[]);
                            let _ = stdin.flush();
                        }
                    } else if alive {
                        // Still grinding on a speculatively-duplicated
                        // task whose twin already answered: no reason to
                        // wait it out.
                        let _ = child.kill();
                    }
                    *stdin = None;
                    let _ = child.wait();
                }
                WorkerLink::Remote { stream, .. } => {
                    if orderly {
                        // The daemon outlives this run; the shutdown
                        // frame just ends our connection's worker loop.
                        let _ = write_frame(stream, FRAME_SHUTDOWN, &[]);
                        let _ = stream.flush();
                    }
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
    }
}

fn log_line(message: &str) {
    eprintln!("duop shard: {message}");
}

/// Checks `jobs` across a pool of worker processes and returns one
/// verdict per job, in job order — each identical to what the
/// in-process checker produces for that history and criterion (modulo
/// the documented per-task deadline semantics and the
/// [`UnknownReason::WorkerDeath`] degradation, which has no in-process
/// analog).
pub fn run_sharded(jobs: Vec<ShardJob>, cfg: &ShardConfig) -> Result<Vec<Verdict>, ShardError> {
    let total = jobs.len();
    let (tx, rx) = channel::<Event>();

    let mut coordinator = Coordinator {
        cfg,
        tx: tx.clone(),
        workers: Vec::new(),
        idle: Vec::new(),
        tasks: HashMap::new(),
        pending: BinaryHeap::new(),
        jobs: Vec::new(),
        results: Vec::new(),
        completed: 0,
        plan_done: false,
        reconnecting: 0,
        remote_failures: HashMap::new(),
        net_timeout: net_timeout(),
        last_ping: Instant::now(),
    };
    coordinator.jobs.resize_with(total, JobState::default);
    coordinator.results.resize_with(total, || None);

    // With remote daemons configured, zero local workers is a valid pool;
    // purely local runs keep the at-least-one floor.
    let pool = if cfg.connect.is_empty() {
        cfg.workers.max(1)
    } else {
        cfg.workers
    };
    for i in 0..pool {
        let handle = spawn_worker(cfg, i, &tx)?;
        coordinator.idle.push(i);
        coordinator.workers.push(handle);
    }
    for addr in &cfg.connect {
        coordinator.reconnecting += 1;
        spawn_connector(addr.clone(), cfg.secret.clone(), tx.clone(), false);
    }

    let planner_cfg = cfg.clone();
    let planner_tx = tx.clone();
    let planner = std::thread::spawn(move || plan_jobs(jobs, &planner_cfg, &planner_tx));
    drop(tx);

    // How long the event channel may sit silent between liveness checks.
    // Generous against real work (an in-flight task suppresses the stall
    // verdict no matter how long it grinds) and cheap to poll.
    const LIVENESS_INTERVAL: Duration = Duration::from_millis(200);

    let result = loop {
        if coordinator.completed == total {
            break Ok(());
        }
        let event = match rx.recv_timeout(LIVENESS_INTERVAL) {
            Ok(event) => event,
            Err(RecvTimeoutError::Timeout) => {
                coordinator.ping_remotes();
                coordinator.check_remote_liveness();
                // Liveness may have re-queued (or terminally degraded)
                // tasks; give the queue a turn before the stall verdict.
                if let Err(e) = coordinator.dispatch() {
                    break Err(e);
                }
                if let Some(detail) = coordinator.stall_detail(planner.is_finished()) {
                    break Err(ShardError::Internal(detail));
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => {
                break Err(ShardError::Internal(
                    "event channel closed with jobs outstanding".to_owned(),
                ))
            }
        };
        coordinator.handle_event(event);
        if let Err(e) = coordinator.dispatch() {
            break Err(e);
        }
    };

    let results = std::mem::take(&mut coordinator.results);
    coordinator.shutdown();
    let _ = planner.join();
    result?;
    Ok(results
        .into_iter()
        .map(|v| v.expect("all jobs completed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_criterion_parses_all_tokens() {
        for token in ["du", "final-state", "rco", "tms2", "strict", "opacity"] {
            let c = ShardCriterion::parse(token).expect(token);
            assert_eq!(c.token(), token);
        }
        assert!(ShardCriterion::parse("bogus").is_none());
    }

    #[test]
    fn empty_worker_command_is_a_spawn_error() {
        let cfg = ShardConfig {
            workers: 1,
            ..ShardConfig::default()
        };
        let err = run_sharded(Vec::new(), &cfg).unwrap_err();
        assert!(matches!(err, ShardError::Spawn(_)), "{err}");
    }

    /// A task whose dispatch write fails (worker already dead, so the
    /// task-frame write gets a broken pipe) must never be stranded:
    /// after `dispatch` returns, it is either decided, assigned to a
    /// replacement, or back on the queue with a death charged — never
    /// the pre-fix state {queued flag set, off the heap, unassigned,
    /// undecided}, which no later event could ever resurrect.
    #[test]
    fn failed_dispatch_write_keeps_the_task() {
        let cfg = ShardConfig {
            workers: 1,
            worker_cmd: vec!["true".to_owned()],
            ..ShardConfig::default()
        };
        let (tx, _rx) = channel::<Event>();
        // A worker whose process has already exited: the write end of
        // its stdin is still open, but the read end is closed, so the
        // task-frame write deterministically fails with EPIPE.
        let mut child = Command::new("true")
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn `true`");
        let stdin = child.stdin.take().expect("stdin was piped");
        child.wait().expect("`true` exits");

        let mut coordinator = Coordinator {
            cfg: &cfg,
            tx,
            workers: vec![WorkerHandle {
                link: WorkerLink::Local {
                    child,
                    stdin: Some(stdin),
                },
                task: None,
                alive: true,
                last_heard: Instant::now(),
            }],
            idle: vec![0],
            tasks: HashMap::new(),
            pending: BinaryHeap::new(),
            jobs: vec![JobState::default()],
            results: vec![None],
            completed: 0,
            plan_done: true,
            reconnecting: 0,
            remote_failures: HashMap::new(),
            net_timeout: Duration::from_secs(10),
            last_ping: Instant::now(),
        };
        coordinator.jobs[0].task_ids.push(0);
        coordinator.jobs[0].expected = Some(1);
        coordinator.tasks.insert(
            0,
            TaskState {
                spec: TaskSpec {
                    id: 0,
                    job: 0,
                    plan_pos: 0,
                    components: 1,
                    txns: 4,
                    criterion: "du",
                    prelint: false,
                    ladder: false,
                    decompose: true,
                    saturate: false,
                    whole: false,
                    payload: vec![0u8; 8],
                },
                deaths: 0,
                queued: true,
                assigned: Vec::new(),
                last_dispatch: Instant::now(),
                outcome: None,
            },
        );
        coordinator.pending.push((4, Reverse(0)));

        // Both outcomes are legal — Ok (the task went to a respawned
        // worker or re-queued) or AllWorkersDead (the respawn lost its
        // own race against `true` exiting) — but the task must survive.
        let _ = coordinator.dispatch();
        let task = &coordinator.tasks[&0];
        assert!(task.deaths >= 1, "the failed write must count as a death");
        let in_heap = coordinator.pending.iter().any(|&(_, Reverse(id))| id == 0);
        assert!(
            task.outcome.is_some() || !task.assigned.is_empty() || (task.queued && in_heap),
            "task stranded: queued={} assigned={:?} decided={} in_heap={in_heap}",
            task.queued,
            task.assigned,
            task.outcome.is_some(),
        );
    }

    #[test]
    fn nonexistent_worker_command_is_a_spawn_error() {
        let cfg = ShardConfig {
            workers: 1,
            worker_cmd: vec!["/nonexistent/duop-worker-binary".to_owned()],
            ..ShardConfig::default()
        };
        let err = run_sharded(Vec::new(), &cfg).unwrap_err();
        assert!(matches!(err, ShardError::Spawn(_)), "{err}");
    }
}
