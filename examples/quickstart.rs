//! Quickstart: build a concurrent history, check it against every
//! criterion, and inspect the witness serialization.
//!
//! Run with: `cargo run --example quickstart`

use du_opacity::core::{evaluate_all, Criterion, DuOpacity};
use du_opacity::history::{render::render_lanes, HistoryBuilder, ObjId, TxnId, Value};

fn main() {
    let (t1, t2, t3) = (TxnId::new(1), TxnId::new(2), TxnId::new(3));
    let x = ObjId::new(0);

    // T1 writes 1 to X; its commit attempt hangs (the response never
    // arrives). T2 reads 1 through the pending commit — legal for
    // du-opacity only because T1 *started committing* before the read
    // returned. T3 then reads 1 as well and commits.
    let history = HistoryBuilder::new()
        .write(t1, x, Value::new(1))
        .inv_try_commit(t1)
        .read(t2, x, Value::new(1))
        .commit(t2)
        .committed_reader(t3, x, Value::new(1))
        .build();

    println!("The history, one lane per transaction:\n");
    print!("{}", render_lanes(&history));

    println!("\nVerdicts:");
    for (name, verdict) in evaluate_all(&history) {
        println!("  {name:<28} {verdict}");
    }

    let verdict = DuOpacity::new().check(&history);
    let witness = verdict.witness().expect("this history is du-opaque");
    println!(
        "\nThe du-opacity witness commits T1 (the completion chooses C1): {:?}",
        witness.commit_choice(t1)
    );
    println!("Serialization order: {:?}", witness.order());

    // Flip the scenario: if T1 had *not* started committing, the same read
    // would be a deferred-update violation.
    let violating = HistoryBuilder::new()
        .write(t1, x, Value::new(1))
        .read(t2, x, Value::new(1))
        .commit(t2)
        .build();
    let verdict = DuOpacity::new().check(&violating);
    println!(
        "\nWithout the tryC invocation, the read is rejected:\n  {}",
        verdict
    );
}
