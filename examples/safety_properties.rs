//! The safety-property structure of du-opacity, demonstrated: prefix
//! closure via Lemma 1's constructive witness restriction, and the failure
//! of limit closure on the paper's Figure 2 family.
//!
//! Run with: `cargo run --example safety_properties`

use du_opacity::core::lemmas::restrict_witness;
use du_opacity::core::{check_witness, Criterion, CriterionKind, DuOpacity};
use du_opacity::experiments::figures::fig2_prefix;
use du_opacity::gen::{HistoryGen, HistoryGenConfig};
use du_opacity::history::TxnId;

fn main() {
    // --- Prefix closure (Corollary 2, via Lemma 1) ---------------------
    let h = HistoryGen::new(HistoryGenConfig::medium_simulated(), 99).generate();
    let witness = DuOpacity::new()
        .check(&h)
        .into_result()
        .expect("simulated TM histories are du-opaque");

    println!(
        "History with {} transactions / {} events is du-opaque.",
        h.txn_count(),
        h.len()
    );
    println!("Restricting its witness to every prefix (Lemma 1):");
    let mut all_ok = true;
    for i in 0..=h.len() {
        let prefix = h.prefix(i);
        let restricted = restrict_witness(&h, &witness, i);
        all_ok &= check_witness(&prefix, &restricted, CriterionKind::DuOpacity).is_ok();
    }
    println!(
        "  all {} prefix witnesses validate: {all_ok}\n",
        h.len() + 1
    );

    // --- Limit closure fails (Proposition 1, Figure 2) ------------------
    println!("Figure 2: T1's commit hangs; T2 reads through it; n readers see 0.");
    println!("Every finite prefix is du-opaque, but T1's witness position grows with n:");
    println!(
        "{:>4}  {:>12}  position of T1 in the witness",
        "n", "du-opaque?"
    );
    for n in [1usize, 4, 16, 64] {
        let h = fig2_prefix(n);
        let verdict = DuOpacity::new().check(&h);
        let pos = verdict
            .witness()
            .map(|w| w.position(TxnId::new(1)).expect("T1 participates"));
        println!(
            "{n:>4}  {:>12}  {:?}",
            if verdict.is_satisfied() { "yes" } else { "NO" },
            pos
        );
    }
    println!(
        "\nIn the infinite limit T1 would need a position after infinitely many\n\
         readers — no serialization exists, so du-opacity is not limit-closed\n\
         (unless every transaction eventually completes; Theorem 5)."
    );
}
