//! Check a history written in the line-oriented trace format against
//! every criterion — a miniature verification tool.
//!
//! Run with:
//!
//! ```text
//! cargo run --example trace_check -- path/to/trace.txt
//! cargo run --example trace_check            # checks a built-in sample
//! ```
//!
//! Trace grammar (one event per line, `#` comments):
//!
//! ```text
//! T1 write X0 1     # invocation of write
//! T1 ok             # its response
//! T1 tryc           # invocation of tryC
//! T1 commit         # C_1
//! T2 read X0        # invocation of read
//! T2 val 1          # response: value 1
//! ```

use du_opacity::core::evaluate_all;
use du_opacity::history::render::render_lanes;
use du_opacity::history::trace::parse_trace;
use std::process::ExitCode;

const SAMPLE: &str = "\
# T1 commits 1 to X0; T2 reads it while T1 is still committing.
T1 write X0 1
T1 ok
T1 tryc
T2 read X0
T2 val 1
T1 commit
T2 tryc
T2 commit
";

fn main() -> ExitCode {
    let (source, text) = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => (path, text),
            Err(err) => {
                eprintln!("cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => ("<built-in sample>".to_owned(), SAMPLE.to_owned()),
    };

    let history = match parse_trace(&text) {
        Ok(h) => h,
        Err(err) => {
            eprintln!("{source}: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{source}: {} events, {} transactions\n",
        history.len(),
        history.txn_count()
    );
    print!("{}", render_lanes(&history));
    println!();

    let mut all_satisfied = true;
    for (name, verdict) in evaluate_all(&history) {
        println!("{name:<28} {verdict}");
        all_satisfied &= verdict.is_satisfied();
    }
    if all_satisfied {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
