//! A classic TM application: concurrent bank transfers. Transactions move
//! money between accounts; the invariant is that the total balance never
//! changes. We run the same workload on a safe engine (TL2) and on the
//! unsafe dirty-read engine, observe the invariant and audit snapshots,
//! and let the du-opacity checker certify (or indict) the recorded
//! histories.
//!
//! Run with: `cargo run --example bank_transfers`

use du_opacity::core::{Criterion, DuOpacity};
use du_opacity::history::{ObjId, Value};
use du_opacity::stm::engines::{DirtyRead, Tl2};
use du_opacity::stm::{Aborted, Engine, Recorder, Transaction};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const ACCOUNTS: u32 = 6;
const INITIAL_BALANCE: u64 = 1_000;
const TRANSFERS_PER_THREAD: usize = 40;
const THREADS: usize = 4;

/// Seeds every account with the initial balance.
fn setup(engine: &dyn Engine, recorder: &Recorder) {
    let outcome = engine.run_txn(recorder, &mut |txn| {
        for a in 0..ACCOUNTS {
            txn.write(ObjId::new(a), Value::new(INITIAL_BALANCE))?;
        }
        Ok(())
    });
    assert!(outcome.is_committed(), "setup must commit");
}

/// One transfer: withdraw `amount` from `from`, deposit into `to`.
fn transfer(txn: &mut dyn Transaction, from: ObjId, to: ObjId, amount: u64) -> Result<(), Aborted> {
    let src = txn.read(from)?.get();
    let dst = txn.read(to)?.get();
    let moved = amount.min(src); // never overdraw
    txn.write(from, Value::new(src - moved))?;
    txn.write(to, Value::new(dst + moved))?;
    Ok(())
}

/// An audit transaction: read every account and return the total.
fn audit(txn: &mut dyn Transaction) -> Result<u64, Aborted> {
    let mut total = 0;
    for a in 0..ACCOUNTS {
        total += txn.read(ObjId::new(a))?.get();
    }
    Ok(total)
}

/// Runs the banking workload; returns (history, committed audits with an
/// inconsistent total).
fn run_bank(engine: &dyn Engine) -> (du_opacity::history::History, usize) {
    let recorder = Recorder::new();
    setup(engine, &recorder);
    let bad_audits = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            let recorder = &recorder;
            let bad_audits = &bad_audits;
            scope.spawn(move || {
                let mut state: u64 = 0x9E3779B97F4A7C15u64.wrapping_mul(tid as u64 + 1);
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for i in 0..TRANSFERS_PER_THREAD {
                    if i % 5 == 4 {
                        // Every fifth transaction is an audit.
                        let mut observed = None;
                        let outcome = engine.run_txn(recorder, &mut |txn| {
                            observed = Some(audit(txn)?);
                            Ok(())
                        });
                        if outcome.is_committed() {
                            let total = observed.expect("audit ran");
                            if total != u64::from(ACCOUNTS) * INITIAL_BALANCE {
                                bad_audits.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        let from = ObjId::new((next() % u64::from(ACCOUNTS)) as u32);
                        let to = ObjId::new((next() % u64::from(ACCOUNTS)) as u32);
                        if from == to {
                            continue;
                        }
                        let amount = next() % 100;
                        // Retry a few times on abort.
                        for _ in 0..4 {
                            let outcome = engine
                                .run_txn(recorder, &mut |txn| transfer(txn, from, to, amount));
                            if outcome.is_committed() {
                                break;
                            }
                        }
                    }
                }
            });
        }
    });

    (recorder.into_history(), bad_audits.load(Ordering::Relaxed))
}

fn main() {
    println!(
        "Bank: {ACCOUNTS} accounts × {INITIAL_BALANCE} initial balance; \
         {THREADS} threads × {TRANSFERS_PER_THREAD} transactions\n"
    );

    let tl2 = Arc::new(Tl2::new(ACCOUNTS));
    let (history, bad_audits) = run_bank(tl2.as_ref());
    let verdict = DuOpacity::new().check(&history);
    println!(
        "TL2:        {} transactions recorded; inconsistent audits: {bad_audits}; du-opacity: {}",
        history.txn_count(),
        if verdict.is_satisfied() {
            "satisfied"
        } else {
            "VIOLATED"
        },
    );
    assert_eq!(bad_audits, 0, "a safe TM never shows a torn total");

    // The unsafe engine: audits can observe money in flight.
    let mut dirty_bad = 0;
    let mut dirty_verdict_violated = false;
    for _ in 0..16 {
        let dirty = DirtyRead::new(ACCOUNTS);
        let (history, bad) = run_bank(&dirty);
        dirty_bad += bad;
        if DuOpacity::new().check(&history).is_violated() {
            dirty_verdict_violated = true;
        }
        if dirty_bad > 0 && dirty_verdict_violated {
            break;
        }
    }
    println!(
        "dirty-read: inconsistent audits across runs: {dirty_bad}; du-opacity violated in some run: {dirty_verdict_violated}"
    );
    println!(
        "\nThe invariant break and the checker verdict point at the same root\n\
         cause: the dirty engine lets audits read transfers that have not\n\
         started committing."
    );
}
