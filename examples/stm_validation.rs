//! Record histories from real multi-threaded STM engines and check them
//! against the paper's criteria — the Section 5 claim, live.
//!
//! Run with: `cargo run --example stm_validation`

use du_opacity::core::{Criterion, DuOpacity, FinalStateOpacity, StrictSerializability};
use du_opacity::stm::engines::{DirtyRead, Dstm, Eager2Pl, NoRec, Pessimistic, Tl2};
use du_opacity::stm::{run_workload, Engine, WorkloadConfig};

fn main() {
    let config = WorkloadConfig {
        threads: 4,
        txns_per_thread: 12,
        ops_per_txn: (2, 4),
        read_ratio: 0.6,
        unique_values: true,
        max_attempts: 3,
        yield_between_ops: false,
        seed: 2024,
    };

    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(Tl2::new(8)),
        Box::new(NoRec::new(8)),
        Box::new(Dstm::new(8)),
        Box::new(Eager2Pl::new(8)),
    ];

    println!(
        "{:<12} {:>8} {:>8} {:>8}  {:<14} {:<14} {:<10}",
        "engine", "txns", "commits", "aborts", "du-opacity", "final-state", "strict-ser"
    );
    for engine in &engines {
        let (history, stats) = run_workload(engine.as_ref(), &config);
        let du = DuOpacity::new().check(&history);
        let fso = FinalStateOpacity::new().check(&history);
        let ss = StrictSerializability::new().check(&history);
        let s = |v: &du_opacity::core::Verdict| {
            if v.is_satisfied() {
                "satisfied"
            } else {
                "VIOLATED"
            }
        };
        println!(
            "{:<12} {:>8} {:>8} {:>8}  {:<14} {:<14} {:<10}",
            engine.name(),
            history.txn_count(),
            stats.committed,
            stats.aborted,
            s(&du),
            s(&fso),
            s(&ss),
        );
        if let Some(violation) = du.violation() {
            println!("             └─ {violation}");
        }
    }

    // The negative controls are race-dependent: hunt over seeds until each
    // produces a violating interleaving.
    println!("\nHunting for a pessimistic-STM violation (Section 5: no aborts, in-place writes):");
    let mut found = false;
    for seed in 0..64 {
        let engine = Pessimistic::new(2);
        let cfg = WorkloadConfig {
            seed,
            threads: 8,
            read_ratio: 0.5,
            unique_values: true,
            max_attempts: 1,
            yield_between_ops: true,
            ..config.clone()
        };
        let (history, _) = run_workload(&engine, &cfg);
        if let Some(violation) = DuOpacity::new().check(&history).violation() {
            println!(
                "  run {seed}: {} transactions — du-opacity VIOLATED:\n    {violation}",
                history.txn_count()
            );
            found = true;
            break;
        }
    }
    if !found {
        println!("  no violating interleaving surfaced in 64 runs (timing-dependent; try again)");
    }

    println!("\nHunting for a dirty-read violation (uncommitted writes are visible):");
    let mut found = false;
    for seed in 0..64 {
        let engine = DirtyRead::new(2);
        let cfg = WorkloadConfig {
            seed,
            read_ratio: 0.5,
            unique_values: true,
            max_attempts: 1,
            yield_between_ops: true,
            ..config.clone()
        };
        let (history, _) = run_workload(&engine, &cfg);
        if let Some(violation) = DuOpacity::new().check(&history).violation() {
            println!(
                "  run {seed}: {} transactions — du-opacity VIOLATED:\n    {violation}",
                history.txn_count()
            );
            found = true;
            break;
        }
    }
    if !found {
        println!("  no violating interleaving surfaced in 64 runs (timing-dependent; try again)");
    }

    println!(
        "\nTL2, NOrec and eager 2PL defer updates (or shield them with locks):\n\
         their histories satisfy du-opacity. The dirty-read engine exposes\n\
         uncommitted writes, and the checker pinpoints the offending read."
    );
}
