//! Monitor a transactional execution event by event with the incremental
//! du-opacity checker, catching the exact event at which safety breaks.
//!
//! Run with: `cargo run --example online_monitor`

use du_opacity::core::online::OnlineChecker;
use du_opacity::history::{Event, ObjId, Op, Ret, TxnId, Value};

fn main() {
    let (t1, t2, t3) = (TxnId::new(1), TxnId::new(2), TxnId::new(3));
    let (x, y) = (ObjId::new(0), ObjId::new(1));
    let one = Value::new(1);

    // T1 commits X=1, Y=1 atomically. T3 is a doomed transaction that
    // observes X *before* T1's commit and Y *after* it — the inconsistent
    // snapshot opacity exists to forbid. T2 is a well-behaved reader.
    let events = [
        Event::inv(t3, Op::Read(x)),
        Event::resp(t3, Ret::Value(Value::INITIAL)), // T3: X = 0
        Event::inv(t1, Op::Write(x, one)),
        Event::resp(t1, Ret::Ok),
        Event::inv(t1, Op::Write(y, one)),
        Event::resp(t1, Ret::Ok),
        Event::inv(t1, Op::TryCommit),
        Event::resp(t1, Ret::Committed),
        Event::inv(t2, Op::Read(x)),
        Event::resp(t2, Ret::Value(one)), // T2: consistent
        Event::inv(t2, Op::TryCommit),
        Event::resp(t2, Ret::Committed),
        Event::inv(t3, Op::Read(y)),
        Event::resp(t3, Ret::Value(one)), // T3: Y = 1 — snapshot broken!
        Event::inv(t3, Op::TryAbort),
        Event::resp(t3, Ret::Aborted), // aborting does not excuse it
    ];

    let mut monitor = OnlineChecker::new();
    for (i, event) in events.iter().enumerate() {
        let verdict = monitor.push(*event).expect("well-formed event stream");
        let status = if verdict.is_satisfied() {
            "ok "
        } else {
            "VIOLATION"
        };
        println!("event {i:>2}: {event:<12} → {status}");
        if let Some(v) = verdict.violation() {
            println!("           {v}");
        }
    }

    let stats = monitor.stats();
    println!(
        "\nMonitor stats: {} events, {} certified by witness reuse (Lemma 1), {} full searches.",
        stats.events, stats.incremental_hits, stats.full_searches
    );
    println!(
        "Note the violation fires at event 13, the moment T3's read of Y\n\
         returns — before T3 aborts. An aborted transaction's reads still\n\
         matter: that is the whole point of opacity-style criteria."
    );
}
