//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Backed by `std::sync` primitives with poison recovery: a panicked
//! holder does not poison the lock for everyone else, matching
//! `parking_lot` semantics. API-compatible with the real crate for
//! `Mutex`, `MutexGuard`, `RwLock` and the `try_*` variants, so swapping
//! the real dependency back in is a one-line manifest change.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual exclusion primitive (shim over [`std::sync::Mutex`]).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock (shim over [`std::sync::RwLock`]).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        let r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(r);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
