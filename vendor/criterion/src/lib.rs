//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Wall-clock timing only: per benchmark it warms up, picks an iteration
//! count that fills the measurement window, takes `sample_size` samples,
//! and prints min/median/max time per iteration (plus throughput when
//! set). `cargo bench -- --test` (or `cargo test --benches`) runs every
//! routine exactly once, which is how CI smoke-tests the bench crate
//! without network access to the real criterion.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration and CLI state for one bench binary.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to run each routine untimed before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total duration of the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies `cargo bench` CLI arguments: `--test` runs each routine
    /// once; the first free argument filters benchmarks by substring.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "--verbose" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = n;
                    }
                }
                s if s.starts_with("--") => {
                    // Unknown flags (e.g. --save-baseline) are accepted and
                    // ignored; they may consume a value we cannot detect, so
                    // only treat bare words as filters.
                }
                s => self.filter = Some(s.to_owned()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// How to express per-iteration throughput in reports.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark's identifier: function name plus parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmarks `routine`, passing it a [`Bencher`] and `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| routine(b, input));
    }

    /// Benchmarks `routine`, passing it a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| routine(b));
    }

    /// Finishes the group. (Reports are printed per benchmark.)
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            config: self.criterion.clone(),
            report: None,
        };
        routine(&mut bencher);
        match bencher.report {
            Some(report) => report.print(&full, self.throughput.as_ref()),
            None => println!("{full}: no measurement (routine never called iter)"),
        }
    }
}

struct Report {
    min: Duration,
    median: Duration,
    max: Duration,
    test_mode: bool,
}

impl Report {
    fn print(&self, name: &str, throughput: Option<&Throughput>) {
        if self.test_mode {
            println!("{name}: ok (test mode, 1 iteration)");
            return;
        }
        let rate = |elems: u64, per: &'static str| {
            let secs = self.median.as_secs_f64();
            if secs > 0.0 {
                format!("  thrpt: {:.0} {per}/s", elems as f64 / secs)
            } else {
                String::new()
            }
        };
        let thrpt = match throughput {
            Some(Throughput::Elements(n)) => rate(*n, "elem"),
            Some(Throughput::Bytes(n)) => rate(*n, "B"),
            None => String::new(),
        };
        println!(
            "{name}: time: [{:?} {:?} {:?}]{thrpt}",
            self.min, self.median, self.max
        );
    }
}

/// Passed to routines; [`Bencher::iter`] does the actual timing.
pub struct Bencher {
    config: Criterion,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine`, storing a report printed when the benchmark ends.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.test_mode {
            black_box(routine());
            self.report = Some(Report {
                min: Duration::ZERO,
                median: Duration::ZERO,
                max: Duration::ZERO,
                test_mode: true,
            });
            return;
        }

        // Warm-up, counting iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let samples = self.config.sample_size;
        let target = self.config.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = ((target / per_iter) as u64).max(1);

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            times.push(start.elapsed() / u32::try_from(iters_per_sample).unwrap_or(u32::MAX));
        }
        times.sort_unstable();
        self.report = Some(Report {
            min: times[0],
            median: times[times.len() / 2],
            max: times[times.len() - 1],
            test_mode: false,
        });
    }
}

/// Declares a bench group: a function running each target against a
/// shared config. Supports both the `name/config/targets` form and the
/// positional `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a.wrapping_add(b))
    }

    #[test]
    fn test_mode_runs_once_and_reports() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.test_mode = true;
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u32;
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                sum_to(n)
            })
        });
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn timed_mode_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.bench_function(BenchmarkId::new("sum", "timed"), |b| b.iter(|| sum_to(512)));
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("no-such-bench".into()),
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::new("skipped", 1), |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert_eq!(calls, 0);
    }
}
