//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! concrete [`Content`] tree that `serde_json` (the sibling shim) renders
//! to and parses from JSON text. Types implement [`Serialize`] /
//! [`Deserialize`] by converting to and from [`Content`]; the conversions
//! in `duop-history` are hand-written to produce exactly the encoding the
//! real `serde_derive` would (externally tagged enums, transparent
//! newtypes), so traces serialized by the real stack parse here and vice
//! versa.

use std::fmt;

/// A serialized value: the JSON data model with integers kept exact.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object (insertion-ordered).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The `u64` payload, accepting any exact non-negative integer form.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A deserialization failure (message only, like `serde::de::Error`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

pub mod de {
    //! Deserialization error plumbing (shim).
    pub use crate::DeError as Error;
}

pub mod ser {
    //! Serialization error plumbing (shim).
    pub use crate::DeError as Error;
}

/// Types convertible to a [`Content`] tree.
pub trait Serialize {
    /// Converts to the content tree.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Converts from the content tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = content
                    .as_u64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(DeError::custom)
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&7u32.to_content()), Ok(7));
        assert_eq!(
            Vec::<u64>::from_content(&vec![1u64, 2].to_content()),
            Ok(vec![1, 2])
        );
        assert!(u32::from_content(&Content::Str("x".into())).is_err());
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
    }
}
