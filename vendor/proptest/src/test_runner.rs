//! Deterministic case execution for the `proptest!` macro.

/// Configuration for one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to attempt per test (rejects included).
    pub cases: u32,
    /// Give up if this many consecutive cases are rejected.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failing outcome with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) outcome with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG handed to strategies: SplitMix64 over (test name, case index),
/// so every case is reproducible from the printed case number alone.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name.
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Drives the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    case: u32,
    attempted: u32,
    rejected: u32,
    passed: u32,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner {
            config,
            name,
            case: 0,
            attempted: 0,
            rejected: 0,
            passed: 0,
        }
    }

    /// Returns the RNG for the next case, or `None` when done.
    pub fn next_case(&mut self) -> Option<TestRng> {
        if self.attempted >= self.config.cases || self.rejected >= self.config.max_global_rejects {
            return None;
        }
        let rng = TestRng::for_case(self.name, self.case);
        self.case += 1;
        Some(rng)
    }

    /// Records the outcome of the case last yielded by [`Self::next_case`].
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on
    /// [`TestCaseError::Fail`], naming the case index for reproduction.
    pub fn record(&mut self, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) => {
                self.attempted += 1;
                self.passed += 1;
            }
            Err(TestCaseError::Reject(_)) => {
                self.rejected += 1;
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{}` failed at case {} (of {} attempted, {} rejected):\n{}",
                    self.name,
                    self.case.saturating_sub(1),
                    self.attempted,
                    self.rejected,
                    msg
                );
            }
        }
    }

    /// Final bookkeeping; panics if every case was rejected.
    pub fn finish(&self) {
        assert!(
            self.passed > 0,
            "proptest `{}`: no case passed ({} rejected) — assumptions too strict?",
            self.name,
            self.rejected
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn values_are_deterministic_and_in_range(x in 0u32..100) {
            prop_assert!(x < 100);
        }

        #[test]
        fn any_and_map_work(seed in any::<u64>()) {
            let doubled = crate::strategy::any::<u32>()
                .prop_map(|v| (v as u64) * 2);
            let mut rng = super::TestRng::for_case("inner", seed as u32 % 8);
            let v = crate::strategy::Strategy::new_value(&doubled, &mut rng);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 1000, "x was {}", x);
            }
        }
        always_fails();
    }
}
