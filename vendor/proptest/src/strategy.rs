//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical uniform strategy.
pub trait Arbitrary {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Integer ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo) as u64 + 1;
                if width == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize);
