//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest! { #![proptest_config(...)] #[test] fn f(x in
//! strategy) { ... } }` macro form, `any::<T>()`, `Strategy::prop_map`,
//! and the `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/
//! `prop_assume!` macros. Cases are generated deterministically from the
//! test name and case index; there is no shrinking — the failing input is
//! printed instead (every generator in this workspace is seed-driven, so
//! a failure reproduces exactly from the printed case).

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The customary glob-import surface.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    // Closure form, run immediately: `proptest!(|(x in strat)| { ... })`.
    (|($($pat:pat in $strat:expr),+ $(,)?)| $body:block) => {{
        let config = $crate::test_runner::ProptestConfig::default();
        let mut runner = $crate::test_runner::TestRunner::new(config, "proptest_closure");
        while let Some(mut rng) = runner.next_case() {
            $(let value = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
              let $pat = value;)+
            let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| { $body Ok(()) })();
            runner.record(outcome);
        }
        runner.finish();
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            while let Some(mut rng) = runner.next_case() {
                $(let value = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                  let $pat = value;)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                runner.record(outcome);
            }
            runner.finish();
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (it counts as skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
