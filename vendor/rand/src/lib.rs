//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! Provides [`rngs::StdRng`] (xoshiro256\*\* seeded through SplitMix64),
//! the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, `gen_range` over
//! half-open and inclusive integer ranges, and `gen_bool`. The stream is
//! deterministic per seed (the repo's generators and tests rely on seeds
//! for reproducibility, not on a specific upstream stream).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        // 53 high bits give a uniform double in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by widening multiply (Lemire reduction,
/// without the rejection loop — bias is < 2^-64 per sample, irrelevant for
/// test-material generation).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

/// Integers that [`SampleRange`] can draw uniformly.
///
/// Width arithmetic happens in `u64`; signed types sign-extend so that
/// `end - start` is correct modulo 2^64 and the truncation on the way
/// back is the matching modular inverse.
pub trait SampleUniform: Copy + PartialOrd {
    /// The value's bit pattern, sign- or zero-extended to 64 bits.
    fn extend(self) -> u64;
    /// Truncates a 64-bit pattern back to `Self`.
    fn truncate(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    (unsigned: $($u:ty),*; signed: $($i:ty),*) => {
        $(impl SampleUniform for $u {
            fn extend(self) -> u64 { self as u64 }
            fn truncate(v: u64) -> Self { v as $u }
        })*
        $(impl SampleUniform for $i {
            fn extend(self) -> u64 { self as i64 as u64 }
            fn truncate(v: u64) -> Self { v as $i }
        })*
    };
}

impl_sample_uniform!(unsigned: u8, u16, u32, u64, usize; signed: i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        let width = self.end.extend().wrapping_sub(self.start.extend());
        T::truncate(self.start.extend().wrapping_add(below(rng, width)))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let width = hi.extend().wrapping_sub(lo.extend()).wrapping_add(1);
        if width == 0 {
            // Full-width inclusive range (64-bit types only).
            return T::truncate(rng.next_u64());
        }
        T::truncate(lo.extend().wrapping_add(below(rng, width)))
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The shim's standard RNG: xoshiro256\*\*, seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<u64> = (0..16).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&w));
            let x = rng.gen_range(0u32..5);
            assert!(x < 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn inclusive_wide_range_covers_high_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = rng.gen_range(1u64..=u64::MAX / 2);
        assert!((1..=u64::MAX / 2).contains(&v));
    }
}
