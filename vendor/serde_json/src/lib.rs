//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`from_str`] over the serde shim's content tree.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// A JSON serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_content(), &mut out);
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(Error::from)
}

fn emit(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&v.to_string()),
        Content::Str(s) => emit_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(k, out);
                out.push(':');
                emit(v, out);
            }
            out.push('}');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_collections() {
        assert_eq!(to_string(&7u64).unwrap(), "7");
        assert_eq!(from_str::<u64>("7").unwrap(), 7);
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(" [1, 2,3 ] ").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\\c\n""#).unwrap(), "a\"b\\c\n");
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("7 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<u64>("-3").is_err());
        assert!(from_str::<Vec<u32>>("{\"a\":1}").is_err());
    }
}
